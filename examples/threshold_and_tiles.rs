//! Extension experiments beyond the paper's published figures:
//!
//! 1. error-rate scaling of the preparation circuits (pseudo-threshold
//!    structure — the basic circuit degrades linearly in p, the
//!    verify-and-correct circuit quadratically);
//! 2. the Qalypso tile-size optimization that §5.3 leaves as future
//!    work;
//! 3. Draper's ancilla-free QFT adder (the paper's reference [18]) as
//!    a fourth kernel with a very different ancilla-demand profile.
//!
//! ```text
//! cargo run --release --example threshold_and_tiles
//! ```

use speed_of_data::kernels::{draper_adder_lowered, qrca_lowered};
use speed_of_data::prelude::*;
use speed_of_data::steane::threshold::{scaling_exponent, threshold_sweep};

fn main() {
    // 1. Threshold structure.
    println!("error-rate scaling (uncorrectable rate vs noise scale):");
    let scales = [5.0, 20.0, 80.0];
    for strategy in [PrepStrategy::Basic, PrepStrategy::VerifyAndCorrect] {
        let pts = threshold_sweep(strategy, &scales, 60_000, 11, 8);
        print!("  {:<20}", strategy.name());
        for p in &pts {
            print!(" p={:.0e}: {:>9.2e}", p.p_gate, p.eval.error_rate());
        }
        if let Some(alpha) = scaling_exponent(&pts[0], &pts[2]) {
            print!("   (exponent ~{alpha:.1})");
        }
        println!();
    }
    println!("  -> verification + correction suppresses errors super-linearly;\n");

    // 2. Tile-size optimization for Qalypso.
    println!("Qalypso tile-size sweep (QRCA-32, 1e5 macroblocks of factories):");
    let qrca = qrca_lowered(32);
    for p in speed_of_data::arch::tiling::tile_sweep(&qrca, 1e5) {
        println!(
            "  tile {:>4}: {:>10.3e} us, {:>5} teleports",
            p.tile_qubits, p.exec_us, p.teleports
        );
    }
    let best = speed_of_data::arch::tiling::best_tile(&qrca, 1e5);
    println!("  best tile: {} qubits\n", best.tile_qubits);

    // 3. Draper adder characterization next to the ripple-carry adder.
    println!("Draper QFT adder vs ripple-carry adder (n = 16):");
    let synth = SynthAdapter::with_budget(10, 2e-2);
    for c in [qrca_lowered(16), draper_adder_lowered(16, &synth)] {
        let r = characterize(&c);
        println!(
            "  {:<12} {:>3} qubits, {:>5} gates, zero bw {:>7.1}/ms, pi/8 bw {:>6.1}/ms, runtime {:>7.1} ms",
            r.name,
            r.n_qubits,
            r.gate_count,
            r.bandwidth.zero_per_ms,
            r.bandwidth.pi8_per_ms,
            r.bandwidth.runtime_ms
        );
    }
    println!("  -> the ancilla-free adder trades data qubits for pi/8 bandwidth.");
}
