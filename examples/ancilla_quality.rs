//! The §2 Monte-Carlo study: error rates of the four encoded-zero
//! preparation circuits (Fig 4) and their downstream effect on data
//! (the ablation motivating high-fidelity ancillae).
//!
//! ```text
//! cargo run --release --example ancilla_quality           # paper rates
//! cargo run --release --example ancilla_quality -- fast   # 10x noise
//! ```

use speed_of_data::prelude::*;
use speed_of_data::steane::qec::data_error_per_qec;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let (model, trials) = if fast {
        (ErrorModel::paper().scaled(10.0), 100_000u64)
    } else {
        (ErrorModel::paper(), 1_000_000u64)
    };
    println!(
        "noise: gate {:.0e}, movement {:.0e}; {trials} trials per circuit\n",
        model.p_gate, model.p_move
    );

    println!(
        "{:<22} {:>14} {:>13} {:>9} {:>10}",
        "circuit", "uncorrectable", "any-residual", "discard", "paper"
    );
    for e in evaluate_all(model, trials, 42, 8) {
        println!(
            "{:<22} {:>14.3e} {:>13.3e} {:>9.4} {:>10.1e}",
            e.strategy.name(),
            e.error_rate(),
            e.dirty_rate(),
            e.discard_rate(),
            e.strategy.paper_error_rate()
        );
    }

    // Downstream ablation: what the ancilla quality does to the data
    // qubit being corrected.
    println!("\nlogical error added to a clean data block per QEC step:");
    let abl_model = ErrorModel::paper().scaled(10.0);
    let abl_trials = if fast { 20_000 } else { 50_000 };
    for strategy in [PrepStrategy::Basic, PrepStrategy::VerifyAndCorrect] {
        let stats = data_error_per_qec(strategy, abl_model, abl_trials, 7, 8);
        println!(
            "  {:<22} {:.3e} (at 10x noise, {} trials)",
            strategy.name(),
            stats.error_rate(),
            abl_trials
        );
    }
}
