//! Explore the ancilla-factory design space of §4: simple vs pipelined
//! zero factories, the pi/8 chain, and technology sensitivity.
//!
//! ```text
//! cargo run --release --example factory_design_space
//! ```

use speed_of_data::prelude::*;

fn main() {
    // The three published designs.
    let simple = SimpleFactory::paper();
    let zero = ZeroFactory::paper().bandwidth_matched();
    let pi8 = Pi8Factory::paper().bandwidth_matched();
    println!("design             area(MB)  throughput(/ms)  bw density(/ms/MB)");
    println!(
        "simple (Fig 11)    {:>8}  {:>15.2}  {:>18.4}",
        simple.area(),
        simple.throughput_per_ms(),
        simple.throughput_per_area()
    );
    println!(
        "pipelined zero     {:>8}  {:>15.2}  {:>18.4}",
        zero.total_area(),
        zero.throughput_per_ms,
        zero.throughput_per_area()
    );
    println!(
        "pi/8 encoder       {:>8}  {:>15.2}  {:>18.4}",
        pi8.total_area(),
        pi8.throughput_per_ms,
        pi8.throughput_per_area()
    );
    println!(
        "\n§5.3's observation: pipelining leaves bandwidth-per-area roughly unchanged\n(the win is concentrated output ports, which Qalypso exploits).\n"
    );

    // Farm sizing for each benchmark's Table 3 bandwidth.
    println!("farm sizing (pipelined zeros + pi/8 chains):");
    for (name, zbw, pbw) in [
        ("32-bit QRCA", 34.8, 7.0),
        ("32-bit QCLA", 306.1, 62.7),
        ("32-bit QFT", 36.8, 8.6),
    ] {
        let farm = FactoryFarm::size_for(zbw, pbw, ZeroFactoryKind::Pipelined);
        println!(
            "  {name}: QEC factories {:>8.1} MB + pi/8 chain {:>7.1} MB = {:>8.1} MB",
            farm.qec_factory_area,
            farm.pi8_factory_area,
            farm.total_factory_area()
        );
    }

    // Technology sensitivity: what if measurement gets 10x faster, or
    // movement 10x slower? (The paper keeps results symbolic for
    // exactly this reason.)
    println!("\ntechnology sensitivity of the pipelined zero factory:");
    let base = LatencyTable::ion_trap();
    let variants: Vec<(&str, LatencyTable)> = vec![
        ("ion trap (paper)", base),
        (
            "10x faster measurement",
            LatencyTable {
                t_meas: 5.0,
                ..base
            },
        ),
        (
            "10x slower turns",
            LatencyTable {
                t_turn: 100.0,
                ..base
            },
        ),
        (
            "5x faster zero prep",
            LatencyTable {
                t_prep: 10.2,
                ..base
            },
        ),
    ];
    for (label, t) in variants {
        let f = ZeroFactory::with_latencies(t).bandwidth_matched();
        println!(
            "  {label:<24} {:>4} MB, {:>6.2} anc/ms, density {:>7.4}",
            f.total_area(),
            f.throughput_per_ms,
            f.throughput_per_area()
        );
    }
}
