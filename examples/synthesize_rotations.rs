//! §2.5: Fowler-style exhaustive synthesis of pi/2^k rotations, and
//! the §4.4.2 comparison against the exact cascade construction.
//!
//! ```text
//! cargo run --release --example synthesize_rotations
//! cargo run --release --example synthesize_rotations -- 16   # deeper budget
//! ```

use qods_synth::cascade::compare_with_synthesis;
use speed_of_data::prelude::*;

fn main() {
    let max_t: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let synth = Synthesizer::with_budget(max_t, 0.0);
    let table = LatencyTable::ion_trap();

    println!("H/S/T synthesis of Rz(pi/2^k), T-count budget {max_t}:\n");
    println!(
        "{:>3} {:>10} {:>8} {:>8} {:>14} {:>14}",
        "k", "distance", "T-count", "gates", "synth path us", "cascade us"
    );
    for k in 3..=10u8 {
        let seq = synth.rz_pi_over_2k(k, false);
        let (cascade_us, synth_us) = compare_with_synthesis(k, &seq, &table);
        println!(
            "{:>3} {:>10.2e} {:>8} {:>8} {:>14.0} {:>14.0}",
            k,
            seq.distance,
            seq.t_count,
            seq.len(),
            synth_us,
            cascade_us
        );
    }
    println!(
        "\nthe cascade (Fig 6) wins on data-path latency but requires exact physical\n\
         pi/2^k rotations, which the paper conservatively does not assume (§2.5);\n\
         expected CX count on the cascade's critical path stays below 2:"
    );
    for k in [3u8, 4, 6, 10] {
        let a = analyze_cascade(k);
        println!(
            "  k={k}: {} factories, E[CX] = {:.3}, worst case {}",
            a.factories, a.expected_cx, a.worst_cx
        );
    }
}
