//! The §5 experiment: execution time vs factory area for QLA, CQLA,
//! Fully-Multiplexed and Qalypso (Fig 15), plus Table 9.
//!
//! ```text
//! cargo run --release --example architecture_comparison
//! ```

use speed_of_data::prelude::*;

fn main() {
    let synth = SynthAdapter::with_budget(12, 1e-2);
    let circuits = vec![qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)];

    println!("Table 9 (from measured bandwidths):");
    for c in &circuits {
        let row = table9_row(&characterize(c));
        println!(
            "  {:<8} data {:>6.0} MB ({:>4.1}%)   QEC factories {:>8.1} MB ({:>4.1}%)   pi/8 {:>8.1} MB ({:>4.1}%)",
            row.name,
            row.data_area,
            100.0 * row.data_share(),
            row.qec_factory_area,
            100.0 * row.qec_share(),
            row.pi8_factory_area,
            100.0 * row.pi8_share()
        );
    }

    println!("\nFig 15 sweeps (execution us by area):");
    let areas = log_areas(200.0, 3e6, 9);
    for c in &circuits {
        println!("== {} ==", c.name);
        print!("{:<20}", "area ->");
        for a in &areas {
            print!(" {:>9.1e}", a);
        }
        println!();
        let archs = [
            Arch::FullyMultiplexed,
            Arch::Qla,
            Arch::default_cqla(c.n_qubits()),
            Arch::default_qalypso(),
        ];
        for curve in area_sweep(c, &archs, &areas) {
            print!("{:<20}", curve.arch);
            for p in &curve.points {
                print!(" {:>9.2e}", p.exec_us);
            }
            println!();
        }
        let s = speedup_summary(c, &areas);
        println!(
            "headline: {:.1}x max equal-area speedup; QLA area penalty {:.0}x; CQLA plateau {:.1}x FM\n",
            s.max_speedup,
            s.qla_area_penalty,
            s.cqla_plateau_us / s.fm_plateau_us
        );
    }

    // Qalypso tile-size ablation (the open problem of §5.3).
    println!("Qalypso tile-size ablation (QCLA-32, area 1e5):");
    let qcla = &circuits[1];
    for tile in [8, 16, 32, 64, 128] {
        let out = simulate(qcla, Arch::Qalypso { tile_qubits: tile }, 1e5);
        println!(
            "  tile {:>4}: {:>9.2e} us, {} teleports",
            tile, out.makespan_us, out.teleports
        );
    }
}
