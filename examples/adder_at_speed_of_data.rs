//! Deep dive into the paper's §3 on the two adders: verify they add,
//! characterize them, and sweep the ancilla supply (Fig 8).
//!
//! ```text
//! cargo run --release --example adder_at_speed_of_data
//! ```

use qods_circuit::latency_model::CharacterizationModel;
use qods_circuit::throughput::throughput_sweep;
use speed_of_data::kernels::verify_adder;
use speed_of_data::prelude::*;

fn main() {
    // Functional verification first: the kernels are real adders.
    let rca = qrca(16);
    let cla = qcla(16);
    for (a, b) in [(1234u64, 4321u64), (65535, 1), (40000, 39999)] {
        verify_adder(&rca, 16, a, b).expect("QRCA adds");
        verify_adder(&cla, 16, a, b).expect("QCLA adds");
    }
    println!("functional check: both adders compute a+b correctly");

    // Characterization at n = 32 (the paper's Table 2 / Table 3).
    let model = CharacterizationModel::ion_trap();
    for circ in [qrca_lowered(32), qcla_lowered(32)] {
        let r = characterize(&circ);
        println!(
            "\n{}: {} qubits, {} gates, {:.1}% non-transversal",
            r.name,
            r.n_qubits,
            r.gate_count,
            100.0 * r.non_transversal_fraction
        );
        println!(
            "  no-overlap split: data {:.0} us ({:.1}%), interact {:.0} us ({:.1}%), prep {:.0} us ({:.1}%)",
            r.breakdown.data_op_us,
            100.0 * r.breakdown.data_op_share(),
            r.breakdown.qec_interact_us,
            100.0 * r.breakdown.qec_interact_share(),
            r.breakdown.ancilla_prep_us,
            100.0 * r.breakdown.ancilla_prep_share()
        );
        println!(
            "  at speed of data: {:.1} ms, {:.1} zeros/ms, {:.1} pi/8/ms",
            r.bandwidth.runtime_ms, r.bandwidth.zero_per_ms, r.bandwidth.pi8_per_ms
        );

        // Fig 8: how execution time responds to a steady supply.
        let avg = r.bandwidth.zero_per_ms;
        println!("  supply sweep (zeros/ms -> execution ms):");
        for p in throughput_sweep(&circ, &model, avg / 8.0, avg * 8.0, 7) {
            let marker = if (p.zeros_per_ms / avg - 1.0).abs() < 0.3 {
                "  <- average demand"
            } else {
                ""
            };
            println!(
                "    {:>8.1} -> {:>10.1}{marker}",
                p.zeros_per_ms,
                p.execution_us / 1000.0
            );
        }
    }
    println!(
        "\nthe carry-lookahead adder trades ~9x the ancilla bandwidth for ~8x lower latency —\nthe paper's core latency/area trade-off."
    );
}
