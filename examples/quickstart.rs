//! Quickstart: the three headline objects of the paper in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use speed_of_data::prelude::*;

fn main() {
    // 1. The pipelined encoded-zero ancilla factory (§4.4.1): sized by
    //    bandwidth matching, it lands on the paper's exact numbers.
    let zero = ZeroFactory::paper().bandwidth_matched();
    println!(
        "zero factory: {} macroblocks ({} functional + {} crossbar), {:.1} ancillae/ms",
        zero.total_area(),
        zero.functional_area(),
        zero.crossbar_area(),
        zero.throughput_per_ms
    );

    // 2. A benchmark kernel characterized at the speed of data (§3).
    let adder = qrca_lowered(32);
    let report = characterize(&adder);
    println!(
        "32-bit ripple-carry adder: {} encoded qubits, {} gates, needs {:.1} zeros/ms and {:.1} pi/8 ancillae/ms",
        report.n_qubits, report.gate_count, report.bandwidth.zero_per_ms, report.bandwidth.pi8_per_ms
    );
    println!(
        "latency split: {:.1}% data ops, {:.1}% QEC interaction, {:.1}% ancilla prep",
        100.0 * report.breakdown.data_op_share(),
        100.0 * report.breakdown.qec_interact_share(),
        100.0 * report.breakdown.ancilla_prep_share()
    );

    // 3. The architecture comparison (§5): fully-multiplexed ancilla
    //    distribution vs the dedicated-generator QLA at equal area.
    let area = 20_000.0;
    let fm = simulate(&adder, Arch::FullyMultiplexed, area);
    let qla = simulate(&adder, Arch::Qla, area);
    println!(
        "at {area:.0} macroblocks of factories: fully-multiplexed {:.1} ms vs QLA {:.1} ms ({:.1}x)",
        fm.makespan_us / 1000.0,
        qla.makespan_us / 1000.0,
        qla.makespan_us / fm.makespan_us
    );

    // 4. Any paper artifact, addressed by id through the experiment
    //    registry (see examples/experiment_registry.rs for the tour).
    let ctx = StudyContext::new(StudyConfig::smoke());
    let record = Registry::paper()
        .run_one("table9", &ctx)
        .expect("registered id");
    print!("{}", record.output.render());
}
