//! The experiment registry: list, address, and run paper artifacts
//! individually or all at once (in parallel) over one shared context.
//!
//! ```text
//! cargo run --example experiment_registry --release
//! ```

use speed_of_data::prelude::*;

fn main() {
    let registry = Registry::paper();

    // 1. Experiments are first-class values: enumerable and
    //    addressable by id (or alias — `table6` resolves to the same
    //    experiment as `table5`).
    println!("registered experiments:");
    for info in registry.list() {
        println!("  {:<8} {}", info.id, info.title);
    }
    assert!(registry.get("table6").is_some());
    assert!(registry.get("fig99").is_none());

    // 2. One shared context; any subset of experiments. The three
    //    benchmark circuits are lowered once, on first use, no matter
    //    how many experiments run.
    let ctx = StudyContext::new(StudyConfig::smoke());
    let records = registry
        .run_selected(&["table9", "headline"], &ctx)
        .expect("known ids");
    for r in &records {
        print!("{}", r.output.render());
    }
    println!("(benchmarks lowered {} time(s))", ctx.lowering_runs());

    // 3. Or everything at once: `run_all` drains the registry with a
    //    pool of worker threads sized to the machine, and the records
    //    reassemble into the classic full-paper struct.
    let all = registry.run_all(&ctx);
    let slowest = all
        .iter()
        .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("non-empty registry");
    println!(
        "ran {} experiments; slowest was {} at {:.1} ms",
        all.len(),
        slowest.id,
        1e3 * slowest.seconds
    );
    let full = PaperReproduction::from_records(StudyConfig::smoke(), &all);
    println!(
        "zero factory: {} macroblocks @ {:.1}/ms",
        full.factories.zero.total_area, full.factories.zero.throughput_per_ms
    );
}
