//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without `syn`/`quote` (the build has no
//! crates.io access), parsing the item token stream by hand.
//!
//! Supported shapes — the only ones this workspace uses:
//!
//! * structs with named fields,
//! * unit structs,
//! * enums whose variants are unit or newtype (single unnamed field).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item parser found.
enum Item {
    /// `struct Name { field, ... }` (empty for unit structs).
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, Newtype(T), ... }`.
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                // Unit struct (`struct Name;`).
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Vec::new(),
                other => panic!(
                    "serde shim derive: only named-field or unit structs are supported \
                     (type `{name}`, found {other:?})"
                ),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: malformed enum `{name}` ({other:?})"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Parses `ident: Type, ...` returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{field}`, found {other}"),
        }
        // Consume the type: everything until a comma outside `<...>`.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Parses enum variants as `(name, is_newtype)`.
fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    newtype = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde shim derive: struct-like variant `{name}` is not supported")
                }
                _ => {}
            }
        }
        // Skip to the comma separating variants (covers discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, newtype));
    }
    variants
}

/// `#[derive(Serialize)]` for the workspace serde shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{body}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, newtype)| {
                    if *newtype {
                        format!(
                            "{name}::{v}(inner) => serde::Value::Object(vec![(\
                                 \"{v}\".to_string(), serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!("{name}::{v} => serde::Value::Str(\"{v}\".to_string()),")
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde shim derive: generated impl must parse")
}

/// `#[derive(Deserialize)]` for the workspace serde shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(fields, \"{f}\")?)?,")
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let fields = v.as_object().ok_or_else(|| \
                             serde::Error::custom(\"expected object for {name}\"))?;\n\
                         let _ = fields;\n\
                         Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let str_arms: String = variants
                .iter()
                .filter(|(_, newtype)| !newtype)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let obj_arms: String = variants
                .iter()
                .filter(|(_, newtype)| *newtype)
                .map(|(v, _)| {
                    format!("\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(value)?)),")
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {str_arms}\n\
                                 other => Err(serde::Error::custom(format!(\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, value) = &fields[0];\n\
                                 let _ = value;\n\
                                 match tag.as_str() {{\n\
                                     {obj_arms}\n\
                                     other => Err(serde::Error::custom(format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::Error::custom(\"expected variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde shim derive: generated impl must parse")
}
