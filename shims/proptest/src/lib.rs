//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest!` macro over range / tuple / `collection::vec` strategies,
//! `prop_assert!` / `prop_assert_eq!`, `ProptestConfig::with_cases`,
//! and `TestCaseError`.
//!
//! Sampling is deterministic: every test function draws from a fixed
//! seed, so failures reproduce exactly. There is no shrinking — the
//! failing case's number is reported instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property rejected this case with a message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail<M: Into<String>>(msg: M) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// A source of sampled values for one property run.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A deterministic generator for the named test.
    pub fn new(test_name: &str) -> Self {
        // FNV-1a over the test name gives each property its own
        // deterministic stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Gen {
            rng: StdRng::seed_from_u64(h),
        }
    }
}

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The sampled type.
    type Value;
    /// Draws one value.
    fn sample(&self, g: &mut Gen) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, g: &mut Gen) -> T {
        g.rng.gen_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (self.0.sample(g), self.1.sample(g))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (self.0.sample(g), self.1.sample(g), self.2.sample(g))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (
            self.0.sample(g),
            self.1.sample(g),
            self.2.sample(g),
            self.3.sample(g),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Gen, Strategy};

    /// Samples vectors whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A strategy for `Vec<S::Value>` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, g: &mut Gen) -> Self::Value {
            let n = self.len.clone().sample(g);
            (0..n).map(|_| self.elem.sample(g)).collect()
        }
    }
}

/// Early-returns a [`TestCaseError`] when the condition fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Early-returns a [`TestCaseError`] when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]`
/// (the attribute is written inside the macro body, as with real
/// proptest) sampling `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut generator = $crate::Gen::new(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut generator);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Gen, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, i in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(i < 5);
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn composites_sample(pair in (0u8..4, 1usize..9),
                             xs in crate::collection::vec(0u8..6, 1..12)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..9).contains(&pair.1));
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|&v| v < 6));
        }

        /// `?` works on results mapped into TestCaseError.
        #[test]
        fn question_mark_propagates(n in 1u32..5) {
            let ok: Result<u32, String> = Ok(n);
            let v = ok.map_err(TestCaseError::fail)?;
            prop_assert_eq!(v, n);
        }
    }
}
