//! Offline shim for the subset of `rand` this workspace uses:
//! [`Rng::gen_bool`] / [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism contract: for a fixed seed the stream is fixed forever —
//! Monte-Carlo tests in this repo assert reproducibility across runs
//! and thread counts.

/// Types that produce random bits plus the derived sampling helpers.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples uniformly from `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`; panics when the range is empty.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift keeps the bias below 2^-64 per draw,
                // far under anything these simulations can resolve.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded by
    /// expanding the 64-bit seed through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let i: usize = rng.gen_range(0..3);
            seen[i] = true;
        }
        assert_eq!(seen, [true, true, true]);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1..16u8);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let mut r: &mut StdRng = &mut rng;
        let _ = draw(&mut r);
    }
}
