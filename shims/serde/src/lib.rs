//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal data model instead: [`Serialize`] lowers a value
//! into a self-describing [`Value`] tree and [`Deserialize`] rebuilds a
//! typed value from one. `serde_json` (also a shim) renders and parses
//! `Value` as JSON text. The derive macros live in the `serde_derive`
//! shim and support structs with named fields plus enums with unit and
//! newtype variants — exactly what the study's output types need.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also covers unsigned values that fit).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Views the value as an object's field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Views the value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view, unifying the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            // Numbers compare numerically across variants so that a
            // round-trip through text (where `2.0` prints as `2`) still
            // compares equal.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
                _ => false,
            },
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom<M: std::fmt::Display>(msg: M) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the shim data model.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a typed value, reporting shape mismatches as [`Error`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches a required object field (used by the derive expansion).
pub fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i).map_err(Error::custom),
                    Value::UInt(u) => <$t>::try_from(u).map_err(Error::custom),
                    Value::Float(f)
                        if f.fract() == 0.0
                            && f >= <$t>::MIN as f64
                            && f <= <$t>::MAX as f64 =>
                    {
                        Ok(f as $t)
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i).map_err(Error::custom),
                    Value::UInt(u) => <$t>::try_from(u).map_err(Error::custom),
                    Value::Float(f)
                        if f.fract() == 0.0 && f >= 0.0 && f <= <$t>::MAX as f64 =>
                    {
                        Ok(f as $t)
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        // BTreeMap iterates in key order, so the serialized object is
        // deterministic (the property lint rule D2 wants from maps
        // feeding serialization).
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = items.iter();
                Ok(($({
                    let _ = $n; // positional
                    $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                },)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0i64, -5, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(u32::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::Float(7.5)).is_err());
        // Out-of-range floats must error, not saturate.
        assert!(u32::from_value(&Value::Float(1e10)).is_err());
        assert!(i8::from_value(&Value::Float(-129.0)).is_err());
        assert!(i8::from_value(&Value::Float(127.0)).is_ok());
    }

    #[test]
    fn numeric_equality_crosses_variants() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let v = xs.to_value();
        assert_eq!(Vec::<(f64, f64)>::from_value(&v).unwrap(), xs);
    }
}
