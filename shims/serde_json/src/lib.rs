//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`], and
//! a strict JSON parser producing the serde shim's [`Value`].

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float (JSON
/// has no representation for NaN or infinities).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse error for malformed JSON, or a shape error when the
/// parsed value does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("non-finite float is not valid JSON"));
            }
            // `{}` on f64 always round-trips; force a decimal point so
            // the token stays visibly a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number encoding"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::custom)
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::custom)
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate in a
                                // second \u escape must follow.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(Error::custom("unpaired surrogate"));
                            } else {
                                code
                            };
                            s.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::custom("bad codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume the whole run of unescaped bytes in one
                    // shot. (Validating per character from the cursor
                    // to the end of input made string parsing
                    // quadratic — pathological for the multi-hundred-
                    // kilobyte circuit artifacts the compile cache
                    // stores.) The delimiters `"` and `\` are ASCII,
                    // so the run boundary always falls on a UTF-8
                    // character boundary of the (already validated)
                    // input.
                    let mut end = 1;
                    while end < rest.len() && rest[end] != b'"' && rest[end] != b'\\' {
                        end += 1;
                    }
                    let text = std::str::from_utf8(&rest[..end])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    s.push_str(text);
                    self.pos += end;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape at the cursor.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::custom("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_compound_values() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("QRCA \"32\"".to_string())),
            (
                "points".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Int(-2), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let huge: f64 = from_str(&to_string(&1e300f64).unwrap()).unwrap();
        assert_eq!(huge, 1e300);
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_surrogates_error() {
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_string()));
        let v: Value = from_str("\"\\u00e9\\n\"").unwrap();
        assert_eq!(v, Value::Str("é\n".to_string()));
        assert!(from_str::<Value>("\"\\ud83d\"").is_err());
        assert!(from_str::<Value>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<Value>("\"\\ude00\"").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
