//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! It keeps the macro surface (`criterion_group!`, `criterion_main!`)
//! and the `Criterion` / `Bencher` / `BenchmarkGroup` / `BenchmarkId`
//! types, but measures with a simple warmup-then-sample wall-clock loop
//! and prints one `name ... mean time/iter` line per benchmark instead
//! of criterion's statistical reports. Benches stay `harness = false`
//! binaries, so `cargo bench` runs them unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Wall-clock budget per benchmark's measurement phase.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim does not subsample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Runs the timed closure: a few warmup iterations, then as many timed
/// iterations as fit the budget.
pub struct Bencher {
    budget: Duration,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` and records the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget && iters >= 10 {
                break;
            }
        }
        self.result_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one parameterized case.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&name, |b| f(b, input));
        self
    }

    /// Benchmarks an unparameterized case inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        self.criterion.bench_function(&name, &mut f);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name` or `name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

fn report(name: &str, b: &Bencher) {
    let (scaled, unit) = if b.result_ns >= 1e9 {
        (b.result_ns / 1e9, "s")
    } else if b.result_ns >= 1e6 {
        (b.result_ns / 1e6, "ms")
    } else if b.result_ns >= 1e3 {
        (b.result_ns / 1e3, "us")
    } else {
        (b.result_ns, "ns")
    };
    println!(
        "bench: {name:<50} {scaled:>10.3} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_times() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
