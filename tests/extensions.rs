//! Integration tests for the extension features (threshold sweeps,
//! tile optimization, the Draper adder, sequence simplification).

use speed_of_data::arch::tiling::{best_tile, tile_sweep};
use speed_of_data::kernels::{draper_adder, draper_adder_lowered};
use speed_of_data::prelude::*;
use speed_of_data::steane::threshold::threshold_sweep;
use speed_of_data::synth::search::HtGate;
use speed_of_data::synth::simplify::{simplify, t_count};

#[test]
fn draper_adder_adds_via_statevector() {
    use speed_of_data::circuit::sim::statevector::State;
    let n = 3;
    for a in 0..(1usize << n) {
        for b in 0..(1usize << n) {
            let mut s = State::basis(2 * n, a | (b << n));
            s.run(&draper_adder(n));
            let want = a | (((a + b) % (1 << n)) << n);
            assert!(s.amps()[want].norm_sq() > 1.0 - 1e-9, "{a}+{b} failed");
        }
    }
}

#[test]
fn draper_adder_characterizes_with_fewer_qubits_than_qrca() {
    let synth = SynthAdapter::with_budget(6, 5e-2);
    let d = characterize(&draper_adder_lowered(16, &synth));
    let r = characterize(&qrca_lowered(16));
    assert_eq!(d.n_qubits, 32);
    assert_eq!(r.n_qubits, 49);
    assert!(d.breakdown.ancilla_prep_share() > 0.5);
}

#[test]
fn threshold_sweep_rates_increase_with_noise() {
    let pts = threshold_sweep(PrepStrategy::Basic, &[5.0, 50.0], 8_000, 3, 2);
    assert!(pts[1].eval.error_rate() > pts[0].eval.error_rate());
    assert!(pts[1].p_gate > pts[0].p_gate);
}

#[test]
fn tile_optimizer_returns_a_swept_size() {
    let c = qcla_lowered(16);
    let sweep = tile_sweep(&c, 5e4);
    let best = best_tile(&c, 5e4);
    assert!(sweep.iter().any(|p| p.tile_qubits == best.tile_qubits));
    assert!(sweep.iter().all(|p| best.exec_us <= p.exec_us + 1e-9));
}

#[test]
fn simplification_reduces_qft_gate_counts() {
    // Lowering with simplification must not increase length and must
    // preserve the T-count accounting.
    let word = vec![
        HtGate::H,
        HtGate::H,
        HtGate::T,
        HtGate::T,
        HtGate::S,
        HtGate::S,
        HtGate::S,
        HtGate::S,
    ];
    let simp = simplify(&word);
    assert!(simp.len() < word.len());
    assert_eq!(t_count(&simp), 0); // TT SSSS = S + 2 full turns -> S
    assert_eq!(simp, vec![HtGate::S]);
}

#[test]
fn simplified_qft_is_still_physical_and_correct_shape() {
    let synth = SynthAdapter::with_budget(8, 2e-2);
    let c = qft_lowered(16, &synth);
    assert!(c.gates().iter().all(|g| g.is_physical()));
    let r = characterize(&c);
    assert!(r.breakdown.ancilla_prep_share() > 0.6);
}
