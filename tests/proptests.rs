//! Property-based tests across the stack (proptest).

use proptest::prelude::*;
use qods_circuit::circuit::{Circuit, NoSynth};
use qods_circuit::dag::Dag;
use qods_circuit::sim::statevector::State;
use qods_layout::grid::Grid;
use qods_layout::macroblock::{Macroblock, MacroblockKind};
use qods_layout::route::route;
use qods_phys::error_model::ErrorModel;
use qods_phys::pauli::{Pauli, PauliString};
use qods_steane::code::SteaneCode;
use qods_steane::encoder::{encode_zero, EncoderMovement};
use qods_steane::executor::Executor;
use qods_steane::tableau::Tableau;
use qods_synth::search::Synthesizer;
use qods_synth::su2::U2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use speed_of_data::kernels::verify_adder;
use speed_of_data::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pauli strings form an abelian group under product, and
    /// commutation is symmetric.
    #[test]
    fn pauli_string_group_laws(x1 in 0u64..128, z1 in 0u64..128, x2 in 0u64..128, z2 in 0u64..128) {
        let a = PauliString::from_masks(7, x1, z1);
        let b = PauliString::from_masks(7, x2, z2);
        prop_assert_eq!(a.product(&b), b.product(&a));
        prop_assert!(a.product(&a).is_identity());
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        // Commutation matches the symplectic form.
        let form = ((a.x & b.z).count_ones() + (a.z & b.x).count_ones()).is_multiple_of(2);
        prop_assert_eq!(a.commutes_with(&b), form);
    }

    /// The Steane decoder corrects every weight-1 error and flags
    /// every weight-2 error as logical after decoding.
    #[test]
    fn steane_decoding_distance(q1 in 0usize..7, q2 in 0usize..7) {
        let code = SteaneCode::new();
        let e1 = 1u8 << q1;
        prop_assert!(!code.uncorrectable(e1));
        if q1 != q2 {
            let e2 = e1 | (1 << q2);
            prop_assert!(code.uncorrectable(e2));
        }
    }

    /// Single injected Paulis anywhere in the encoder's output are
    /// never uncorrectable (distance 3).
    #[test]
    fn encoder_output_tolerates_single_faults(q in 0usize..7, p in 0usize..3) {
        let pauli = [Pauli::X, Pauli::Y, Pauli::Z][p];
        let mut rng = StdRng::seed_from_u64(7);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        let block = [0, 1, 2, 3, 4, 5, 6];
        encode_zero(&mut ex, &block, EncoderMovement::default());
        ex.inject(q, pauli);
        let code = SteaneCode::new();
        prop_assert!(!code.uncorrectable_xz(ex.x_mask(&block), ex.z_mask(&block)));
    }

    /// Both adders compute a + b for random operands and widths.
    #[test]
    fn adders_add(n in 1usize..7, a in 0u64..64, b in 0u64..64) {
        let mask = (1u64 << n) - 1;
        verify_adder(&qrca(n), n, a & mask, b & mask).map_err(TestCaseError::fail)?;
        verify_adder(&qcla(n), n, a & mask, b & mask).map_err(TestCaseError::fail)?;
    }

    /// Lowering preserves unitary semantics on random 3-qubit
    /// Clifford+Toffoli circuits.
    #[test]
    fn lowering_preserves_semantics(ops in proptest::collection::vec(0u8..6, 1..12), basis in 0usize..8) {
        let mut c = Circuit::new(3);
        for (i, op) in ops.iter().enumerate() {
            let q = i % 3;
            match op {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.t(q),
                3 => c.cx(q, (q + 1) % 3),
                4 => c.toffoli(q, (q + 1) % 3, (q + 2) % 3),
                _ => c.x(q),
            }
        }
        let lowered = c.lower(&NoSynth);
        let mut s1 = State::basis(3, basis);
        s1.run(&c);
        let mut s2 = State::basis(3, basis);
        s2.run(&lowered);
        prop_assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-9);
    }

    /// Synthesized sequences realize their reported distance.
    #[test]
    fn synthesis_reports_honest_distances(k in 3u8..9) {
        let synth = Synthesizer::with_budget(6, 1e-3);
        let seq = synth.rz_pi_over_2k(k, false);
        let target = U2::phase(std::f64::consts::PI / f64::from(1u32 << k));
        let actual = seq.matrix().distance(&target);
        prop_assert!((actual - seq.distance).abs() < 1e-9);
    }

    /// The DAG's ASAP schedule never starts a gate before a
    /// predecessor finishes, for random circuits.
    #[test]
    fn asap_respects_dependencies(ops in proptest::collection::vec((0usize..4, 0usize..4), 1..40)) {
        let mut c = Circuit::new(4);
        for &(a, b) in &ops {
            if a == b {
                c.h(a);
            } else {
                c.cx(a, b);
            }
        }
        let dag = Dag::build(&c);
        let (start, makespan) = dag.asap(|_| 1.0);
        for i in 0..c.len() {
            for &p in dag.preds(i) {
                prop_assert!(start[i] >= start[p] + 1.0 - 1e-12);
            }
            prop_assert!(start[i] + 1.0 <= makespan + 1e-12);
        }
    }

    /// Routing cost is symmetric on an all-intersection grid.
    #[test]
    fn route_cost_symmetry(r1 in 0usize..5, c1 in 0usize..5, r2 in 0usize..5, c2 in 0usize..5) {
        let mut g = Grid::new(5, 5);
        for r in 0..5 {
            for c in 0..5 {
                g.place(r, c, Macroblock::new(MacroblockKind::FourWayIntersection));
            }
        }
        let t = LatencyTable::ion_trap();
        let fwd = route(&g, (r1, c1), (r2, c2), &t).expect("connected");
        let back = route(&g, (r2, c2), (r1, c1), &t).expect("connected");
        prop_assert_eq!(fwd.moves, back.moves);
        prop_assert_eq!(fwd.turns, back.turns);
        // Manhattan lower bound on moves.
        let manhattan = r1.abs_diff(r2) + c1.abs_diff(c2);
        prop_assert_eq!(fwd.moves as usize, manhattan);
    }

    /// Frame error propagation agrees with tableau conjugation: a
    /// Pauli error pushed through a random Clifford circuit matches
    /// the conjugated Pauli row.
    #[test]
    fn frame_matches_tableau(ops in proptest::collection::vec((0u8..3, 0usize..4, 0usize..4), 1..20),
                             q0 in 0usize..4, px in 0usize..3) {
        use qods_phys::frame::PauliFrame;
        use qods_phys::ops::PhysOp;
        use qods_phys::pauli::PauliString;
        let pauli = [Pauli::X, Pauli::Y, Pauli::Z][px];
        let mut rng = StdRng::seed_from_u64(1);
        let mut frame = PauliFrame::new(4, ErrorModel::noiseless());
        frame.inject(q0, pauli);
        let mut tab = Tableau::empty(4);
        let (x0, z0) = pauli.bits();
        tab.push(PauliString::from_masks(4, (x0 as u64) << q0, (z0 as u64) << q0));
        for &(kind, a, b) in &ops {
            match kind {
                0 => {
                    frame.apply(&PhysOp::h(a), &mut rng);
                    tab.h(a);
                }
                1 => {
                    frame.apply(&PhysOp::Gate1(qods_phys::ops::Gate1::S, a), &mut rng);
                    tab.s(a);
                }
                _ => {
                    if a != b {
                        frame.apply(&PhysOp::cx(a, b), &mut rng);
                        tab.cx(a, b);
                    }
                }
            }
        }
        let expect = &tab.rows()[0];
        let got = frame.extract(&[0, 1, 2, 3]);
        prop_assert_eq!(got.x, expect.x);
        prop_assert_eq!(got.z, expect.z);
    }

    /// Architecture simulation is deterministic and monotone in area
    /// for random small circuits.
    #[test]
    fn simulation_properties(ops in proptest::collection::vec((0usize..4, 0usize..4), 1..30)) {
        let mut c = Circuit::new(4);
        for &(a, b) in &ops {
            if a == b {
                c.t(a);
            } else {
                c.cx(a, b);
            }
        }
        let t1 = simulate(&c, Arch::FullyMultiplexed, 1e4).makespan_us;
        let t2 = simulate(&c, Arch::FullyMultiplexed, 1e4).makespan_us;
        prop_assert_eq!(t1, t2);
        let big = simulate(&c, Arch::FullyMultiplexed, 1e6).makespan_us;
        prop_assert!(big <= t1 * 1.0001);
    }
}
