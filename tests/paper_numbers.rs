//! Exact-number integration tests: every value the paper publishes
//! that is derivable from its own constants must reproduce.

use speed_of_data::prelude::*;

#[test]
fn table1_and_table4_latencies() {
    let t = LatencyTable::ion_trap();
    assert_eq!(
        (t.t_1q, t.t_2q, t.t_meas, t.t_prep, t.t_move, t.t_turn),
        (1.0, 10.0, 50.0, 51.0, 1.0, 10.0)
    );
}

#[test]
fn fig11_simple_factory() {
    let f = SimpleFactory::paper();
    assert_eq!(f.prep_latency_us(), 323.0);
    assert_eq!(f.area(), 90);
    assert!((f.throughput_per_ms() - 3.1).abs() < 0.01);
}

#[test]
fn table5_table6_zero_factory() {
    let f = ZeroFactory::paper().bandwidth_matched();
    let counts: Vec<u32> = f.stages.iter().map(|s| s.count).collect();
    assert_eq!(counts, vec![24, 1, 1, 3, 2]);
    assert_eq!(f.functional_area(), 130);
    assert_eq!(f.crossbar_area(), 168);
    assert_eq!(f.total_area(), 298);
    assert!((f.throughput_per_ms - 10.5).abs() < 0.05);
}

#[test]
fn table7_table8_pi8_factory() {
    let f = Pi8Factory::paper().bandwidth_matched();
    let counts: Vec<u32> = f.stages.iter().map(|s| s.count).collect();
    assert_eq!(counts, vec![4, 1, 4, 2]);
    assert_eq!(f.functional_area(), 147);
    assert_eq!(f.crossbar_area(), 256);
    assert_eq!(f.total_area(), 403);
    assert!((f.throughput_per_ms - 18.3).abs() < 0.1);
}

#[test]
fn table9_reproduces_from_paper_bandwidths() {
    // Row: (name, qubits, zero bw, pi8 bw, data, qec area, pi8 area).
    let rows = [
        ("QRCA", 97usize, 34.8, 7.0, 679.0, 986.9, 354.7),
        ("QCLA", 123, 306.1, 62.7, 861.0, 8682.2, 3154.4),
        ("QFT", 32, 36.8, 8.6, 224.0, 1043.5, 433.7),
    ];
    for (name, nq, zbw, pbw, data, qec, pi8) in rows {
        let row = table9_row_from_bandwidths(name, nq, zbw, pbw);
        assert_eq!(row.data_area, data, "{name} data");
        assert!(
            (row.qec_factory_area - qec).abs() / qec < 0.01,
            "{name} qec area {} vs paper {qec}",
            row.qec_factory_area
        );
        assert!(
            (row.pi8_factory_area - pi8).abs() / pi8 < 0.015,
            "{name} pi8 area {} vs paper {pi8}",
            row.pi8_factory_area
        );
    }
}

#[test]
fn benchmark_qubit_budgets_match_table9_data_areas() {
    assert_eq!(qrca(32).n_qubits(), 97); // 679 = 7 x 97
    assert_eq!(qcla(32).n_qubits(), 123); // 861 = 7 x 123
    assert_eq!(qft(32).n_qubits(), 32); // 224 = 7 x 32
}

#[test]
fn characterization_model_constants() {
    let m = CharacterizationModel::ion_trap();
    assert_eq!(m.qec_interact(), 122.0);
    assert_eq!(m.zero_prep(), 323.0);
    assert_eq!(m.pi8_interact(), 61.0);
    assert_eq!(m.pi8_prep(), 668.0);
}

#[test]
fn factory_and_characterization_models_agree() {
    // qods-circuit's latency constants must equal what qods-factory
    // derives from its own unit specs.
    let m = CharacterizationModel::ion_trap();
    let simple = SimpleFactory::paper();
    assert_eq!(m.zero_prep(), simple.prep_latency_us());
    // pi/8 prep tail = Table 7 stage latencies.
    let t = LatencyTable::ion_trap();
    let stages: f64 = Pi8Factory::units()
        .iter()
        .skip(1) // stage 1 runs concurrently with the zero prep
        .map(|u| u.latency_us(&t))
        .sum();
    assert_eq!(m.pi8_prep(), simple.prep_latency_us() + stages);
}

#[test]
fn section_3_3_non_transversal_fractions() {
    // Paper: QRCA 40.5%, QCLA 41.0%, QFT 46.9%. Ours use the standard
    // Toffoli decomposition and our synthesis budget; the fractions
    // must land in the same band.
    let f_rca = qrca_lowered(32).non_transversal_fraction();
    let f_cla = qcla_lowered(32).non_transversal_fraction();
    assert!((0.35..0.50).contains(&f_rca), "QRCA {f_rca}");
    assert!((0.35..0.50).contains(&f_cla), "QCLA {f_cla}");
    let synth = SynthAdapter::with_budget(10, 2e-2);
    let f_qft = qft_lowered(32, &synth).non_transversal_fraction();
    assert!((0.25..0.60).contains(&f_qft), "QFT {f_qft}");
}

#[test]
fn section_5_3_bandwidth_density_parity() {
    // "They produce virtually the same encoded zero ancilla bandwidth
    // per unit area."
    let simple = SimpleFactory::paper();
    let pipelined = ZeroFactory::paper().bandwidth_matched();
    let ratio = pipelined.throughput_per_area() / simple.throughput_per_area();
    assert!((0.9..1.15).contains(&ratio), "density ratio {ratio}");
}
