//! End-to-end integration: kernels verify functionally, characterize
//! with the paper's shape, and the full study runs and serializes.

use speed_of_data::kernels::verify_adder;
use speed_of_data::prelude::*;

#[test]
fn adders_add_across_widths() {
    for n in [2usize, 4, 8] {
        let rca = qrca(n);
        let cla = qcla(n);
        let mask = (1u64 << n) - 1;
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..25 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x & mask;
            x = x.rotate_left(11);
            let b = x & mask;
            verify_adder(&rca, n, a, b).expect("QRCA");
            verify_adder(&cla, n, a, b).expect("QCLA");
        }
    }
}

#[test]
fn table2_shape_holds_for_all_benchmarks() {
    // Every row of Table 2: prep dominates (>70%), interact in the
    // teens-to-twenties, data ops a few percent.
    let synth = SynthAdapter::with_budget(8, 3e-2);
    for c in [qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)] {
        let r = characterize(&c);
        let (d, i, p) = (
            r.breakdown.data_op_share(),
            r.breakdown.qec_interact_share(),
            r.breakdown.ancilla_prep_share(),
        );
        assert!(d < 0.10, "{}: data share {d}", r.name);
        assert!((0.10..0.30).contains(&i), "{}: interact share {i}", r.name);
        assert!(p > 0.70, "{}: prep share {p}", r.name);
    }
}

#[test]
fn table3_bandwidth_ratios_hold() {
    // The carry-lookahead adder needs roughly an order of magnitude
    // more ancilla bandwidth than the ripple-carry adder (paper:
    // 306.1 vs 34.8 zeros/ms); the QFT sits near the QRCA.
    let rca = characterize(&qrca_lowered(32)).bandwidth;
    let cla = characterize(&qcla_lowered(32)).bandwidth;
    let ratio = cla.zero_per_ms / rca.zero_per_ms;
    assert!(
        (5.0..15.0).contains(&ratio),
        "QCLA/QRCA bandwidth ratio {ratio}"
    );
    // pi/8 bandwidths scale similarly (paper: 62.7 vs 7.0).
    let pr = cla.pi8_per_ms / rca.pi8_per_ms;
    assert!((5.0..15.0).contains(&pr), "pi/8 ratio {pr}");
}

#[test]
fn fig7_demand_profiles_are_positive_and_bounded() {
    let model = CharacterizationModel::ion_trap();
    let c = qrca_lowered(16);
    let profile = demand_profile(&c, &model, 200);
    assert_eq!(profile.len(), 200);
    let peak = profile
        .iter()
        .map(|p| p.zeros_in_flight)
        .fold(0.0, f64::max);
    let avg: f64 = profile.iter().map(|p| p.zeros_in_flight).sum::<f64>() / profile.len() as f64;
    assert!(peak > 0.0);
    assert!(avg > 0.0);
    assert!(peak < 10_000.0, "implausible peak {peak}");
    assert!(peak >= avg);
}

#[test]
fn fig8_sweep_plateaus_at_speed_of_data() {
    let model = CharacterizationModel::ion_trap();
    let c = qrca_lowered(16);
    let avg = characterize(&c).bandwidth.zero_per_ms;
    let pts = throughput_sweep(&c, &model, avg / 10.0, avg * 10.0, 9);
    // Monotone non-increasing...
    for w in pts.windows(2) {
        assert!(w[1].execution_us <= w[0].execution_us * 1.0001);
    }
    // ...with a starved-to-plateau span of at least ~4x.
    assert!(pts[0].execution_us > 3.0 * pts.last().unwrap().execution_us);
    // Plateau equals the unconstrained execution time.
    let unconstrained = execution_time_us(&c, &model, f64::INFINITY);
    assert!((pts.last().unwrap().execution_us - unconstrained).abs() < 1e-6);
}

#[test]
fn full_smoke_study_serializes() {
    let study = Study::new(StudyConfig::smoke());
    let out = study.run_all();
    let json = serde_json::to_string(&out).expect("serialize");
    assert!(json.len() > 1000);
    for key in ["fig4", "table2", "table9", "fig15", "cascade"] {
        assert!(json.contains(key), "missing {key}");
    }
}

#[test]
fn report_renders_non_trivially() {
    let out = Study::new(StudyConfig::smoke()).run_all();
    let text = speed_of_data::report::render(&out);
    assert!(text.lines().count() > 30);
}
