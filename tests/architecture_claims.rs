//! Integration tests for the §5 architectural claims (Fig 15 and the
//! paper's headline).

use speed_of_data::prelude::*;

fn sweep_areas() -> Vec<f64> {
    log_areas(200.0, 3e6, 11)
}

#[test]
fn fully_multiplexed_dominates_everywhere() {
    let c = qrca_lowered(16);
    for &area in &sweep_areas() {
        let fm = simulate(&c, Arch::FullyMultiplexed, area).makespan_us;
        let qla = simulate(&c, Arch::Qla, area).makespan_us;
        let cqla = simulate(&c, Arch::default_cqla(c.n_qubits()), area).makespan_us;
        assert!(fm <= qla * 1.001, "area {area}: FM {fm} vs QLA {qla}");
        assert!(fm <= cqla * 1.001, "area {area}: FM {fm} vs CQLA {cqla}");
    }
}

#[test]
fn qla_needs_far_more_area_but_plateaus_similarly() {
    // §5.2: "QLA requires two orders of magnitude more area ... QLA
    // eventually plateaus at a similar execution time". Our model
    // reproduces a >=8x area penalty (see EXPERIMENTS.md for the
    // paper-vs-measured discussion) and a plateau within 2x.
    let c = qrca_lowered(32);
    let s = speedup_summary(&c, &sweep_areas());
    assert!(
        s.qla_area_penalty >= 8.0,
        "QLA area penalty only {}x",
        s.qla_area_penalty
    );
    assert!(
        s.qla_plateau_us < 2.0 * s.fm_plateau_us,
        "QLA plateau {} vs FM {}",
        s.qla_plateau_us,
        s.fm_plateau_us
    );
}

#[test]
fn cqla_plateaus_half_an_order_or_more_above_fm() {
    // §5.2: CQLA plateaus half an order to an order of magnitude
    // higher than Fully-Multiplexed.
    for c in [qrca_lowered(32), qcla_lowered(32)] {
        let s = speedup_summary(&c, &sweep_areas());
        let ratio = s.cqla_plateau_us / s.fm_plateau_us;
        assert!(
            ratio > 2.0,
            "{}: CQLA plateau only {ratio}x above FM",
            c.name
        );
        assert!(ratio < 60.0, "{}: CQLA ratio {ratio} implausible", c.name);
    }
}

#[test]
fn headline_speedup_exceeds_five_x() {
    // §1/§6: "more than five times speedup over previous proposals".
    // The parallel benchmark shows it most clearly.
    let c = qcla_lowered(32);
    let s = speedup_summary(&c, &sweep_areas());
    assert!(
        s.max_speedup > 5.0,
        "max equal-area speedup only {:.2}x",
        s.max_speedup
    );
}

#[test]
fn qalypso_tracks_fully_multiplexed() {
    // Qalypso is the tiled realization of fully-multiplexed
    // distribution; at generous area they must agree closely.
    let c = qcla_lowered(16);
    let fm = simulate(&c, Arch::FullyMultiplexed, 1e6).makespan_us;
    let qa = simulate(&c, Arch::default_qalypso(), 1e6).makespan_us;
    assert!((qa / fm) < 1.25, "Qalypso {qa} strays from FM {fm}");
}

#[test]
fn qalypso_tile_size_tradeoff_exists() {
    // Small tiles keep ballistic movement cheap but force inter-tile
    // teleports; huge tiles do the reverse (§5.3's open problem).
    let c = qcla_lowered(32);
    let tiny = simulate(&c, Arch::Qalypso { tile_qubits: 2 }, 1e6);
    let huge = simulate(&c, Arch::Qalypso { tile_qubits: 1024 }, 1e6);
    assert!(tiny.teleports > 0);
    assert_eq!(huge.teleports, 0);
    // Neither extreme beats a moderate tile.
    let mid = simulate(&c, Arch::Qalypso { tile_qubits: 16 }, 1e6);
    assert!(mid.makespan_us <= tiny.makespan_us);
}

#[test]
fn more_area_never_hurts_any_architecture() {
    let c = qft_lowered(16, &SynthAdapter::with_budget(6, 5e-2));
    for arch in [
        Arch::FullyMultiplexed,
        Arch::Qla,
        Arch::default_cqla(16),
        Arch::default_qalypso(),
    ] {
        let mut prev = f64::INFINITY;
        for &area in &sweep_areas() {
            let t = simulate(&c, arch, area).makespan_us;
            assert!(
                t <= prev * 1.0001,
                "{}: non-monotone at area {area}",
                arch.name()
            );
            prev = t;
        }
    }
}
