//! Integration tests for the experiment-registry API: id coverage
//! against the documented table, serde round-trips, and agreement
//! between individually-addressed runs and the full `run_all()`.

use speed_of_data::prelude::*;
use speed_of_data::study::PaperReproduction;

/// Extracts every backticked experiment id from the artifact table in
/// `qods-core`'s crate docs, so the docs and the registry can never
/// drift apart silently.
fn documented_ids() -> Vec<String> {
    let docs = include_str!("../crates/core/src/lib.rs");
    let mut ids = Vec::new();
    for line in docs.lines() {
        // Table rows look like `//! | Table 9 | `table9` | [...] |`.
        let Some(row) = line.trim_start().strip_prefix("//! |") else {
            continue;
        };
        let cols: Vec<&str> = row.split('|').collect();
        if cols.len() < 2 {
            continue;
        }
        let id_col = cols[1];
        let mut rest = id_col;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(end) = after.find('`') else { break };
            ids.push(after[..end].to_string());
            rest = &after[end + 1..];
        }
    }
    ids
}

#[test]
fn registry_covers_every_documented_id() {
    let registry = Registry::paper();
    let ids = documented_ids();
    assert!(
        ids.len() >= 14,
        "docs table lists only {} ids: {ids:?}",
        ids.len()
    );
    for id in &ids {
        assert!(
            registry.get(id).is_some(),
            "documented id `{id}` does not resolve in the registry"
        );
    }
    // And the other direction: every registered id (and alias) is
    // documented.
    for info in registry.list() {
        assert!(
            ids.iter().any(|i| i == info.id),
            "registered id `{}` missing from the docs table",
            info.id
        );
        for alias in info.aliases {
            assert!(
                ids.iter().any(|i| i == *alias),
                "alias `{alias}` missing from the docs table"
            );
        }
    }
}

#[test]
fn repro_list_shape_is_complete() {
    let registry = Registry::paper();
    let list = registry.list();
    assert_eq!(list.len(), 14);
    for info in &list {
        assert!(!info.title.is_empty(), "{}: empty title", info.id);
        assert!(
            info.id.chars().all(|c| c.is_ascii_alphanumeric()),
            "{}: ids must be bare alphanumeric tokens",
            info.id
        );
    }
}

#[test]
fn every_experiment_output_round_trips_through_serde() {
    let registry = Registry::paper();
    let ctx = StudyContext::new(StudyConfig::smoke());
    for record in registry.run_all(&ctx) {
        let json = serde_json::to_string(&record).expect("serialize record");
        let back: ExperimentRecord = serde_json::from_str(&json).expect("deserialize record");
        assert_eq!(
            back, record,
            "{}: JSON round-trip changed the record",
            record.id
        );
        // The output is externally tagged, so archived files are
        // self-describing.
        let value: serde_json::Value = serde_json::from_str(&json).expect("parse as value");
        assert!(
            value
                .get("output")
                .and_then(|o| o.as_object())
                .map(|o| o.len())
                == Some(1),
            "{}: output must be a single-variant tag object",
            record.id
        );
    }
}

#[test]
fn single_experiment_runs_agree_with_run_all() {
    let config = StudyConfig::smoke();
    let out = Study::new(config.clone()).run_all();

    // Re-run a representative subset individually, each over its own
    // fresh context, and compare against the corresponding run_all
    // fields. Everything is seeded, so agreement is exact.
    let registry = Registry::paper();
    let ctx = StudyContext::new(config);
    let records = registry
        .run_selected(
            &["fig4", "table2", "table9", "table5", "fig15", "fig6"],
            &ctx,
        )
        .expect("known ids");
    for record in records {
        match record.output {
            ExperimentOutput::Fig4(o) => assert_eq!(o.rows, out.fig4),
            ExperimentOutput::Table2(o) => assert_eq!(o.rows, out.table2),
            ExperimentOutput::Table9(o) => assert_eq!(o.rows, out.table9),
            ExperimentOutput::ZeroFactory(o) => assert_eq!(o, out.factories.zero),
            ExperimentOutput::Fig15(o) => assert_eq!(o.panels, out.fig15),
            ExperimentOutput::Cascade(o) => assert_eq!(o.rows, out.cascade),
            other => panic!("unexpected output variant {other:?}"),
        }
    }
}

#[test]
fn aliases_run_the_same_experiment() {
    let registry = Registry::paper();
    let ctx = StudyContext::new(StudyConfig::smoke());
    let a = registry.run_one("table5", &ctx).expect("table5");
    let b = registry.run_one("table6", &ctx).expect("table6");
    assert_eq!(a.id, b.id);
    assert_eq!(a.output, b.output);
}

#[test]
fn run_all_lowers_benchmarks_exactly_once_across_parallel_experiments() {
    let ctx = StudyContext::new(StudyConfig::smoke());
    let records = Registry::paper().run_all(&ctx);
    assert_eq!(records.len(), 14);
    assert_eq!(ctx.lowering_runs(), 1);
}

#[test]
fn paper_reproduction_round_trips_and_has_no_tuple_fields() {
    let out = Study::new(StudyConfig::smoke()).run_all();
    let json = serde_json::to_string_pretty(&out).expect("serialize");
    let back: PaperReproduction = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, out);
    // Named-struct spot checks on what used to be anonymous tuples.
    let v: serde_json::Value = serde_json::from_str(&json).expect("value");
    let factories = v.get("factories").expect("factories");
    assert!(factories
        .get("zero")
        .and_then(|z| z.get("total_area"))
        .is_some());
    let t2 = v.get("table2").and_then(|t| t.as_array()).expect("table2");
    assert!(t2[0]
        .get("shares")
        .and_then(|s| s.get("ancilla_prep"))
        .is_some());
    let t9 = v.get("table9").and_then(|t| t.as_array()).expect("table9");
    assert!(t9[0].get("data").and_then(|d| d.get("share")).is_some());
    let cascade = v
        .get("cascade")
        .and_then(|c| c.as_array())
        .expect("cascade");
    assert!(cascade[0].get("expected_cx").is_some());
}
