//! # speed-of-data
//!
//! Umbrella crate for the reproduction of *"Running a Quantum Circuit at
//! the Speed of Data"* (Isailovic, Whitney, Patel, Kubiatowicz — ISCA
//! 2008). It re-exports the full public API from [`qods_core`], so a
//! downstream user only needs this one dependency.
//!
//! See the repository `README.md` for an architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use speed_of_data::prelude::*;
//!
//! // The pipelined encoded-zero ancilla factory of §4.4.1.
//! let factory = ZeroFactory::paper();
//! let sized = factory.bandwidth_matched();
//! assert_eq!(sized.total_area(), 298);
//! ```

pub use qods_core::*;

/// The job-service layer: typed [`service::RunRequest`]s, the
/// content-addressed [`service::ContextPool`], the
/// [`service::Scheduler`], and (as `qods-serve`) the NDJSON daemon.
///
/// ```
/// use speed_of_data::service::{Overrides, RunRequest, Scheduler};
/// use speed_of_data::StudyConfig;
///
/// let scheduler = Scheduler::with_options(StudyConfig::smoke(), 2, true);
/// let request = RunRequest::of(["table5"]).with_overrides(Overrides::default());
/// let result = scheduler.run(&request).expect("valid request");
/// assert_eq!(result.records.len(), 1);
/// ```
pub use qods_service as service;
