//! A hand-rolled single-pass Rust lexer: enough of the token grammar
//! (line/nested-block comments, cooked/raw/byte strings with escapes,
//! char literals vs. lifetimes) to split a source file into three
//! synchronized views the rules match against:
//!
//! * `raw` — the file's lines verbatim;
//! * `code` — the same lines with comments and string *interiors*
//!   blanked to spaces (byte lengths preserved, so columns line up
//!   with `raw`), which is what token searches run on;
//! * `strings` — every string literal with its decoded value and the
//!   (line, column) of its opening quote, which is what rule S1
//!   cross-checks against the canonical tables.
//!
//! A post-pass brace-matches `#[cfg(test)]` items so rules can skip
//! test code, and line comments are parsed for
//! `// qods-lint: allow(RULE) -- reason` suppression annotations.

/// Which source tree of a crate a file lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tree {
    /// `src/` — shipping code; all rules apply.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `examples/`.
    Examples,
    /// `benches/`.
    Benches,
}

/// One string literal: where its opening quote sits and its decoded
/// (escape-processed) value.
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 0-based byte column of the opening quote on that line.
    pub col: usize,
    /// The literal's value with escapes decoded.
    pub value: String,
}

/// A parsed `// qods-lint: allow(...) -- reason` annotation.
#[derive(Clone, Debug)]
pub struct AllowAnn {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line the suppression applies to (same line for a
    /// trailing comment, the next code line for a comment-only line).
    pub target: usize,
    /// Rule names listed inside `allow(...)`, as written.
    pub rules: Vec<String>,
    /// The free-text justification after `--`.
    pub reason: String,
}

/// A comment that names `qods-lint:` but does not parse as an allow
/// annotation — surfaced as a finding so typos cannot silently
/// un-suppress (or fake-suppress) anything.
#[derive(Clone, Debug)]
pub struct BadAllow {
    /// 1-based line of the malformed comment.
    pub line: usize,
    /// What was wrong with it.
    pub why: String,
}

/// One scanned source file: synchronized raw/masked views plus the
/// extracted literals and annotations.
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Cargo package name (`qods-net`, `speed-of-data`, ...).
    pub crate_name: String,
    /// Which tree of the crate the file is in.
    pub tree: Tree,
    /// Lines verbatim.
    pub raw: Vec<String>,
    /// Lines with comments and string interiors blanked to spaces.
    pub code: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Every string literal in the file.
    pub strings: Vec<StrLit>,
    /// Valid allow annotations.
    pub allows: Vec<AllowAnn>,
    /// Malformed `qods-lint:` comments.
    pub bad_allows: Vec<BadAllow>,
}

impl ScannedFile {
    /// The decoded string literal whose opening quote is at
    /// (1-based `line`, byte `col`), if any.
    pub fn string_at(&self, line: usize, col: usize) -> Option<&StrLit> {
        self.strings.iter().find(|s| s.line == line && s.col == col)
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `text` into a [`ScannedFile`].
pub fn scan(path: &str, crate_name: &str, tree: Tree, text: &str) -> ScannedFile {
    let raw: Vec<String> = text.lines().map(str::to_owned).collect();
    let mut code: Vec<Vec<u8>> = raw.iter().map(|l| l.as_bytes().to_vec()).collect();
    let mut strings = Vec::new();
    let mut comments: Vec<(usize, usize)> = Vec::new(); // (0-based line, byte col of "//")

    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut i = 0usize;
    let mut line = 0usize;
    let mut col = 0usize;

    // Masks the byte at the cursor (if it is not a newline) and
    // advances line/column bookkeeping.
    macro_rules! step {
        (mask) => {{
            if bytes[i] != b'\n' {
                if let Some(l) = code.get_mut(line) {
                    if let Some(c) = l.get_mut(col) {
                        *c = b' ';
                    }
                }
            }
            step!();
        }};
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 0;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    // Consumes a cooked string body starting at the opening quote,
    // decoding escapes. The quotes stay visible in `code`; the
    // interior is masked.
    macro_rules! cooked_string {
        () => {{
            let (start_line, start_col) = (line, col);
            step!(); // opening quote
            let mut value: Vec<u8> = Vec::new();
            let mut closed = false;
            while i < n {
                match bytes[i] {
                    b'"' => {
                        step!();
                        closed = true;
                        break;
                    }
                    b'\\' if i + 1 < n => {
                        step!(mask); // the backslash
                        match bytes[i] {
                            b'n' => value.push(b'\n'),
                            b't' => value.push(b'\t'),
                            b'r' => value.push(b'\r'),
                            b'0' => value.push(0),
                            b'\\' => value.push(b'\\'),
                            b'"' => value.push(b'"'),
                            b'\'' => value.push(b'\''),
                            b'x' => {
                                // \xNN — consume the escape char and
                                // up to two hex digits.
                                step!(mask);
                                let mut v = 0u8;
                                let mut k = 0;
                                while k < 2 && i < n && bytes[i].is_ascii_hexdigit() {
                                    v = v * 16 + (bytes[i] as char).to_digit(16).unwrap_or(0) as u8;
                                    step!(mask);
                                    k += 1;
                                }
                                value.push(v);
                                continue;
                            }
                            b'u' => {
                                // \u{...}
                                step!(mask);
                                let mut v: u32 = 0;
                                while i < n && bytes[i] != b'}' {
                                    if bytes[i].is_ascii_hexdigit() {
                                        v = v.wrapping_mul(16)
                                            + (bytes[i] as char).to_digit(16).unwrap_or(0);
                                    }
                                    step!(mask);
                                }
                                if i < n {
                                    step!(mask); // '}'
                                }
                                if let Some(ch) = char::from_u32(v) {
                                    let mut buf = [0u8; 4];
                                    value.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                                }
                                continue;
                            }
                            b'\n' => {
                                // Line continuation: skip the newline
                                // and the next line's leading spaces.
                                step!();
                                while i < n && (bytes[i] == b' ' || bytes[i] == b'\t') {
                                    step!(mask);
                                }
                                continue;
                            }
                            _ => value.push(bytes[i]),
                        }
                        step!(mask);
                    }
                    b'\n' => {
                        value.push(b'\n');
                        step!();
                    }
                    other => {
                        value.push(other);
                        step!(mask);
                    }
                }
            }
            let _ = closed;
            strings.push(StrLit {
                line: start_line + 1,
                col: start_col,
                value: String::from_utf8_lossy(&value).into_owned(),
            });
        }};
    }

    while i < n {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            comments.push((line, col));
            while i < n && bytes[i] != b'\n' {
                step!(mask);
            }
            continue;
        }
        // Block comment (nestable).
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let mut depth = 0u32;
            loop {
                if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                    depth += 1;
                    step!(mask);
                    step!(mask);
                } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    depth -= 1;
                    step!(mask);
                    step!(mask);
                    if depth == 0 {
                        break;
                    }
                } else if i < n {
                    step!(mask);
                } else {
                    break;
                }
                if i >= n || depth == 0 {
                    break;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r", r#", br#", b".
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let mut j = i;
            if bytes[j] == b'b' {
                j += 1;
            }
            let mut is_raw = false;
            if j < n && bytes[j] == b'r' {
                is_raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while is_raw && j < n && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && bytes[j] == b'"' && (is_raw || b == b'b') {
                while i < j {
                    step!(); // prefix chars stay visible
                }
                if is_raw {
                    // Raw string: no escapes; ends at `"` + hashes `#`s.
                    let (start_line, start_col) = (line, col);
                    step!(); // opening quote
                    let mut value: Vec<u8> = Vec::new();
                    while i < n {
                        if bytes[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                step!(); // closing quote
                                for _ in 0..hashes {
                                    step!();
                                }
                                break;
                            }
                        }
                        value.push(bytes[i]);
                        if bytes[i] == b'\n' {
                            step!();
                        } else {
                            step!(mask);
                        }
                    }
                    strings.push(StrLit {
                        line: start_line + 1,
                        col: start_col,
                        value: String::from_utf8_lossy(&value).into_owned(),
                    });
                } else {
                    cooked_string!();
                }
                continue;
            }
        }
        if b == b'"' {
            cooked_string!();
            continue;
        }
        // Char literal vs. lifetime.
        if b == b'\'' && i + 1 < n {
            if bytes[i + 1] == b'\\' {
                // Escaped char literal: consume to the closing quote.
                step!(); // opening quote
                step!(mask); // backslash
                while i < n && bytes[i] != b'\'' && bytes[i] != b'\n' {
                    step!(mask);
                }
                if i < n && bytes[i] == b'\'' {
                    step!();
                }
                continue;
            }
            // `'C'` where C is one (possibly multi-byte) char.
            let lead = bytes[i + 1];
            let char_len = if lead < 0x80 {
                1
            } else if lead >= 0xF0 {
                4
            } else if lead >= 0xE0 {
                3
            } else {
                2
            };
            if i + 1 + char_len < n && bytes[i + 1 + char_len] == b'\'' {
                step!(); // opening quote
                for _ in 0..char_len {
                    step!(mask);
                }
                step!(); // closing quote
                continue;
            }
            // Otherwise it is a lifetime — fall through.
        }
        step!();
    }

    let code: Vec<String> = code
        .into_iter()
        .map(|l| String::from_utf8_lossy(&l).into_owned())
        .collect();

    let in_test = mark_test_regions(&code);
    let (allows, bad_allows) = parse_allows(&raw, &code, &comments);

    ScannedFile {
        path: path.to_owned(),
        crate_name: crate_name.to_owned(),
        tree,
        raw,
        code,
        in_test,
        strings,
        allows,
        bad_allows,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute
/// line through the matching closing brace) by brace-counting on the
/// masked code, where braces inside strings/comments are already
/// blanked.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut l = 0usize;
    while l < code.len() {
        if !code[l].contains("#[cfg(test)]") {
            l += 1;
            continue;
        }
        // Find the first '{' at or after the attribute line, then
        // brace-match to the end of the item.
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = code.len().saturating_sub(1);
        'outer: for (k, ln) in code.iter().enumerate().skip(l) {
            for b in ln.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    // `#[cfg(test)]` on a brace-less item (a `use`,
                    // a `mod foo;`): the item ends at the semicolon.
                    b';' if !opened => {
                        end = k;
                        break 'outer;
                    }
                    _ => {}
                }
                if opened && depth == 0 {
                    end = k;
                    break 'outer;
                }
            }
        }
        for flag in in_test.iter_mut().take(end + 1).skip(l) {
            *flag = true;
        }
        l = end + 1;
    }
    in_test
}

/// Parses `// qods-lint: allow(R1, D2) -- reason` annotations out of
/// the line comments. Anything mentioning `qods-lint:` that does not
/// match the grammar becomes a [`BadAllow`].
fn parse_allows(
    raw: &[String],
    code: &[String],
    comments: &[(usize, usize)],
) -> (Vec<AllowAnn>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for &(line, col) in comments {
        let Some(text) = raw.get(line).and_then(|l| l.get(col..)) else {
            continue;
        };
        let Some(pos) = text.find("qods-lint:") else {
            continue;
        };
        let rest = text[pos + "qods-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad.push(BadAllow {
                line: line + 1,
                why: "expected `allow(RULE, ...) -- reason` after `qods-lint:`".to_owned(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push(BadAllow {
                line: line + 1,
                why: "unclosed `allow(` list".to_owned(),
            });
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadAllow {
                line: line + 1,
                why: "empty rule list in `allow()`".to_owned(),
            });
            continue;
        }
        let after = args[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix("--") else {
            bad.push(BadAllow {
                line: line + 1,
                why: "missing `-- reason` after `allow(...)`".to_owned(),
            });
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            bad.push(BadAllow {
                line: line + 1,
                why: "empty reason after `--`".to_owned(),
            });
            continue;
        }
        // A trailing comment suppresses its own line; a comment-only
        // line suppresses the next line that carries code.
        let own_line_has_code = code
            .get(line)
            .map(|l| !l[..col.min(l.len())].trim().is_empty())
            .unwrap_or(false);
        let target = if own_line_has_code {
            line + 1
        } else {
            let mut t = line + 1;
            while t < code.len() && code[t].trim().is_empty() {
                t += 1;
            }
            t.min(code.len().saturating_sub(1)) + 1
        };
        allows.push(AllowAnn {
            line: line + 1,
            target,
            rules,
            reason: reason.to_owned(),
        });
    }
    (allows, bad)
}

/// True when `tok` occurs in `line` with non-identifier bytes (or the
/// line edge) on both sides. `tok` may contain `::`.
pub fn has_token(line: &str, tok: &str) -> bool {
    !token_positions(line, tok).is_empty()
}

/// All byte positions where `tok` occurs token-wise in `line`.
pub fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let lb = line.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(tok) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(lb[at - 1]);
        let end = at + tok.len();
        let after_ok = end >= lb.len() || !is_ident_byte(lb[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + tok.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(text: &str) -> ScannedFile {
        scan("x/src/lib.rs", "qods-x", Tree::Src, text)
    }

    #[test]
    fn comments_and_strings_are_masked_but_lengths_survive() {
        let f = scan_src("let a = \"SystemTime::now\"; // Instant::now\nlet b = 1;\n");
        assert_eq!(f.raw.len(), 2);
        assert_eq!(f.code[0].len(), f.raw[0].len());
        assert!(!f.code[0].contains("SystemTime"));
        assert!(!f.code[0].contains("Instant"));
        assert!(f.code[0].contains("let a = \""));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "SystemTime::now");
        assert_eq!(f.strings[0].line, 1);
    }

    #[test]
    fn escapes_decode_and_raw_strings_keep_their_hashes_out_of_the_value() {
        let f = scan_src(r##"let a = "a\n\"b\""; let b = r#"raw "x" val"#;"##);
        assert_eq!(f.strings[0].value, "a\n\"b\"");
        assert_eq!(f.strings[1].value, "raw \"x\" val");
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
        let f = scan_src("fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; q }\n");
        // The quote char literal must not open a string.
        assert!(f.strings.is_empty());
        assert!(f.code[0].contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_regions_are_brace_matched() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan_src(text);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_annotations_parse_with_targets_and_bad_ones_are_reported() {
        let text = concat!(
            "let a = 1; // qods-lint: allow(R1) -- trailing case\n",
            "// qods-lint: allow(D1, D2) -- next-line case\n",
            "let b = 2;\n",
            "// qods-lint: allow(R1)\n",
        );
        let f = scan_src(text);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].target, 1);
        assert_eq!(f.allows[0].rules, vec!["R1".to_owned()]);
        assert_eq!(f.allows[1].target, 3);
        assert_eq!(f.allows[1].rules, vec!["D1".to_owned(), "D2".to_owned()]);
        assert_eq!(f.bad_allows.len(), 1, "missing reason must be loud");
    }

    #[test]
    fn token_search_respects_identifier_boundaries() {
        assert!(has_token("x.unwrap()", "unwrap"));
        assert!(!has_token("x.unwrap_or_else(f)", "unwrap"));
        assert!(has_token("Instant::now()", "Instant::now"));
        assert!(!has_token("MyInstant::nowish()", "Instant::now"));
    }
}
