//! Intra-procedural value flow: the D2-style binding tracker,
//! generalized so any rule can ask "does the value bound on this line
//! reach a sink line before the function ends?".
//!
//! The tracking is deliberately shallow — one binding, one function
//! body, token-level uses — because that is the precision the masked
//! lexer view supports without a real parser. Uses are searched in
//! the *raw* lines, not the masked ones: a binding interpolated into
//! a format string (`format!("{hits}")`) is exactly the kind of flow
//! rule A1 exists to catch, and it is only visible inside the string
//! literal. The cost is that a comment or string merely *mentioning*
//! the binding name counts as a use — conservative in the direction
//! of more findings, which the allow mechanism absorbs.

use crate::scan::{token_positions, ScannedFile};

/// Sinks that turn a value into result/artifact bytes: serialization,
/// hashing, and the render paths. A `Relaxed` atomic load flowing
/// here means a possibly-stale value can reach an output artifact.
pub const RESULT_SINKS: &[&str] = &[
    "serde_json",
    "to_writer",
    "serialize",
    ".hash(",
    "Hasher",
    "fnv1a",
    "format!",
    "write!",
    "writeln!",
    "push_str",
    ".join(",
    "render",
];

/// The first sink token present on a masked code line, if any.
pub fn sink_on(code: &str) -> Option<&'static str> {
    RESULT_SINKS.iter().copied().find(|s| code.contains(s))
}

/// Searches `lines_after` (0-based, within one function body) for a
/// line that both uses `binding` (token-wise, in the raw view) and
/// contains a sink token (in the masked view). Returns the 1-based
/// line and the sink token of the first hit.
pub fn binding_reaches_sink(
    file: &ScannedFile,
    body_range: (usize, usize),
    bound_line: usize,
    binding: &str,
) -> Option<(usize, &'static str)> {
    let (lo, hi) = body_range;
    let hi = hi.min(file.code.len().saturating_sub(1));
    for l in bound_line + 1..=hi {
        if l < lo || file.in_test[l] {
            continue;
        }
        if let Some(sink) = sink_on(&file.code[l]) {
            let used_in_code = !token_positions(&file.code[l], binding).is_empty();
            // Inline format captures live inside the (masked)
            // literal: check the raw line too.
            let used_in_raw = !token_positions(&file.raw[l], binding).is_empty();
            if used_in_code || used_in_raw {
                return Some((l + 1, sink));
            }
        }
        // A reassignment of the binding name ends the tracked value's
        // life; stop rather than misattribute the new value.
        if crate::rules::let_binding_name(&file.code[l]).as_deref() == Some(binding) {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan, Tree};

    fn file(text: &str) -> ScannedFile {
        scan("x/src/lib.rs", "qods-x", Tree::Src, text)
    }

    #[test]
    fn a_binding_interpolated_into_a_format_string_is_a_flow() {
        let f = file(concat!(
            "fn f(a: &A) -> String {\n",
            "    let hits = a.hits.load(Ordering::Relaxed);\n",
            "    format!(\"{hits}\")\n",
            "}\n",
        ));
        assert_eq!(
            binding_reaches_sink(&f, (0, 3), 1, "hits"),
            Some((3, "format!"))
        );
    }

    #[test]
    fn rebinding_the_name_ends_the_tracked_flow() {
        let f = file(concat!(
            "fn f(a: &A) -> String {\n",
            "    let hits = a.hits.load(Ordering::Relaxed);\n",
            "    let hits = 0u64;\n",
            "    format!(\"{hits}\")\n",
            "}\n",
        ));
        assert_eq!(binding_reaches_sink(&f, (0, 4), 1, "hits"), None);
    }

    #[test]
    fn unrelated_sinks_do_not_count_as_uses() {
        let f = file(concat!(
            "fn f(a: &A) -> String {\n",
            "    let hits = a.hits.load(Ordering::Relaxed);\n",
            "    format!(\"other\")\n",
            "}\n",
        ));
        assert_eq!(binding_reaches_sink(&f, (0, 3), 1, "hits"), None);
    }
}
