//! The rule set. Each rule encodes one written invariant of the
//! workspace (see DESIGN.md §12) as a line-level check over a
//! [`ScannedFile`]:
//!
//! * **D1** — no wall-clock/entropy sources in result-producing
//!   crates (results must be pure functions of the config).
//! * **D2** — no `HashMap`/`HashSet` iteration feeding serialization
//!   or hashing (iteration order is nondeterministic; use `BTreeMap`
//!   or sort first).
//! * **R1** — no `unwrap`/`expect` on the serving path (service,
//!   net, compile, pool); a panic there kills a connection or poisons
//!   a lock instead of returning a typed error.
//! * **S1** — every fault-site string and wire error-`kind` literal
//!   must exist in the canonical tables exported by `qods-fault` and
//!   `qods-net`, so string drift is a lint failure, not a silent
//!   no-op.
//! * **O1** — every site-name string literal at an instrumentation
//!   call site (`.counter(` / `.gauge(` / `.histogram(` / `span!(` /
//!   `instant(`) must exist in `qods_obs::sites::ALL`; a typo'd site
//!   would otherwise mint a metric nothing reads.
//!
//! All checks run on the masked `code` view (comments and string
//! interiors blanked), except the S1/O1 literal validation which uses
//! the decoded `strings` table.

use crate::scan::{token_positions, ScannedFile, StrLit, Tree};
use crate::{Finding, Tables};

/// The rule identifiers an `allow(...)` annotation may name. The
/// first four are line rules (this module); the last four are graph
/// rules ([`crate::graph_rules`]).
pub const RULE_IDS: &[&str] = &["D1", "D2", "R1", "S1", "O1", "P1", "L1", "A1", "H1"];

/// Crates whose results feed hashed/serialized output; D1 applies.
/// `qods-bench` is the designated home for timing, and `qods-obs` is
/// telemetry by construction (span timestamps never reach result
/// bytes — DESIGN.md §13's determinism boundary); both are exempt.
fn d1_applies(crate_name: &str) -> bool {
    !matches!(crate_name, "qods-bench" | "qods-lint" | "qods-obs")
}

/// The serving-path crates rule R1 (and the chaos clippy gate) cover.
pub const R1_CRATES: &[&str] = &["qods-service", "qods-net", "qods-compile", "qods-pool"];

/// Runs every rule over one file, returning raw findings
/// (suppression is applied by the engine, not here).
pub fn run_rules(file: &ScannedFile, tables: &Tables) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d1(file, &mut out);
    rule_d2(file, &mut out);
    rule_r1(file, &mut out);
    rule_s1(file, tables, &mut out);
    rule_o1(file, tables, &mut out);
    out
}

/// The first string-literal argument of a call whose `(` sits at
/// `open_paren`: a quote right after the paren (spaces allowed), or
/// at the start of the next line for calls the formatter wrapped.
/// `None` when the argument is anything else (a `sites::` constant,
/// an expression).
fn first_arg_literal(file: &ScannedFile, line_idx: usize, open_paren: usize) -> Option<&StrLit> {
    let code = &file.code[line_idx];
    let cb = code.as_bytes();
    let mut c = open_paren + 1;
    while c < cb.len() && cb[c] == b' ' {
        c += 1;
    }
    if c < cb.len() && cb[c] == b'"' {
        file.string_at(line_idx + 1, c)
    } else if code[open_paren + 1..].trim().is_empty() && line_idx + 1 < file.code.len() {
        let next = &file.code[line_idx + 1];
        let c2 = next.len() - next.trim_start().len();
        file.string_at(line_idx + 2, c2)
    } else {
        None
    }
}

fn finding(file: &ScannedFile, rule: &str, line_idx: usize, note: String) -> Finding {
    Finding {
        rule: rule.to_owned(),
        file: file.path.clone(),
        line: (line_idx + 1) as u32,
        snippet: file
            .raw
            .get(line_idx)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default(),
        note,
    }
}

/// D1: wall-clock and entropy tokens in shipping (non-test) code of
/// result-producing crates.
fn rule_d1(file: &ScannedFile, out: &mut Vec<Finding>) {
    if file.tree != Tree::Src || !d1_applies(&file.crate_name) {
        return;
    }
    const TOKENS: &[(&str, &str)] = &[
        ("SystemTime::now", "wall clock"),
        ("Instant::now", "monotonic clock"),
        ("thread_rng", "OS entropy"),
        ("from_entropy", "OS entropy"),
        ("rand::random", "OS entropy"),
    ];
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for &(tok, what) in TOKENS {
            if !token_positions(code, tok).is_empty() {
                out.push(finding(
                    file,
                    "D1",
                    idx,
                    format!(
                        "{what} source `{tok}` in a result-producing crate; results must be \
                         pure functions of the config — move timing to qods-bench or annotate \
                         a timing-only site"
                    ),
                ));
            }
        }
    }
}

/// D2: iteration over a `HashMap`/`HashSet`-typed binding near a
/// serialization/hashing sink, plus unordered-container fields inside
/// `derive(Serialize)`/`derive(Hash)` types.
fn rule_d2(file: &ScannedFile, out: &mut Vec<Finding>) {
    if file.tree != Tree::Src || file.crate_name == "qods-lint" {
        return;
    }
    let names = collect_unordered_names(file);

    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
    ];
    const SINKS: &[&str] = &[
        "serde_json",
        "to_writer",
        "to_string",
        "Serialize",
        "serialize",
        "Fnv",
        "fnv",
        "Hasher",
        ".hash(",
        "write!",
        "writeln!",
        "format!",
        "push_str",
        ".join(",
        "render",
    ];
    const CLEARS: &[&str] = &["sort", "BTree"];

    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let mut hit = false;
        for m in ITER_METHODS {
            let needle = format!(".{m}");
            for pos in token_positions(code, &needle) {
                let after = pos + needle.len();
                if code.as_bytes().get(after) != Some(&b'(') {
                    continue;
                }
                let receiver = receiver_ident(file, idx, pos);
                if receiver.map(|r| names.contains(&r)).unwrap_or(false) {
                    hit = true;
                }
            }
        }
        // `for pat in [&][mut ][self.]name` loops.
        if !hit && !token_positions(code, "for").is_empty() {
            if let Some(p) = code.find(" in ") {
                let mut rest = code[p + 4..].trim_start();
                for prefix in ["&", "mut ", "self."] {
                    rest = rest.strip_prefix(prefix).unwrap_or(rest);
                }
                let ident: String = rest
                    .bytes()
                    .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
                    .map(char::from)
                    .collect();
                // Bare `for x in map {` only — `map.values()` is the
                // method scan's job.
                let after = rest.as_bytes().get(ident.len());
                if !ident.is_empty() && names.contains(&ident) && after != Some(&b'.') {
                    hit = true;
                }
            }
        }
        if hit {
            let lo = idx.saturating_sub(1);
            let hi = (idx + 3).min(file.code.len().saturating_sub(1));
            let window = file.code[lo..=hi].join("\n");
            let sinky = SINKS.iter().any(|s| window.contains(s));
            let cleared = CLEARS.iter().any(|c| window.contains(c));
            if sinky && !cleared {
                out.push(finding(
                    file,
                    "D2",
                    idx,
                    "HashMap/HashSet iteration feeding a serialization/hashing sink; \
                     iteration order is nondeterministic — use BTreeMap/BTreeSet or sort \
                     before emitting"
                        .to_owned(),
                ));
            }
        }
    }

    // derive(Serialize)/derive(Hash) types with unordered fields.
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] || !code.contains("derive") {
            continue;
        }
        let derives_order_sensitive = !token_positions(code, "Serialize").is_empty()
            || !token_positions(code, "Hash").is_empty();
        if !derives_order_sensitive {
            continue;
        }
        // Walk the item body (first '{' after the attribute to its
        // matching '}') looking for unordered container fields.
        let mut depth = 0i64;
        let mut opened = false;
        for (k, ln) in file.code.iter().enumerate().skip(idx + 1) {
            if !opened && ln.contains(';') && !ln.contains('{') {
                break; // tuple struct / item without a body
            }
            for b in ln.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if opened
                && (!token_positions(ln, "HashMap").is_empty()
                    || !token_positions(ln, "HashSet").is_empty())
            {
                out.push(finding(
                    file,
                    "D2",
                    k,
                    "unordered container field in a derive(Serialize)/derive(Hash) type; \
                     its serialized form depends on iteration order — use BTreeMap/BTreeSet"
                        .to_owned(),
                ));
            }
            if opened && depth <= 0 {
                break;
            }
            if k > idx + 40 {
                break; // don't scan unbounded on pathological input
            }
        }
    }
}

/// Names of `let` bindings, struct fields, and fn parameters typed
/// `HashMap`/`HashSet` on their declaration line.
fn collect_unordered_names(file: &ScannedFile) -> Vec<String> {
    let mut names = Vec::new();
    for code in &file.code {
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            for pos in token_positions(code, tok) {
                let name = let_binding_name(code).or_else(|| name_before_colon(code, pos));
                if let Some(name) = name {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// The identifier declared with type at `pos`: matches
/// `name: [&][mut ]Hash...` — a struct field or a fn parameter.
fn name_before_colon(code: &str, pos: usize) -> Option<String> {
    let mut head = code[..pos].trim_end_matches([' ', '&']);
    head = head.strip_suffix("mut").unwrap_or(head);
    head = head.trim_end_matches([' ', '&']);
    let head = head.strip_suffix(':')?.trim_end();
    let hb = head.as_bytes();
    let mut start = hb.len();
    while start > 0 && (hb[start - 1].is_ascii_alphanumeric() || hb[start - 1] == b'_') {
        start -= 1;
    }
    let name = &head[start..];
    (!name.is_empty()).then(|| name.to_owned())
}

pub(crate) fn let_binding_name(code: &str) -> Option<String> {
    let pos = *token_positions(code, "let").first()?;
    let mut rest = code[pos + 3..].trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .bytes()
        .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
        .map(char::from)
        .collect();
    (!name.is_empty()).then_some(name)
}

/// The identifier a `.method(` call is invoked on: the ident chain
/// segment directly before the dot, or — for a chained call whose
/// line starts at the dot — the trailing ident of the previous line.
fn receiver_ident(file: &ScannedFile, line_idx: usize, dot_pos: usize) -> Option<String> {
    let code = &file.code[line_idx];
    let head = &code.as_bytes()[..dot_pos];
    let mut end = head.len();
    let mut start = end;
    while start > 0 && (head[start - 1].is_ascii_alphanumeric() || head[start - 1] == b'_') {
        start -= 1;
    }
    if start < end {
        return Some(String::from_utf8_lossy(&head[start..end]).into_owned());
    }
    // `map\n    .iter()` — take the previous non-empty line's
    // trailing identifier.
    let mut prev = line_idx;
    while prev > 0 {
        prev -= 1;
        let p = file.code[prev].trim_end();
        if p.is_empty() {
            continue;
        }
        let pb = p.as_bytes();
        end = pb.len();
        start = end;
        while start > 0 && (pb[start - 1].is_ascii_alphanumeric() || pb[start - 1] == b'_') {
            start -= 1;
        }
        return (start < end).then(|| String::from_utf8_lossy(&pb[start..end]).into_owned());
    }
    None
}

/// R1: `.unwrap(` / `.expect(` in shipping code of serving-path
/// crates. Near a `.lock()` the note points at the poison-tolerant
/// idiom the workspace uses instead.
fn rule_r1(file: &ScannedFile, out: &mut Vec<Finding>) {
    if file.tree != Tree::Src || !R1_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for m in ["unwrap", "expect"] {
            let needle = format!(".{m}");
            for pos in token_positions(code, &needle) {
                if code.as_bytes().get(pos + needle.len()) != Some(&b'(') {
                    continue;
                }
                let lo = idx.saturating_sub(2);
                let near_lock = file.code[lo..=idx].iter().any(|l| l.contains(".lock()"));
                let note = if near_lock {
                    format!(
                        "`.{m}(` on a lock in the serving path; use \
                         `.unwrap_or_else(std::sync::PoisonError::into_inner)` — a panicked \
                         writer must not take the server down with it"
                    )
                } else {
                    format!(
                        "`.{m}(` in the serving path; return a typed error (or prove the \
                         invariant with `unwrap_or_else(|e| unreachable!(...))`) instead of \
                         panicking on a connection thread"
                    )
                };
                out.push(finding(file, "R1", idx, note));
            }
        }
    }
}

/// S1: fault-site strings at injection/plan call sites must be in
/// [`qods_fault::SITES`]; `"kind":"..."` fragments must be in the
/// wire-protocol table.
fn rule_s1(file: &ScannedFile, tables: &Tables, out: &mut Vec<Finding>) {
    if matches!(file.crate_name.as_str(), "qods-lint" | "qods-fault") {
        return;
    }
    let mentions_fault = file.raw.iter().any(|l| {
        l.contains("qods_fault") || l.contains("FaultPlan") || l.contains("QODS_FAULT_PLAN")
    });

    let check_site_literal = |line_idx: usize, open_paren: usize, out: &mut Vec<Finding>| {
        if let Some(lit) = first_arg_literal(file, line_idx, open_paren) {
            if !tables.sites.iter().any(|s| s == &lit.value) {
                out.push(finding(
                    file,
                    "S1",
                    lit.line - 1,
                    format!(
                        "unknown fault site `{}`; canonical sites: {}",
                        lit.value,
                        tables.sites.join(", ")
                    ),
                ));
            }
        }
    };

    for (idx, code) in file.code.iter().enumerate() {
        // fault::check("...")-style injection points.
        for m in ["check", "check_sleeping", "fired_at", "ops_at"] {
            for pos in token_positions(code, m) {
                let after = pos + m.len();
                if code.as_bytes().get(after) != Some(&b'(') {
                    continue;
                }
                // Require a `fault::`/`qods_fault::` path prefix so
                // unrelated `check(` calls are not dragged in.
                let head = &code[..pos];
                if !(head.ends_with("fault::") || head.ends_with("qods_fault::")) {
                    continue;
                }
                check_site_literal(idx, after, out);
            }
        }
        // Plan-builder calls (`.once("...")` etc.) in fault-aware files.
        if mentions_fault {
            for m in ["once", "repeating", "scatter"] {
                let needle = format!(".{m}");
                for pos in token_positions(code, &needle) {
                    let after = pos + needle.len();
                    if code.as_bytes().get(after) != Some(&b'(') {
                        continue;
                    }
                    check_site_literal(idx, after, out);
                }
            }
        }
    }

    for lit in &file.strings {
        // Plan grammar literals: `site:nth[+every]=action[:ms]`.
        if mentions_fault {
            for entry in lit.value.split(';') {
                if let Some(site) = plan_entry_site(entry) {
                    if !tables.sites.iter().any(|s| s == site) {
                        out.push(finding(
                            file,
                            "S1",
                            lit.line - 1,
                            format!(
                                "fault plan names unknown site `{site}`; canonical sites: {}",
                                tables.sites.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
        // Wire error kinds: any `"kind":"x"` fragment in any literal.
        let mut rest = lit.value.as_str();
        while let Some(p) = rest.find("\"kind\":\"") {
            let tail = &rest[p + "\"kind\":\"".len()..];
            let Some(q) = tail.find('"') else { break };
            let kind = &tail[..q];
            let identish =
                !kind.is_empty() && kind.bytes().all(|b| b.is_ascii_lowercase() || b == b'_');
            if identish && !tables.kinds.iter().any(|k| k == kind) {
                out.push(finding(
                    file,
                    "S1",
                    lit.line - 1,
                    format!(
                        "wire error kind `{kind}` is not in the protocol table; canonical \
                         kinds: {}",
                        tables.kinds.join(", ")
                    ),
                ));
            }
            rest = &tail[q..];
        }
    }
}

/// O1: site-name string literals at instrumentation call sites must
/// exist in [`qods_obs::sites::ALL`]. Call sites normally pass the
/// `sites::` constants, but nothing stops a raw literal — and a
/// typo'd one would silently mint a metric no dashboard, test, or
/// snapshot consumer ever reads. `qods-obs` itself is exempt (it owns
/// the table, and its tests mint scratch names on purpose).
fn rule_o1(file: &ScannedFile, tables: &Tables, out: &mut Vec<Finding>) {
    if matches!(file.crate_name.as_str(), "qods-lint" | "qods-obs") {
        return;
    }
    // Registry handle lookups are method calls; the span macro and
    // the instant/fault-fired entry points are path calls. Either
    // way the site is the first argument.
    const METHOD_SITES: &[&str] = &["counter", "gauge", "histogram", "counter_value"];
    const FREE_SITES: &[&str] = &["span!", "instant", "fault_fired"];
    for (idx, code) in file.code.iter().enumerate() {
        let cb = code.as_bytes();
        let mut call_sites: Vec<usize> = Vec::new();
        for m in METHOD_SITES {
            for pos in token_positions(code, m) {
                let after = pos + m.len();
                if cb.get(after) == Some(&b'(') && pos > 0 && cb[pos - 1] == b'.' {
                    call_sites.push(after);
                }
            }
        }
        for m in FREE_SITES {
            for pos in token_positions(code, m) {
                let after = pos + m.len();
                // Require a path prefix (`qods_obs::span!(`,
                // `trace::instant(`) so unrelated helpers named
                // `instant` elsewhere are not dragged in.
                if cb.get(after) == Some(&b'(') && code[..pos].ends_with("::") {
                    call_sites.push(after);
                }
            }
        }
        for open_paren in call_sites {
            if let Some(lit) = first_arg_literal(file, idx, open_paren) {
                if !tables.obs_sites.iter().any(|s| s == &lit.value) {
                    out.push(finding(
                        file,
                        "O1",
                        lit.line - 1,
                        format!(
                            "unknown instrumentation site `{}`; canonical sites live in \
                             qods_obs::sites::ALL — use the named constant (a typo here mints \
                             a metric nothing reads)",
                            lit.value
                        ),
                    ));
                }
            }
        }
    }
}

/// Parses one fault-plan entry (`site:nth[+every]=action[:ms]`) just
/// far enough to extract the site name; `None` when the string is not
/// plan-shaped.
fn plan_entry_site(entry: &str) -> Option<&str> {
    let entry = entry.trim();
    let (site, rest) = entry.split_once(':')?;
    let (nth, action) = rest.split_once('=')?;
    let nth = nth.split_once('+').map_or(nth, |(a, _)| a);
    if site.is_empty()
        || !nth.bytes().all(|b| b.is_ascii_digit())
        || nth.is_empty()
        || action.is_empty()
    {
        return None;
    }
    if !site
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
    {
        return None;
    }
    Some(site)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_entry_site_accepts_the_grammar_and_rejects_prose() {
        assert_eq!(plan_entry_site("store.read:3=io"), Some("store.read"));
        assert_eq!(
            plan_entry_site("pool.worker:1+4=sleep:20"),
            Some("pool.worker")
        );
        assert_eq!(plan_entry_site("127.0.0.1:8080"), None);
        assert_eq!(plan_entry_site("site:nth=action, like so"), None);
        assert_eq!(plan_entry_site("store.wrte:1=io"), Some("store.wrte"));
        assert_eq!(plan_entry_site("just words"), None);
        assert_eq!(plan_entry_site(""), None);
    }
}
