//! Pass 1 of the workspace analyzer: a per-crate symbol index and a
//! conservative call graph, built from the same masked-code view the
//! line rules match against (so strings and comments can never fake a
//! call or a panic).
//!
//! Every `fn` item in a `src/` tree becomes a [`FnNode`] annotated
//! with the sites the graph rules care about: panic sites (P1), lock
//! acquisitions with an approximate hold range (L1), fault-injection
//! checkpoints and blocking I/O calls (L1's held-across check), and
//! `Ordering::Relaxed` loads (A1's taint sources). Call sites are
//! resolved *by name* within the workspace, filtered by arity when
//! the call's argument count is parseable, with a skip list for
//! method names that collide with `std` (resolving `.clone()` to
//! every workspace `clone` would drown the graph in false edges).
//!
//! The resolution is deliberately conservative in the "more edges"
//! direction everywhere except that skip list: a call that matches
//! several candidates gets an edge to each, and a call whose arity
//! cannot be parsed matches every candidate of that name. The
//! known false-negative classes this leaves are documented in
//! DESIGN.md §12.

use crate::scan::{token_positions, ScannedFile, Tree};
use std::collections::BTreeMap;

/// One annotated site inside a function body.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// The token that matched (`panic!`, `.unwrap(`, `write_all`, ...).
    pub what: String,
}

/// One lock acquisition with its approximate hold range.
#[derive(Clone, Debug)]
pub struct LockOp {
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Canonical lock name: `Type.field` for `self.field` receivers,
    /// `crate::STATIC` for upper-case statics, `fn-qualname::chain`
    /// for locals (unique per function, so locals order within a
    /// function but never alias across functions).
    pub lock: String,
    /// 1-based last line the guard is (approximately) held on.
    pub held_to: usize,
}

/// One call site, before resolution.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based line.
    pub line: usize,
    /// Callee name as written.
    pub name: String,
    /// Argument count when the argument list parsed, else `None`
    /// (matches any arity).
    pub arity: Option<usize>,
    /// Method call (`recv.name(...)`) vs. free/path call.
    pub is_method: bool,
    /// `Qualifier::name(...)` path segment, when present.
    pub qualifier: Option<String>,
}

/// One `fn` item of the workspace.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the scanned-file slice the index was built from.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when inside an impl block.
    pub impl_type: Option<String>,
    /// Declared with a `pub` visibility token.
    pub is_pub: bool,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// Takes `self` in any form.
    pub has_self: bool,
    /// 1-based line of the `fn` token.
    pub decl_line: usize,
    /// 1-based last line of the body (== `decl_line` for bodyless
    /// signatures, which produce no node — see [`Index::build`]).
    pub end_line: usize,
    /// Contains a `catch_unwind` call: an isolation barrier. P1
    /// neither reports this function's own panic sites nor follows
    /// its outgoing edges.
    pub catches_unwind: bool,
    /// Panic sites (`panic!`, `.unwrap(`, `.expect(`, `unreachable!`,
    /// `todo!`, `unimplemented!`).
    pub panics: Vec<Site>,
    /// Lock acquisitions (`.lock()` receivers and `plock(&...)`).
    pub locks: Vec<LockOp>,
    /// Fault-injection checkpoints and cancellation points.
    pub checkpoints: Vec<Site>,
    /// Blocking I/O calls.
    pub blocking_io: Vec<Site>,
    /// `.load(Ordering::Relaxed)` sites, with the `let` binding name
    /// when the loaded value is bound.
    pub relaxed_loads: Vec<(Site, Option<String>)>,
    /// Unresolved call sites.
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// `crate::Type::name` display form for chain notes and DOT.
    pub fn qualname(&self, files: &[ScannedFile]) -> String {
        let krate = &files[self.file].crate_name;
        match &self.impl_type {
            Some(t) => format!("{krate}::{t}::{}", self.name),
            None => format!("{krate}::{}", self.name),
        }
    }
}

/// The workspace symbol index: every `fn` node plus a name lookup.
pub struct Index {
    /// All nodes, in (file, line) order.
    pub fns: Vec<FnNode>,
    /// Name → node ids, for call resolution.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names that collide with `std`/shim methods: resolving them
/// by bare name would wire `.clone()`/`.get()`/`.push()` calls to
/// every workspace function of that name. Method calls with these
/// names are not resolved (documented false-negative class); *path*
/// calls (`Type::get(...)`) still resolve, because the qualifier
/// disambiguates.
const COMMON_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "bytes",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "fold",
    "from_value",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "ok",
    "or_else",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "read_line",
    "remove",
    "repeat",
    "replace",
    "retain",
    "rev",
    "serialize",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "splice",
    "split",
    "split_once",
    "split_whitespace",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_value",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "values",
    "windows",
    "with_capacity",
    "wrapping_add",
    "write_all",
    "zip",
];

/// Keywords and ubiquitous constructor names a call scan must never
/// treat as callees.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "as", "in", "move", "else", "fn",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "unsafe", "ref", "mut", "dyn",
    "box", "Some", "None", "Ok", "Err", "Self", "self", "super", "crate", "Box", "Vec", "String",
    "Arc", "Rc", "Mutex", "RwLock", "Condvar", "Option", "Result", "drop", "Fn", "FnMut", "FnOnce",
    "Default", "From", "Into", "Ordering", "Duration", "Instant", "PathBuf",
];

/// Tokens whose presence marks a panic site, paired with how the
/// finding names them.
const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Fault-injection checkpoints and cooperative cancellation points —
/// lines the serving path may unwind or stall at, which L1 flags when
/// they sit inside a lock's hold range.
const CHECKPOINT_TOKENS: &[&str] = &["fault::check", "check_deadline", "check_sleeping"];

/// Blocking I/O call names for L1's held-across check.
const IO_TOKENS: &[&str] = &[
    "write_all",
    "flush",
    "read_line",
    "read_to_end",
    "read_to_string",
    "fill_buf",
    "sync_all",
    "rename",
    "remove_file",
    "create_dir_all",
    "accept",
    "connect",
];

impl Index {
    /// Builds the index over every `src/`-tree file in `files`
    /// (integration tests, examples, and benches are outside the
    /// serving path; `#[cfg(test)]` regions are skipped line-wise).
    pub fn build(files: &[ScannedFile]) -> Index {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.tree == Tree::Src {
                parse_file(fi, file, &mut fns);
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Index { fns, by_name }
    }

    /// Node ids a call site may land on. Empty when the name is
    /// unknown to the workspace or skipped as a common method name.
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        if call.is_method && COMMON_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        // Prefer candidates in the qualifier's impl block
        // (`Scheduler::run` must not edge into every `run`).
        let mut candidates: Vec<usize> = match &call.qualifier {
            Some(q) => {
                let scoped: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type.as_deref() == Some(q.as_str()))
                    .collect();
                if scoped.is_empty() {
                    all.clone()
                } else {
                    scoped
                }
            }
            None => all.clone(),
        };
        if let Some(arity) = call.arity {
            let fits = |f: &FnNode| {
                f.arity == arity
                    // `Type::method(&x, y)` spells the receiver as an
                    // argument.
                    || (!call.is_method && f.has_self && f.arity + 1 == arity)
            };
            let matching: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| fits(&self.fns[i]))
                .collect();
            // No arity match: keep every candidate (the parse may
            // have miscounted through a closure or generic).
            if !matching.is_empty() {
                candidates = matching;
            }
        }
        candidates
    }
}

/// Brace depth at the start of each line, on the masked code view.
fn depth_profile(code: &[String]) -> Vec<i64> {
    let mut depths = Vec::with_capacity(code.len() + 1);
    let mut d = 0i64;
    for line in code {
        depths.push(d);
        for b in line.bytes() {
            match b {
                b'{' => d += 1,
                b'}' => d -= 1,
                _ => {}
            }
        }
    }
    depths.push(d);
    depths
}

/// The `impl` context each line sits in: the impl'd type name.
fn impl_profile(file: &ScannedFile, depths: &[i64]) -> Vec<Option<String>> {
    let mut ctx: Vec<Option<String>> = vec![None; file.code.len()];
    let mut l = 0usize;
    while l < file.code.len() {
        let code = &file.code[l];
        let trimmed = code.trim_start();
        let is_impl = trimmed.starts_with("impl ")
            || trimmed.starts_with("impl<")
            || trimmed.starts_with("unsafe impl ");
        if !is_impl {
            l += 1;
            continue;
        }
        let Some(ty) = impl_type_name(trimmed) else {
            l += 1;
            continue;
        };
        // The impl body runs until depth returns to the impl line's
        // starting depth.
        let d0 = depths[l];
        let mut end = file.code.len() - 1;
        for (k, &d) in depths.iter().enumerate().skip(l + 1) {
            if d <= d0 {
                end = k - 1;
                break;
            }
        }
        for slot in ctx.iter_mut().take(end + 1).skip(l) {
            *slot = Some(ty.clone());
        }
        l = end + 1;
    }
    ctx
}

/// The implemented type's last path segment: `impl Foo {`,
/// `impl Trait for Foo {`, `impl<T> Trait<T> for path::Foo<T> {`.
fn impl_type_name(trimmed: &str) -> Option<String> {
    let rest = trimmed
        .strip_prefix("unsafe ")
        .unwrap_or(trimmed)
        .strip_prefix("impl")?;
    // Skip a generics list directly after `impl`.
    let rest = skip_generics(rest);
    // `Trait for Type` — the type is after `for`; otherwise the first
    // type is it.
    let ty_part = match find_token(rest, "for") {
        Some(pos) => &rest[pos + 3..],
        None => rest,
    };
    let ty_part = ty_part.trim_start();
    let name: String = ty_part
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    let last = name.rsplit("::").next().unwrap_or(&name).to_owned();
    (!last.is_empty() && last.chars().next().is_some_and(|c| c.is_ascii_alphabetic()))
        .then_some(last)
}

fn skip_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut depth = 0i64;
    for (i, b) in t.bytes().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// First token-wise occurrence of a bare word in `s`.
fn find_token(s: &str, tok: &str) -> Option<usize> {
    token_positions(s, tok).first().copied()
}

/// Parses every `fn` item of one file into nodes.
fn parse_file(fi: usize, file: &ScannedFile, out: &mut Vec<FnNode>) {
    let depths = depth_profile(&file.code);
    let impls = impl_profile(file, &depths);

    for (l, code) in file.code.iter().enumerate() {
        if file.in_test[l] {
            continue;
        }
        for pos in token_positions(code, "fn") {
            // `fn(` is a fn-pointer type, not a definition.
            let after = code[pos + 2..].trim_start();
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let Some(sig) = parse_signature(file, l, pos) else {
                continue; // bodyless signature (trait method, extern)
            };
            let head = &code[..pos];
            let is_pub = !token_positions(head, "pub").is_empty();
            let mut node = FnNode {
                file: fi,
                name,
                impl_type: impls[l].clone(),
                is_pub,
                arity: sig.arity,
                has_self: sig.has_self,
                decl_line: l + 1,
                end_line: sig.end_line + 1,
                catches_unwind: false,
                panics: Vec::new(),
                locks: Vec::new(),
                checkpoints: Vec::new(),
                blocking_io: Vec::new(),
                relaxed_loads: Vec::new(),
                calls: Vec::new(),
            };
            annotate_body(file, &depths, &mut node, sig.body_start);
            out.push(node);
        }
    }
}

struct Signature {
    arity: usize,
    has_self: bool,
    /// 0-based line the body's `{` opens on.
    body_start: usize,
    /// 0-based last body line.
    end_line: usize,
}

/// Parses a `fn` item's parameter list and brace-matches its body.
/// `None` for bodyless signatures.
fn parse_signature(file: &ScannedFile, decl: usize, fn_pos: usize) -> Option<Signature> {
    // Find the parameter list's opening paren, skipping generics.
    let mut l = decl;
    let mut c = fn_pos + 2;
    let mut angle = 0i64;
    let open = 'find: loop {
        let code = file.code.get(l)?;
        let bytes = code.as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'<' => angle += 1,
                b'>' if angle > 0 => angle -= 1,
                b'(' if angle == 0 => break 'find (l, c),
                b'{' | b';' => return None, // malformed
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
        if l > decl + 5 {
            return None;
        }
    };

    // Collect parameter text to the matching close paren.
    let (mut l, mut c) = (open.0, open.1 + 1);
    let mut paren = 1i64;
    let mut params = String::new();
    let close = 'close: loop {
        let code = file.code.get(l)?;
        let bytes = code.as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => {
                    paren -= 1;
                    if paren == 0 {
                        break 'close (l, c);
                    }
                }
                _ => {}
            }
            params.push(bytes[c] as char);
            c += 1;
        }
        params.push('\n');
        l += 1;
        c = 0;
        if l > open.0 + 40 {
            return None;
        }
    };

    let (arity, has_self) = count_params(&params);

    // After the params: the first `{` opens the body, a `;` at this
    // level means a bodyless signature.
    let (mut l, mut c) = (close.0, close.1 + 1);
    let body_open = 'body: loop {
        let code = file.code.get(l)?;
        let bytes = code.as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => break 'body (l, c),
                b';' => return None,
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
        if l > close.0 + 10 {
            return None;
        }
    };

    // Brace-match the body.
    let (mut l, mut c) = body_open;
    let mut depth = 0i64;
    let end = 'end: loop {
        let code = file.code.get(l)?;
        let bytes = code.as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break 'end l;
                    }
                }
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
        if l >= file.code.len() {
            return None;
        }
    };

    Some(Signature {
        arity,
        has_self,
        body_start: body_open.0,
        end_line: end,
    })
}

/// Counts top-level commas in a parameter list, tracking nested
/// parens/brackets/angles, and detects a leading `self`.
fn count_params(params: &str) -> (usize, bool) {
    let trimmed = params.trim();
    if trimmed.is_empty() {
        return (0, false);
    }
    let mut depth = 0i64;
    let mut angle = 0i64;
    let mut count = 1usize;
    for b in trimmed.bytes() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'<' => angle += 1,
            b'>' if angle > 0 => angle -= 1,
            b',' if depth == 0 && angle == 0 => count += 1,
            _ => {}
        }
    }
    let first = trimmed
        .trim_start_matches('&')
        .trim_start_matches("'_ ")
        .trim_start();
    let first = first.strip_prefix("mut ").unwrap_or(first).trim_start();
    let has_self = first == "self"
        || first.starts_with("self,")
        || first.starts_with("self ")
        || first.starts_with("self:");
    if has_self {
        count -= 1;
    }
    (count, has_self)
}

/// Walks a node's body lines collecting panic/lock/checkpoint/IO/
/// atomic/call sites.
fn annotate_body(file: &ScannedFile, depths: &[i64], node: &mut FnNode, body_start: usize) {
    let lo = body_start;
    let hi = node.end_line - 1;
    for l in lo..=hi.min(file.code.len() - 1) {
        if file.in_test[l] {
            continue;
        }
        let code = &file.code[l];

        if code.contains("catch_unwind") {
            node.catches_unwind = true;
        }

        for &m in PANIC_MACROS {
            for pos in token_positions(code, m.trim_end_matches('!')) {
                if code.as_bytes().get(pos + m.len() - 1) != Some(&b'!') {
                    continue;
                }
                // The proven-invariant idiom
                // `unwrap_or_else(|e| unreachable!(...))` is R1's
                // documented escape hatch; P1 honors it too.
                if code[..pos].contains("unwrap_or_else") || code[..pos].contains("ok_or_else") {
                    continue;
                }
                node.panics.push(Site {
                    line: l + 1,
                    what: m.to_owned(),
                });
            }
        }
        for m in ["unwrap", "expect"] {
            let needle = format!(".{m}");
            for pos in token_positions(code, &needle) {
                if code.as_bytes().get(pos + needle.len()) == Some(&b'(') {
                    node.panics.push(Site {
                        line: l + 1,
                        what: format!(".{m}("),
                    });
                }
            }
        }

        for &t in CHECKPOINT_TOKENS {
            if code.contains(t) {
                node.checkpoints.push(Site {
                    line: l + 1,
                    what: t.to_owned(),
                });
            }
        }
        for &t in IO_TOKENS {
            for pos in token_positions(code, t) {
                if code.as_bytes().get(pos + t.len()) == Some(&b'(') {
                    node.blocking_io.push(Site {
                        line: l + 1,
                        what: t.to_owned(),
                    });
                }
            }
        }

        // `.load(Ordering::Relaxed)` / `.load(Relaxed)`.
        if code.contains("load(Ordering::Relaxed)") || code.contains("load(Relaxed)") {
            node.relaxed_loads.push((
                Site {
                    line: l + 1,
                    what: ".load(Ordering::Relaxed)".to_owned(),
                },
                crate::rules::let_binding_name(code),
            ));
        }

        collect_locks(file, depths, node, l);
        collect_calls(code, l, node);
    }
}

/// Lock acquisitions on line `l`: `recv.lock()` chains and
/// `plock(&recv)` calls, each named canonically and given an
/// approximate hold range.
fn collect_locks(file: &ScannedFile, depths: &[i64], node: &mut FnNode, l: usize) {
    let code = &file.code[l];
    let bytes = code.as_bytes();

    // `token_positions` would reject `.lock` (the receiver ident sits
    // right before the dot), so match the substring; the trailing `(`
    // and the receiver-chain walk bound it.
    let mut receivers: Vec<(usize, String)> = Vec::new(); // (pos, chain)
    for (pos, _) in code.match_indices(".lock(") {
        if let Some(chain) = ident_chain_before(code, pos) {
            receivers.push((pos, chain));
        }
    }
    for pos in token_positions(code, "plock") {
        let Some(open) = bytes.get(pos + 5) else {
            continue;
        };
        if *open != b'(' {
            continue;
        }
        let arg = code[pos + 6..]
            .trim_start()
            .trim_start_matches('&')
            .trim_start_matches("mut ");
        let chain: String = arg
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        if !chain.is_empty() {
            receivers.push((pos, chain));
        }
    }

    for (pos, chain) in receivers {
        let lock = canonical_lock_name(file, node, &chain);
        let held_to = hold_range_end(file, depths, node, l, pos);
        node.locks.push(LockOp {
            line: l + 1,
            lock,
            held_to,
        });
    }
}

/// The dotted identifier chain ending just before byte `pos`
/// (`self.state` for `self.state.lock()`); `None` when the receiver
/// is not an ident chain (e.g. `stdout().lock()`).
fn ident_chain_before(code: &str, pos: usize) -> Option<String> {
    let head = &code.as_bytes()[..pos];
    let mut i = pos;
    loop {
        let start = i;
        while i > 0 && (head[i - 1].is_ascii_alphanumeric() || head[i - 1] == b'_') {
            i -= 1;
        }
        if i == start {
            return None; // no ident segment where one was expected
        }
        if i > 0 && head[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        return Some(code[i..pos].to_owned());
    }
}

/// Canonical lock name for a receiver chain (see [`LockOp::lock`]).
fn canonical_lock_name(file: &ScannedFile, node: &FnNode, chain: &str) -> String {
    let segments: Vec<&str> = chain.split('.').collect();
    if segments[0] == "self" && segments.len() > 1 {
        let owner = node.impl_type.as_deref().unwrap_or("Self");
        return format!("{owner}.{}", segments[1]);
    }
    let is_static = segments[0].len() > 1
        && segments[0]
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b == b'_' || b.is_ascii_digit());
    if is_static {
        return format!("{}::{}", file.crate_name, segments[0]);
    }
    // Local binding or parameter: unique per function.
    match &node.impl_type {
        Some(t) => format!("{}::{}::{}#{chain}", file.crate_name, t, node.name),
        None => format!("{}::{}#{chain}", file.crate_name, node.name),
    }
}

/// Where the guard acquired on line `l` is last held: a `let`-bound
/// guard lives to the end of its enclosing block (or an explicit
/// `drop(name)`); a temporary that feeds a block header (`for`,
/// `while`, `match`, `if`) lives through that block; a plain
/// temporary dies at its statement's `;`.
fn hold_range_end(
    file: &ScannedFile,
    depths: &[i64],
    node: &FnNode,
    l: usize,
    pos: usize,
) -> usize {
    let code = &file.code[l];
    let last = (node.end_line - 1).min(file.code.len() - 1);

    let block_end = |from: usize| -> usize {
        let d0 = depths[from + 1].max(depths[from]);
        for k in from + 1..=last {
            if depths[k + 1] < d0 {
                return k + 1;
            }
        }
        last + 1
    };

    if let Some(name) = crate::rules::let_binding_name(code) {
        let end = block_end(l);
        // An explicit `drop(guard)` ends the hold early.
        let needle = format!("drop({name})");
        for (k, later) in file.code.iter().enumerate().take(end.min(last + 1)).skip(l) {
            if later.contains(&needle) {
                return k + 1;
            }
        }
        return end;
    }

    let head = code[..pos].trim_start();
    let opens_block = ["for ", "while ", "match ", "if "]
        .iter()
        .any(|kw| head.starts_with(kw) || head.contains(&format!(" {kw}")));
    if opens_block {
        return block_end(l);
    }

    // Temporary: held to the statement's terminating `;`.
    for k in l..=last {
        if file.code[k].trim_end().ends_with(';') {
            return k + 1;
        }
        if k > l + 4 {
            break;
        }
    }
    l + 1
}

/// Call sites on one line: `name(...)` free/path calls and
/// `.name(...)` method calls, macros and keywords excluded.
fn collect_calls(code: &str, l: usize, node: &mut FnNode) {
    let bytes = code.as_bytes();
    for open in 0..bytes.len() {
        if bytes[open] != b'(' {
            continue;
        }
        // Walk the identifier immediately before the paren.
        let mut start = open;
        while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            start -= 1;
        }
        if start == open {
            continue; // `!(`, `)(`, ...
        }
        let name = &code[start..open];
        if name.as_bytes()[0].is_ascii_digit() || NON_CALLEES.contains(&name) {
            continue;
        }
        let before = if start > 0 { bytes[start - 1] } else { b' ' };
        // Skip the definition itself (`fn name(`); macro calls
        // (`name!(`) are already excluded because the `!` between
        // name and paren stops the ident walk at the paren.
        let head = code[..start].trim_end();
        if head.ends_with("fn") {
            continue;
        }
        let is_method = before == b'.';
        let qualifier = if before == b':' && start >= 2 && bytes[start - 2] == b':' {
            ident_chain_before(code, start - 2)
                .map(|c| c.rsplit('.').next().unwrap_or(&c).to_owned())
        } else {
            None
        };
        let arity = count_call_arity(code, open);
        node.calls.push(CallSite {
            line: l + 1,
            name: name.to_owned(),
            arity,
            is_method,
            qualifier,
        });
    }
}

/// Argument count of the call whose `(` is at `open`, or `None` when
/// the list does not close on this line (multi-line calls match any
/// arity — conservative).
fn count_call_arity(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0i64;
    let mut count = 0usize;
    let mut any = false;
    for &b in &bytes[open..] {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(if any { count + 1 } else { 0 });
                }
            }
            b',' if depth == 1 => count += 1,
            b' ' => {}
            _ if depth >= 1 => any = true,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn index_of(text: &str) -> (Index, Vec<ScannedFile>) {
        let files = vec![scan("x/src/lib.rs", "qods-x", Tree::Src, text)];
        (Index::build(&files), files)
    }

    #[test]
    fn fn_items_are_indexed_with_impl_context_arity_and_visibility() {
        let (idx, files) = index_of(concat!(
            "pub struct S;\n",
            "impl S {\n",
            "    pub fn run(&self, a: usize, b: Vec<(u8, u8)>) -> usize { a }\n",
            "}\n",
            "fn helper() {}\n",
        ));
        assert_eq!(idx.fns.len(), 2);
        let run = &idx.fns[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.impl_type.as_deref(), Some("S"));
        assert!(run.is_pub && run.has_self);
        assert_eq!(run.arity, 2, "generic commas must not inflate arity");
        assert_eq!(run.qualname(&files), "qods-x::S::run");
        let helper = &idx.fns[1];
        assert!(!helper.is_pub && helper.impl_type.is_none());
    }

    #[test]
    fn calls_resolve_by_name_and_arity_and_common_methods_are_skipped() {
        let (idx, _) = index_of(concat!(
            "fn a() { b(1); v.clone(); c(1, 2); }\n",
            "fn b(x: usize) {}\n",
            "fn c(x: usize, y: usize) {}\n",
            "fn clone() {}\n",
        ));
        let a = &idx.fns[0];
        let resolved: Vec<&str> = a
            .calls
            .iter()
            .flat_map(|c| idx.resolve(c))
            .map(|i| idx.fns[i].name.as_str())
            .collect();
        assert!(resolved.contains(&"b") && resolved.contains(&"c"));
        assert!(
            !resolved.contains(&"clone"),
            "`.clone()` must not resolve into the workspace"
        );
    }

    #[test]
    fn panic_locks_and_barrier_sites_are_annotated() {
        let (idx, _) = index_of(concat!(
            "use std::sync::Mutex;\n",
            "pub struct S { m: Mutex<u32> }\n",
            "impl S {\n",
            "    fn f(&self) {\n",
            "        let g = self.m.lock().unwrap();\n",
            "        panic!(\"boom\");\n",
            "    }\n",
            "    fn guarded(&self) {\n",
            "        let _ = std::panic::catch_unwind(|| 1);\n",
            "    }\n",
            "}\n",
        ));
        let f = idx.fns.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].lock, "S.m");
        // `.unwrap()` and `panic!` are both panic sites.
        assert_eq!(f.panics.len(), 2);
        let g = idx.fns.iter().find(|f| f.name == "guarded").unwrap();
        assert!(g.catches_unwind);
    }

    #[test]
    fn plock_counts_as_a_lock_acquisition() {
        let (idx, _) = index_of(concat!(
            "impl S {\n",
            "    fn f(&self) {\n",
            "        let g = plock(&self.state);\n",
            "        g.touch();\n",
            "    }\n",
            "}\n",
        ));
        let f = &idx.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].lock, "S.state");
    }
}
