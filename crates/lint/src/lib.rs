//! qods-lint — the workspace invariant checker.
//!
//! The repo's determinism contract (bit-identical result lines at any
//! thread count, cache state, and fault plan) and its robustness
//! contract (no panics on the serving path) are written down in
//! DESIGN.md; this crate makes them machine-checkable. A hand-rolled
//! lexer ([`scan`]) splits each source file into masked-code /
//! string-literal views, a line-level rule engine ([`rules`]) raises
//! findings for rules **D1/D2/R1/S1**, and a second, workspace-wide
//! pass builds a symbol index and conservative call graph ([`graph`])
//! to run the flow rules **P1** (panic reachability from serving
//! entries), **L1** (lock-order cycles and locks held across
//! checkpoints/blocking I/O), **A1** (Relaxed atomic loads flowing
//! into result sinks, via [`flow`]), and **H1** (config-hash field
//! coverage) in [`graph_rules`]. Explicit
//! `// qods-lint: allow(RULE) -- reason` annotations suppress
//! individual lines (counted, never silent), and a committed
//! `lint-baseline.json` ([`baseline`]) lets pre-existing debt burn
//! down without blocking CI.
//!
//! Zero external dependencies beyond the workspace's own shims — the
//! tables rules S1 and H1 validate against are imported straight from
//! `qods-fault`, `qods-net`, and `qods-service`, so the checker can
//! never drift from the code it polices.
//!
//! Entry points: `cargo run -p qods-lint` or `repro --lint`.

pub mod baseline;
pub mod flow;
pub mod graph;
pub mod graph_rules;
pub mod rules;
pub mod scan;

use scan::{ScannedFile, Tree};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One lint finding, as emitted on the NDJSON stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (`D1`, `D2`, `R1`, `S1`, `P1`, `L1`, `A1`,
    /// `H1`, or `L0` for a malformed annotation).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Why this is a finding and what to do instead.
    pub note: String,
}

/// The canonical string tables rules S1, O1, and H1 validate against.
pub struct Tables {
    /// Fault-site names (from `qods_fault::SITES`).
    pub sites: Vec<String>,
    /// Instrumentation-site names (from `qods_obs::sites::ALL`).
    pub obs_sites: Vec<String>,
    /// Wire error-kind tags (from `qods_net::protocol::kind::ALL`).
    pub kinds: Vec<String>,
    /// Override field names the canonical config form must encode
    /// (from `qods_service::request::OVERRIDE_FIELDS`).
    pub override_fields: Vec<String>,
    /// Knobs declared policy-not-identity, exempt from H1 encoding
    /// (from `qods_service::request::POLICY_FIELDS`).
    pub policy_fields: Vec<String>,
}

impl Tables {
    /// The live tables of this workspace, imported from the crates
    /// that own them.
    pub fn workspace() -> Self {
        let own = |xs: &[&str]| xs.iter().map(|s| (*s).to_owned()).collect();
        Tables {
            sites: own(qods_fault::SITES),
            obs_sites: own(qods_obs::sites::ALL),
            kinds: own(qods_net::protocol::kind::ALL),
            override_fields: own(&qods_service::request::OVERRIDE_FIELDS),
            policy_fields: own(qods_service::request::POLICY_FIELDS),
        }
    }
}

/// An allow annotation that suppressed nothing — usually a sign the
/// underlying issue was fixed and the annotation should go.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnusedAllow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the annotation.
    pub line: u32,
    /// The rules it names.
    pub rules: Vec<String>,
}

/// The outcome of linting one file.
pub struct FileOutcome {
    /// Unsuppressed findings (including `L0` annotation errors).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a valid allow annotation.
    pub suppressed: Vec<Finding>,
    /// Valid annotations that matched no finding.
    pub unused_allows: Vec<UnusedAllow>,
}

/// Lints one source text. `path` is only used for reporting;
/// `crate_name`/`tree` select which rules apply. Graph rules see a
/// one-file workspace, so fixtures can exercise them too.
pub fn lint_source(
    path: &str,
    crate_name: &str,
    tree: Tree,
    text: &str,
    tables: &Tables,
) -> FileOutcome {
    let files = [scan::scan(path, crate_name, tree, text)];
    lint_scanned(&files, tables)
        .pop()
        .unwrap_or_else(|| unreachable!("one file in, one outcome out"))
}

/// The two-pass engine over an already-scanned file set: per-file
/// line rules, then the workspace graph rules (P1/L1/A1/H1) over the
/// call graph built from *all* the files, with graph findings routed
/// back to the file they anchor on so allow annotations apply
/// uniformly. One outcome per input file, findings sorted by
/// (line, rule).
pub fn lint_scanned(files: &[ScannedFile], tables: &Tables) -> Vec<FileOutcome> {
    let index = graph::Index::build(files);
    let mut graph_findings: Vec<Vec<Finding>> = vec![Vec::new(); files.len()];
    for f in graph_rules::run_graph_rules(&index, files, tables) {
        if let Some(i) = files.iter().position(|sf| sf.path == f.file) {
            graph_findings[i].push(f);
        }
    }
    files
        .iter()
        .zip(graph_findings)
        .map(|(sf, mut from_graph)| {
            let mut raw = rules::run_rules(sf, tables);
            raw.append(&mut from_graph);
            let mut out = apply_allows(sf, raw);
            let key = |f: &Finding| (f.line, f.rule.clone());
            out.findings.sort_by_key(key);
            out.suppressed.sort_by_key(key);
            out
        })
        .collect()
}

/// Splits raw findings into kept vs. suppressed using the file's
/// allow annotations, and raises `L0` findings for malformed or
/// unknown-rule annotations.
fn apply_allows(file: &ScannedFile, raw: Vec<Finding>) -> FileOutcome {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; file.allows.len()];

    for f in raw {
        let slot = file
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.target as u32 == f.line && a.rules.iter().any(|r| r == &f.rule));
        match slot {
            Some((i, _)) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => findings.push(f),
        }
    }

    for bad in &file.bad_allows {
        findings.push(Finding {
            rule: "L0".to_owned(),
            file: file.path.clone(),
            line: bad.line as u32,
            snippet: file
                .raw
                .get(bad.line - 1)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
            note: format!("malformed qods-lint annotation: {}", bad.why),
        });
    }
    for a in &file.allows {
        for r in &a.rules {
            if !rules::RULE_IDS.contains(&r.as_str()) {
                findings.push(Finding {
                    rule: "L0".to_owned(),
                    file: file.path.clone(),
                    line: a.line as u32,
                    snippet: file
                        .raw
                        .get(a.line - 1)
                        .map(|l| l.trim().to_owned())
                        .unwrap_or_default(),
                    note: format!(
                        "annotation names unknown rule `{r}`; known rules: {}",
                        rules::RULE_IDS.join(", ")
                    ),
                });
            }
        }
    }

    let unused_allows = file
        .allows
        .iter()
        .zip(&used)
        .filter(|(a, u)| {
            !**u && a
                .rules
                .iter()
                .all(|r| rules::RULE_IDS.contains(&r.as_str()))
        })
        .map(|(a, _)| UnusedAllow {
            file: file.path.clone(),
            line: a.line as u32,
            rules: a.rules.clone(),
        })
        .collect();

    FileOutcome {
        findings,
        suppressed,
        unused_allows,
    }
}

/// The aggregate outcome of a workspace run (before baseline
/// application).
pub struct WorkspaceReport {
    /// How many files were scanned.
    pub files: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, same order.
    pub suppressed: Vec<Finding>,
    /// Annotations that matched nothing.
    pub unused_allows: Vec<UnusedAllow>,
}

/// Walks the workspace at `root` (root `src/`+`tests/`, then every
/// `crates/*` except `crates/lint`) and scans each `.rs` file into
/// the lexer's views. Paths are visited in sorted order so output is
/// deterministic. This is pass 1's input; the CLI also uses it
/// directly for `--graph-out`.
///
/// # Errors
///
/// An I/O error message naming the path that failed.
pub fn scan_workspace(root: &Path) -> Result<Vec<ScannedFile>, String> {
    let mut units: Vec<(PathBuf, String, Tree)> = Vec::new();
    units.push((root.join("src"), "speed-of-data".to_owned(), Tree::Src));
    units.push((root.join("tests"), "speed-of-data".to_owned(), Tree::Tests));

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => return Err(format!("cannot read {}: {e}", crates_dir.display())),
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_owned) else {
            continue;
        };
        if name == "lint" {
            continue; // the linter's own fixtures would trip every rule
        }
        let crate_name = format!("qods-{name}");
        for (sub, tree) in [
            ("src", Tree::Src),
            ("tests", Tree::Tests),
            ("examples", Tree::Examples),
            ("benches", Tree::Benches),
        ] {
            units.push((dir.join(sub), crate_name.clone(), tree));
        }
    }

    let mut scanned = Vec::new();
    for (dir, crate_name, tree) in units {
        if !dir.is_dir() {
            continue;
        }
        let mut sources = Vec::new();
        collect_rs(&dir, &mut sources)?;
        sources.sort();
        for path in sources {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            scanned.push(scan::scan(&rel, &crate_name, tree, &text));
        }
    }
    Ok(scanned)
}

/// Scans the workspace at `root` and runs both passes over it.
///
/// # Errors
///
/// An I/O error message naming the path that failed.
pub fn lint_workspace(root: &Path, tables: &Tables) -> Result<WorkspaceReport, String> {
    let scanned = scan_workspace(root)?;
    let outcomes = lint_scanned(&scanned, tables);

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut unused_allows = Vec::new();
    for out in outcomes {
        findings.extend(out.findings);
        suppressed.extend(out.suppressed);
        unused_allows.extend(out.unused_allows);
    }
    let by_pos = |f: &Finding| (f.file.clone(), f.line, f.rule.clone());
    findings.sort_by_key(by_pos);
    suppressed.sort_by_key(by_pos);
    Ok(WorkspaceReport {
        files: scanned.len(),
        findings,
        suppressed,
        unused_allows,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in rd.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders findings as NDJSON — one `{rule, file, line, snippet,
/// note}` object per line.
pub fn to_ndjson(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&serde_json::to_string(f).unwrap_or_else(|e| {
            unreachable!("a finding of plain strings/ints always serializes: {e}")
        }));
        s.push('\n');
    }
    s
}

/// Parses an NDJSON findings stream back (the round-trip the tests
/// assert).
///
/// # Errors
///
/// A message naming the first line that did not parse.
pub fn from_ndjson(text: &str) -> Result<Vec<Finding>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad NDJSON line: {e}: {l}")))
        .collect()
}

/// Everything a caller (CLI, `repro --lint`, CI) needs from one run.
pub struct RunOutcome {
    /// The workspace report (all findings, pre-baseline).
    pub report: WorkspaceReport,
    /// Findings not absorbed by the baseline — nonempty fails the run.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline budget that matched nothing (should be committed
    /// away).
    pub stale: Vec<baseline::BaselineEntry>,
}

impl RunOutcome {
    /// True when the run should pass: no fresh findings.
    pub fn clean(&self) -> bool {
        self.fresh.is_empty()
    }
}

/// Lints the workspace and applies `base` (use
/// [`baseline::Baseline::empty`] when there is no baseline file).
///
/// # Errors
///
/// Walker/read errors, as a message.
pub fn run(root: &Path, tables: &Tables, base: &baseline::Baseline) -> Result<RunOutcome, String> {
    run_filtered(root, tables, base, None)
}

/// As [`run`], optionally restricted to one rule id (the CLI's
/// `--rule` flag). Filtering happens before baseline application so
/// a rule-scoped run is judged only against that rule's budget.
///
/// # Errors
///
/// Walker/read errors, as a message.
pub fn run_filtered(
    root: &Path,
    tables: &Tables,
    base: &baseline::Baseline,
    rule: Option<&str>,
) -> Result<RunOutcome, String> {
    let mut report = lint_workspace(root, tables)?;
    if let Some(r) = rule {
        report.findings.retain(|f| f.rule == r);
        report.suppressed.retain(|f| f.rule == r);
        report
            .unused_allows
            .retain(|u| u.rules.iter().any(|x| x == r));
    }
    let split = baseline::apply(base, report.findings.clone());
    Ok(RunOutcome {
        report,
        fresh: split.fresh,
        baselined: split.baselined,
        stale: split.stale,
    })
}

/// Renders the human-readable report.
pub fn render_human(outcome: &RunOutcome) -> String {
    let mut s = String::new();
    for f in &outcome.fresh {
        s.push_str(&format!(
            "{}: {}:{}: {}\n    {}\n",
            f.rule, f.file, f.line, f.note, f.snippet
        ));
    }
    s.push_str(&format!(
        "qods-lint: {} files scanned; {} finding(s) ({} new, {} baselined), {} suppressed by allow annotations\n",
        outcome.report.files,
        outcome.report.findings.len(),
        outcome.fresh.len(),
        outcome.baselined.len(),
        outcome.report.suppressed.len(),
    ));
    if !outcome.report.suppressed.is_empty() {
        let mut by_rule: Vec<(String, usize)> = Vec::new();
        for f in &outcome.report.suppressed {
            if let Some(e) = by_rule.iter_mut().find(|(r, _)| r == &f.rule) {
                e.1 += 1;
            } else {
                by_rule.push((f.rule.clone(), 1));
            }
        }
        by_rule.sort();
        let parts: Vec<String> = by_rule
            .into_iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        s.push_str(&format!("  suppressions by rule: {}\n", parts.join(", ")));
    }
    for u in &outcome.report.unused_allows {
        s.push_str(&format!(
            "warning: unused allow({}) at {}:{} — the finding it covered is gone; remove it\n",
            u.rules.join(", "),
            u.file,
            u.line
        ));
    }
    for e in &outcome.stale {
        s.push_str(&format!(
            "warning: stale baseline budget ({} x{} in {}) — shrink lint-baseline.json\n",
            e.rule, e.count, e.file
        ));
    }
    if outcome.clean() {
        s.push_str("OK: no new findings\n");
    } else {
        s.push_str(&format!(
            "FAIL: {} new finding(s) not covered by the baseline\n",
            outcome.fresh.len()
        ));
    }
    s
}
