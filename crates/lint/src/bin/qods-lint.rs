//! The `qods-lint` CLI.
//!
//! ```text
//! qods-lint [--root DIR] [--baseline PATH] [--ndjson]
//!           [--ndjson-out PATH] [--write-baseline PATH]
//!           [--graph-out PATH.dot] [--rule RULE]
//! ```
//!
//! Lints the workspace at `--root` (default: the current directory),
//! applies the committed baseline (default: `<root>/lint-baseline.json`
//! when present), prints the human report, and exits nonzero when any
//! finding is not covered by the baseline. `--ndjson` swaps the human
//! report for the machine stream; `--ndjson-out` also writes the
//! stream to a file (always written, even when empty, so CI can
//! upload it unconditionally). `--write-baseline` snapshots the
//! current findings as a new baseline document. `--graph-out` dumps
//! the entry-reachable call graph and the lock graph as Graphviz DOT;
//! `--rule R` restricts the run to one rule id.

use qods_lint::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    ndjson: bool,
    ndjson_out: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    graph_out: Option<PathBuf>,
    rule: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        ndjson: false,
        ndjson_out: None,
        write_baseline: None,
        graph_out: None,
        rule: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .map(PathBuf::from)
        };
        match arg.as_str() {
            "--root" => args.root = value("--root")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--ndjson" => args.ndjson = true,
            "--ndjson-out" => args.ndjson_out = Some(value("--ndjson-out")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--graph-out" => args.graph_out = Some(value("--graph-out")?),
            "--rule" => {
                let r = value("--rule")?.to_string_lossy().into_owned();
                if !qods_lint::rules::RULE_IDS.contains(&r.as_str()) {
                    return Err(format!(
                        "unknown rule `{r}`; known rules: {}",
                        qods_lint::rules::RULE_IDS.join(", ")
                    ));
                }
                args.rule = Some(r);
            }
            "--help" | "-h" => {
                println!(
                    "qods-lint [--root DIR] [--baseline PATH] [--ndjson] \
                     [--ndjson-out PATH] [--write-baseline PATH] \
                     [--graph-out PATH.dot] [--rule RULE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qods-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));
    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("qods-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // No baseline file means an empty baseline — every finding
        // is fresh. Only an explicit --baseline that is missing is an
        // error.
        Err(_) if args.baseline.is_none() => Baseline::empty(),
        Err(e) => {
            eprintln!("qods-lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let tables = qods_lint::Tables::workspace();
    let outcome = match qods_lint::run_filtered(&args.root, &tables, &base, args.rule.as_deref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("qods-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.graph_out {
        let dot = match qods_lint::scan_workspace(&args.root) {
            Ok(files) => {
                let index = qods_lint::graph::Index::build(&files);
                let locks = qods_lint::graph_rules::build_lock_graph(&index, &files);
                qods_lint::graph_rules::render_dot(&index, &files, &locks)
            }
            Err(e) => {
                eprintln!("qods-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("qods-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("qods-lint: wrote graphs to {}", path.display());
    }

    if let Some(path) = &args.write_baseline {
        let doc = Baseline::covering(&outcome.report.findings).render();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("qods-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "qods-lint: wrote baseline covering {} finding(s) to {}",
            outcome.report.findings.len(),
            path.display()
        );
    }

    let ndjson = qods_lint::to_ndjson(&outcome.fresh);
    if let Some(path) = &args.ndjson_out {
        if let Err(e) = std::fs::write(path, &ndjson) {
            eprintln!("qods-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.ndjson {
        print!("{ndjson}");
    } else {
        print!("{}", qods_lint::render_human(&outcome));
    }

    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
