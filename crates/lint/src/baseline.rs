//! The committed baseline: pre-existing findings that are tolerated
//! (with a budget) so a new rule can land before its debt is paid
//! off. Entries match on `(rule, file, snippet)` — deliberately not
//! on line numbers, so unrelated edits above a finding do not churn
//! the baseline file.

use crate::Finding;
use serde::{Deserialize, Serialize};

/// The `lint-baseline.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version; currently 1.
    pub schema: u32,
    /// The tolerated findings.
    pub findings: Vec<BaselineEntry>,
}

/// One tolerated finding shape with a count budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// The trimmed source line of the finding.
    pub snippet: String,
    /// How many findings of this shape are tolerated.
    pub count: u32,
}

impl Baseline {
    /// An empty baseline (the shipped state once debt is burned down).
    pub fn empty() -> Self {
        Baseline {
            schema: 1,
            findings: Vec::new(),
        }
    }

    /// Builds a baseline that exactly covers `findings`.
    pub fn covering(findings: &[Finding]) -> Self {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for f in findings {
            if let Some(e) = entries
                .iter_mut()
                .find(|e| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet)
            {
                e.count += 1;
            } else {
                entries.push(BaselineEntry {
                    rule: f.rule.clone(),
                    file: f.file.clone(),
                    snippet: f.snippet.clone(),
                    count: 1,
                });
            }
        }
        Baseline {
            schema: 1,
            findings: entries,
        }
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// A human-readable message when the JSON does not parse or the
    /// schema version is unknown.
    pub fn parse(text: &str) -> Result<Self, String> {
        let b: Baseline =
            serde_json::from_str(text).map_err(|e| format!("baseline did not parse: {e}"))?;
        if b.schema != 1 {
            return Err(format!("unknown baseline schema {}", b.schema));
        }
        Ok(b)
    }

    /// Renders the document as pretty JSON (plus trailing newline).
    pub fn render(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            unreachable!("a baseline of plain strings/ints always serializes: {e}")
        });
        s.push('\n');
        s
    }
}

/// The result of applying a baseline to a run's findings.
pub struct BaselineSplit {
    /// Findings not covered by the baseline — these fail the run.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by baseline budget.
    pub baselined: Vec<Finding>,
    /// Baseline entries with leftover budget — debt that has been
    /// paid down (or moved); the baseline file should shrink.
    pub stale: Vec<BaselineEntry>,
}

/// Splits `findings` into fresh vs. baselined and reports stale
/// baseline budget.
pub fn apply(baseline: &Baseline, findings: Vec<Finding>) -> BaselineSplit {
    let mut budget: Vec<(BaselineEntry, u32)> = baseline
        .findings
        .iter()
        .map(|e| (e.clone(), e.count))
        .collect();
    let mut fresh = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        let slot = budget.iter_mut().find(|(e, left)| {
            *left > 0 && e.rule == f.rule && e.file == f.file && e.snippet == f.snippet
        });
        match slot {
            Some((_, left)) => {
                *left -= 1;
                baselined.push(f);
            }
            None => fresh.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, left)| *left > 0)
        .map(|(mut e, left)| {
            e.count = left;
            e
        })
        .collect();
    BaselineSplit {
        fresh,
        baselined,
        stale,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn f(rule: &str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line: 1,
            snippet: snippet.to_owned(),
            note: String::new(),
        }
    }

    #[test]
    fn baseline_roundtrips_and_budgets_apply() {
        let findings = vec![
            f("R1", "a.rs", "x.unwrap()"),
            f("R1", "a.rs", "x.unwrap()"),
            f("D2", "b.rs", "for k in map {"),
        ];
        let b = Baseline::covering(&findings);
        let b2 = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b2.findings.len(), 2);

        // All covered → nothing fresh, nothing stale.
        let split = apply(&b2, findings.clone());
        assert!(split.fresh.is_empty());
        assert_eq!(split.baselined.len(), 3);
        assert!(split.stale.is_empty());

        // One extra of a covered shape overflows the budget.
        let mut more = findings.clone();
        more.push(f("R1", "a.rs", "x.unwrap()"));
        let split = apply(&b2, more);
        assert_eq!(split.fresh.len(), 1);

        // A fixed finding leaves stale budget behind.
        let split = apply(&b2, vec![f("D2", "b.rs", "for k in map {")]);
        assert!(split.fresh.is_empty());
        assert_eq!(split.stale.len(), 1);
        assert_eq!(split.stale[0].rule, "R1");
        assert_eq!(split.stale[0].count, 2);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        assert!(Baseline::parse("{\"schema\":9,\"findings\":[]}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
