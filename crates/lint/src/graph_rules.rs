//! Pass 2 of the workspace analyzer: the four graph rules that run
//! over the [`crate::graph::Index`] built in pass 1.
//!
//! * **P1** — panic reachability: a path from a serving-path entry
//!   point to a `panic!`/`unwrap`/`expect`/`unreachable!` in *any*
//!   crate. R1 only sees direct sites in the four serving crates'
//!   `src/`; P1 follows calls. A function containing `catch_unwind`
//!   is an isolation barrier: its own panic sites and everything
//!   behind it are out of scope by design.
//! * **L1** — lock order: a directed graph over canonical lock names
//!   with an edge A→B wherever B is acquired (directly, or anywhere
//!   in a callee) while A is held. Cycles are potential inversions;
//!   additionally a lock held across a fault-injection checkpoint or
//!   a blocking I/O call is flagged directly.
//! * **A1** — atomic-ordering taint: a `.load(Ordering::Relaxed)`
//!   whose value flows (intra-procedurally, via [`crate::flow`])
//!   into a serialization/hash/result sink.
//! * **H1** — config-hash coverage: every `Overrides`/`StudyConfig`/
//!   `RunRequest` field must be encoded by `canonical_config_json`
//!   or named in the policy-exclusion table imported from
//!   `qods-service` — "deadline is policy, not identity" as a gate,
//!   not a comment.

use crate::graph::{FnNode, Index};
use crate::scan::{token_positions, ScannedFile};
use crate::{flow, Finding, Tables};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Serving-path entry points: (crate, impl type or free fn, name
/// prefix). A `pub` function matching a row is a P1 traversal root.
const ENTRIES: &[(&str, Option<&str>, &str)] = &[
    ("qods-net", Some("ServeCore"), ""),
    ("qods-net", Some("NetServer"), ""),
    ("qods-net", None, "serve_"),
    ("qods-service", Some("Scheduler"), "run_"),
    ("qods-pool", None, "run_"),
    ("qods-pool", None, "try_run_"),
];

fn is_entry(node: &FnNode, files: &[ScannedFile]) -> bool {
    if !node.is_pub {
        return false;
    }
    let krate = files[node.file].crate_name.as_str();
    ENTRIES.iter().any(|(c, imp, prefix)| {
        *c == krate && node.impl_type.as_deref() == *imp && node.name.starts_with(prefix)
    })
}

fn finding(files: &[ScannedFile], file: usize, line: usize, rule: &str, note: String) -> Finding {
    let f = &files[file];
    Finding {
        rule: rule.to_owned(),
        file: f.path.clone(),
        line: line as u32,
        snippet: f
            .raw
            .get(line - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default(),
        note,
    }
}

/// Runs all four graph rules and returns the raw findings
/// (suppression is the engine's job, as for the line rules).
pub fn run_graph_rules(index: &Index, files: &[ScannedFile], tables: &Tables) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_p1(index, files, &mut out);
    let lock_graph = build_lock_graph(index, files);
    rule_l1(index, files, &lock_graph, &mut out);
    rule_a1(index, files, &mut out);
    rule_h1(index, files, tables, &mut out);
    out
}

// ---------------------------------------------------------------- P1

/// BFS over resolved calls from every entry, stopping at barriers.
/// Returns `node id -> parent id` (entries map to themselves).
fn reach_from_entries(index: &Index, files: &[ScannedFile]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, node) in index.fns.iter().enumerate() {
        if is_entry(node, files) {
            parent.insert(i, i);
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        let node = &index.fns[i];
        if node.catches_unwind {
            continue; // isolation barrier: don't follow its calls
        }
        for call in &node.calls {
            for j in index.resolve(call) {
                if j != i && !parent.contains_key(&j) {
                    parent.insert(j, i);
                    queue.push_back(j);
                }
            }
        }
    }
    parent
}

/// The `entry -> ... -> node` chain, rendered with qualnames.
fn chain_to(
    index: &Index,
    files: &[ScannedFile],
    parent: &BTreeMap<usize, usize>,
    i: usize,
) -> String {
    let mut nodes = vec![i];
    let mut cur = i;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    let names: Vec<String> = nodes
        .iter()
        .map(|&n| index.fns[n].qualname(files))
        .collect();
    if names.len() > 6 {
        format!(
            "{} -> ... -> {}",
            names[..2].join(" -> "),
            names[names.len() - 3..].join(" -> ")
        )
    } else {
        names.join(" -> ")
    }
}

fn rule_p1(index: &Index, files: &[ScannedFile], out: &mut Vec<Finding>) {
    let parent = reach_from_entries(index, files);
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &i in parent.keys() {
        let node = &index.fns[i];
        if node.catches_unwind {
            continue; // its own panics are behind its own barrier
        }
        for site in &node.panics {
            if !seen.insert((node.file, site.line)) {
                continue;
            }
            let chain = chain_to(index, files, &parent, i);
            out.push(finding(
                files,
                node.file,
                site.line,
                "P1",
                format!(
                    "`{}` is reachable from a serving entry via {chain}; a panic here \
                     crosses the isolation boundary — return a typed error, or prove the \
                     invariant and annotate",
                    site.what
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- L1

/// One lock-graph edge: acquiring `to` while `from` is held.
pub struct LockEdge {
    /// File index and 1-based line where the edge is created.
    pub site: (usize, usize),
    /// The callee the inner acquisition sits in, for call-mediated
    /// edges (`None` for direct nesting).
    pub via: Option<String>,
}

/// The lock-acquisition graph over canonical lock names.
pub struct LockGraph {
    /// (held, acquired) → first edge site observed.
    pub edges: BTreeMap<(String, String), LockEdge>,
}

/// The pool's `plock` helper acquires on behalf of its caller — the
/// caller's `plock(&x)` site is already recorded as an acquisition,
/// so the helper's internal `m.lock()` must not contribute a second,
/// aliased lock to every call edge.
fn is_plock_helper(node: &FnNode, files: &[ScannedFile]) -> bool {
    node.name == "plock" && files[node.file].crate_name == "qods-pool"
}

/// Locks acquired by a function or (transitively) any callee.
fn lock_closure(
    index: &Index,
    files: &[ScannedFile],
    memo: &mut Vec<Option<BTreeSet<String>>>,
    visiting: &mut Vec<bool>,
    i: usize,
) -> BTreeSet<String> {
    if let Some(set) = &memo[i] {
        return set.clone();
    }
    if visiting[i] {
        return BTreeSet::new(); // recursion cycle: fixpoint below is enough
    }
    visiting[i] = true;
    let mut set = BTreeSet::new();
    if !is_plock_helper(&index.fns[i], files) {
        for op in &index.fns[i].locks {
            set.insert(op.lock.clone());
        }
        for call in &index.fns[i].calls {
            for j in index.resolve(call) {
                if j != i {
                    set.extend(lock_closure(index, files, memo, visiting, j));
                }
            }
        }
    }
    visiting[i] = false;
    memo[i] = Some(set.clone());
    set
}

/// Builds the lock graph: direct nesting edges and call-mediated
/// edges (a call made while holding A, to a callee whose closure
/// acquires B, is an A→B edge).
pub fn build_lock_graph(index: &Index, files: &[ScannedFile]) -> LockGraph {
    let mut memo: Vec<Option<BTreeSet<String>>> = vec![None; index.fns.len()];
    let mut visiting = vec![false; index.fns.len()];
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();

    for (i, node) in index.fns.iter().enumerate() {
        if is_plock_helper(node, files) {
            continue;
        }
        for a in &node.locks {
            // Direct nesting: B acquired while A is held.
            for b in &node.locks {
                if b.line > a.line && b.line <= a.held_to && b.lock != a.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(LockEdge {
                            site: (node.file, b.line),
                            via: None,
                        });
                }
            }
            // Call-mediated: a callee's transitive acquisitions.
            for call in &node.calls {
                if call.line < a.line || call.line > a.held_to {
                    continue;
                }
                for j in index.resolve(call) {
                    if j == i {
                        continue;
                    }
                    let inner = lock_closure(index, files, &mut memo, &mut visiting, j);
                    for b in inner {
                        if b == a.lock {
                            continue;
                        }
                        edges
                            .entry((a.lock.clone(), b.clone()))
                            .or_insert(LockEdge {
                                site: (node.file, call.line),
                                via: Some(index.fns[j].qualname(files)),
                            });
                    }
                }
            }
        }
    }
    LockGraph { edges }
}

/// Strongly connected components of the lock graph with ≥ 2 locks,
/// plus self-loops — both are ordering inversions.
fn lock_cycles(graph: &LockGraph) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (from, to) in graph.edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        adj.entry(from).or_default().push(to);
    }
    // Tarjan, recursive (lock graphs are tiny).
    struct State<'a> {
        idx: BTreeMap<&'a String, usize>,
        low: BTreeMap<&'a String, usize>,
        stack: Vec<&'a String>,
        on: BTreeSet<&'a String>,
        counter: usize,
        sccs: Vec<Vec<String>>,
    }
    fn strong<'a>(v: &'a String, adj: &BTreeMap<&'a String, Vec<&'a String>>, st: &mut State<'a>) {
        st.idx.insert(v, st.counter);
        st.low.insert(v, st.counter);
        st.counter += 1;
        st.stack.push(v);
        st.on.insert(v);
        for &w in adj.get(v).map(Vec::as_slice).unwrap_or(&[]) {
            if !st.idx.contains_key(w) {
                strong(w, adj, st);
                let lw = st.low[w];
                let lv = st.low[v];
                st.low.insert(v, lv.min(lw));
            } else if st.on.contains(w) {
                let iw = st.idx[w];
                let lv = st.low[v];
                st.low.insert(v, lv.min(iw));
            }
        }
        if st.low[v] == st.idx[v] {
            let mut scc = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on.remove(w);
                scc.push(w.clone());
                if w == v {
                    break;
                }
            }
            scc.sort();
            st.sccs.push(scc);
        }
    }
    let mut st = State {
        idx: BTreeMap::new(),
        low: BTreeMap::new(),
        stack: Vec::new(),
        on: BTreeSet::new(),
        counter: 0,
        sccs: Vec::new(),
    };
    for v in &nodes {
        if !st.idx.contains_key(*v) {
            strong(v, &adj, &mut st);
        }
    }
    let mut cycles: Vec<Vec<String>> = st
        .sccs
        .into_iter()
        .filter(|scc| scc.len() >= 2 || graph.edges.contains_key(&(scc[0].clone(), scc[0].clone())))
        .collect();
    cycles.sort();
    cycles
}

fn rule_l1(index: &Index, files: &[ScannedFile], graph: &LockGraph, out: &mut Vec<Finding>) {
    // Inversion cycles.
    for cycle in lock_cycles(graph) {
        let in_cycle: Vec<(&(String, String), &LockEdge)> = graph
            .edges
            .iter()
            .filter(|((a, b), _)| cycle.contains(a) && cycle.contains(b))
            .collect();
        let Some((_, first)) = in_cycle
            .iter()
            .min_by_key(|(_, e)| (files[e.site.0].path.clone(), e.site.1))
        else {
            continue;
        };
        let shown: Vec<String> = in_cycle
            .iter()
            .take(4)
            .map(|((a, b), e)| format!("{a} -> {b} ({}:{})", files[e.site.0].path, e.site.1))
            .collect();
        out.push(finding(
            files,
            first.site.0,
            first.site.1,
            "L1",
            format!(
                "lock-order cycle between {{{}}}: {} — two threads interleaving these \
                 acquisitions deadlock; impose one order (or merge the critical sections)",
                cycle.join(", "),
                shown.join("; ")
            ),
        ));
    }

    // Locks held across checkpoints / blocking I/O.
    for node in &index.fns {
        if is_plock_helper(node, files) {
            continue;
        }
        for a in &node.locks {
            let offender = node
                .checkpoints
                .iter()
                .map(|s| (s, "a fault-injection/cancellation checkpoint"))
                .chain(node.blocking_io.iter().map(|s| (s, "blocking I/O")))
                .filter(|(s, _)| s.line >= a.line && s.line <= a.held_to)
                .min_by_key(|(s, _)| s.line);
            if let Some((site, kind)) = offender {
                out.push(finding(
                    files,
                    node.file,
                    a.line,
                    "L1",
                    format!(
                        "lock `{}` is held across {kind} (`{}` at line {}); an unwind or \
                         stall there keeps the lock — shrink the critical section",
                        a.lock, site.what, site.line
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- A1

fn rule_a1(index: &Index, files: &[ScannedFile], out: &mut Vec<Finding>) {
    for node in &index.fns {
        let file = &files[node.file];
        if matches!(file.crate_name.as_str(), "qods-bench" | "qods-lint") {
            continue;
        }
        for (site, binding) in &node.relaxed_loads {
            let code = &file.code[site.line - 1];
            let hit = match flow::sink_on(code) {
                Some(sink) => Some((site.line, sink)),
                None => binding.as_deref().and_then(|b| {
                    flow::binding_reaches_sink(
                        file,
                        (node.decl_line - 1, node.end_line - 1),
                        site.line - 1,
                        b,
                    )
                }),
            };
            if let Some((sink_line, sink)) = hit {
                out.push(finding(
                    files,
                    node.file,
                    site.line,
                    "A1",
                    format!(
                        "Relaxed atomic load flows into a `{sink}` sink at line {sink_line}; \
                         a stale value can reach a result/serialized artifact — use Acquire \
                         (or annotate a telemetry-only flow)"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- H1

/// Fields of a struct named `name` declared in `file`: (1-based
/// line, field name), parsed from the brace-matched body.
fn struct_fields(file: &ScannedFile, name: &str) -> Option<Vec<(usize, String)>> {
    let needle = format!("struct {name}");
    let decl = file
        .code
        .iter()
        .position(|l| !token_positions(l, &needle).is_empty())?;
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for (k, line) in file.code.iter().enumerate().skip(decl) {
        let trimmed = line.trim();
        if opened
            && depth == 1
            && !trimmed.starts_with('#')
            && !trimmed.starts_with('}')
            && !trimmed.is_empty()
        {
            let head = trimmed
                .strip_prefix("pub(crate) ")
                .or_else(|| trimmed.strip_prefix("pub "))
                .unwrap_or(trimmed);
            let ident: String = head
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && head[ident.len()..].trim_start().starts_with(':') {
                fields.push((k + 1, ident));
            }
        }
        for b in line.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if !opened && trimmed.ends_with(';') {
            return None; // tuple/unit struct
        }
        if opened && depth == 0 {
            break;
        }
        if k > decl + 120 {
            break;
        }
    }
    Some(fields)
}

/// The `canonical_config_json` node to check a file's structs
/// against: same file preferred, else the workspace's only one.
fn canonical_fn(index: &Index, file_idx: usize) -> Option<&FnNode> {
    let all = index.by_name.get("canonical_config_json")?;
    all.iter()
        .map(|&i| &index.fns[i])
        .find(|f| f.file == file_idx)
        .or_else(|| (all.len() == 1).then(|| &index.fns[all[0]]))
}

/// Identifier-shaped string literal values inside a node's body.
fn body_literals(file: &ScannedFile, node: &FnNode) -> BTreeSet<String> {
    file.strings
        .iter()
        .filter(|s| s.line >= node.decl_line && s.line <= node.end_line)
        .filter(|s| {
            !s.value.is_empty()
                && s.value
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b == b'_' || b.is_ascii_digit())
        })
        .map(|s| s.value.clone())
        .collect()
}

/// First parameter name of a node (for `cfg.field` reference checks).
fn first_param_name(file: &ScannedFile, node: &FnNode) -> Option<String> {
    let code = &file.code[node.decl_line - 1];
    let open = code.find('(')?;
    let rest = code[open + 1..].trim_start();
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// RunRequest's structural fields: not knobs, not policy — the
/// request envelope itself.
const REQUEST_STRUCTURAL: &[&str] = &["id", "experiments", "overrides"];

fn rule_h1(index: &Index, files: &[ScannedFile], tables: &Tables, out: &mut Vec<Finding>) {
    let in_policy = |f: &str| tables.policy_fields.iter().any(|p| p == f);
    let in_table = |f: &str| tables.override_fields.iter().any(|p| p == f);

    for (fi, file) in files.iter().enumerate() {
        if file.tree != crate::scan::Tree::Src {
            continue;
        }

        if let Some(fields) = struct_fields(file, "Overrides") {
            let canonical = canonical_fn(index, fi);
            for (line, name) in &fields {
                if !in_table(name) && !in_policy(name) {
                    out.push(finding(
                        files,
                        fi,
                        *line,
                        "H1",
                        format!(
                            "Overrides field `{name}` is not in OVERRIDE_FIELDS or \
                             POLICY_FIELDS; a knob outside the table silently falls out \
                             of the config hash — add it to the table and the canonical \
                             encoder, or declare it policy"
                        ),
                    ));
                }
            }
            if let Some(canon) = canonical {
                let encoded = body_literals(&files[canon.file], canon);
                for (_, name) in &fields {
                    if in_table(name) && !encoded.contains(name) {
                        out.push(finding(
                            files,
                            canon.file,
                            canon.decl_line,
                            "H1",
                            format!(
                                "override field `{name}` is never encoded by \
                                 canonical_config_json; changing it would not change the \
                                 config hash — encode it (or move it to POLICY_FIELDS)"
                            ),
                        ));
                    }
                }
            }
        }

        if let Some(fields) = struct_fields(file, "StudyConfig") {
            if let Some(canon) = canonical_fn(index, fi) {
                let canon_file = &files[canon.file];
                let param = first_param_name(canon_file, canon).unwrap_or_else(|| "cfg".into());
                for (line, name) in &fields {
                    if in_policy(name) {
                        continue;
                    }
                    let needle = format!("{param}.{name}");
                    let referenced = (canon.decl_line - 1..canon.end_line)
                        .any(|l| canon_file.code[l].contains(&needle));
                    if !referenced {
                        out.push(finding(
                            files,
                            fi,
                            *line,
                            "H1",
                            format!(
                                "StudyConfig field `{name}` never reaches \
                                 canonical_config_json; two configs differing only here \
                                 would collide in the cache — encode it or add it to \
                                 POLICY_FIELDS"
                            ),
                        ));
                    }
                }
            }
        }

        if let Some(fields) = struct_fields(file, "RunRequest") {
            for (line, name) in &fields {
                if !REQUEST_STRUCTURAL.contains(&name.as_str()) && !in_policy(name) {
                    out.push(finding(
                        files,
                        fi,
                        *line,
                        "H1",
                        format!(
                            "RunRequest field `{name}` is neither structural \
                             (id/experiments/overrides) nor in POLICY_FIELDS — decide: \
                             work identity (encode it in the canonical form) or policy \
                             (add it to the table)"
                        ),
                    ));
                }
            }
        }
    }
}

// --------------------------------------------------------------- DOT

/// Renders the call graph (entry-reachable part) and the lock graph
/// as one Graphviz DOT document.
pub fn render_dot(index: &Index, files: &[ScannedFile], graph: &LockGraph) -> String {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    };
    let parent = reach_from_entries(index, files);
    let mut s = String::from("digraph qods {\n  rankdir=LR;\n");
    s.push_str("  subgraph cluster_calls {\n    label=\"call graph (entry-reachable)\";\n");
    for &i in parent.keys() {
        let node = &index.fns[i];
        let q = node.qualname(files);
        let shape = if node.catches_unwind {
            " shape=octagon style=bold" // isolation barrier
        } else if is_entry(node, files) {
            " shape=box style=bold"
        } else {
            ""
        };
        let panics = if node.panics.is_empty() {
            String::new()
        } else {
            format!(" color=red xlabel=\"{} panic site(s)\"", node.panics.len())
        };
        s.push_str(&format!(
            "    f_{} [label=\"{q}\"{shape}{panics}];\n",
            sanitize(&q)
        ));
    }
    for &i in parent.keys() {
        let node = &index.fns[i];
        if node.catches_unwind {
            continue;
        }
        let from = sanitize(&node.qualname(files));
        let mut seen = BTreeSet::new();
        for call in &node.calls {
            for j in index.resolve(call) {
                if j != i && parent.contains_key(&j) && seen.insert(j) {
                    s.push_str(&format!(
                        "    f_{from} -> f_{};\n",
                        sanitize(&index.fns[j].qualname(files))
                    ));
                }
            }
        }
    }
    s.push_str("  }\n  subgraph cluster_locks {\n    label=\"lock graph\";\n");
    let mut lock_nodes: BTreeSet<&String> = BTreeSet::new();
    for (from, to) in graph.edges.keys() {
        lock_nodes.insert(from);
        lock_nodes.insert(to);
    }
    for l in &lock_nodes {
        s.push_str(&format!("    l_{} [label=\"{l}\"];\n", sanitize(l)));
    }
    for ((from, to), edge) in &graph.edges {
        let label = match &edge.via {
            Some(via) => format!("{}:{} via {via}", files[edge.site.0].path, edge.site.1),
            None => format!("{}:{}", files[edge.site.0].path, edge.site.1),
        };
        s.push_str(&format!(
            "    l_{} -> l_{} [label=\"{label}\"];\n",
            sanitize(from),
            sanitize(to)
        ));
    }
    s.push_str("  }\n}\n");
    s
}
