//! O1 fixture: instrumentation-site string drift.

pub fn typoed_handles(metrics: &qods_obs::Registry) {
    let _ = metrics.counter("net.requsts"); // finding: typo-ed site
    let _ = metrics.counter("net.requests"); // canonical — fine
    let _ = metrics.gauge("net.connections"); // canonical — fine
    let _ = metrics.histogram("net.latecy"); // finding: typo-ed site
    let _ = metrics.counter(qods_obs::sites::NET_ERRORS); // constant — fine
}

pub fn typoed_spans() {
    let _span = qods_obs::span!("svc.schedle"); // finding: typo-ed site
    let _also = qods_obs::span!("svc.schedule"); // canonical — fine
    qods_obs::trace::instant("fault.fired", "detail"); // canonical — fine
    instant("not.a.site"); // bare call, no path prefix — out of scope
}

fn instant(_what: &str) {}

pub fn retired(metrics: &qods_obs::Registry) {
    // qods-lint: allow(O1) -- fixture: documenting a retired metric name
    let _ = metrics.counter("old.metric");
}
