//! P1 fixture: a panic transitively reachable from a serving entry,
//! an isolation barrier that stops the traversal, and an annotated
//! deliberate panic.

pub fn serve_fixture(req: u32) -> u32 {
    step_one(req)
}

fn step_one(x: u32) -> u32 {
    step_two(x)
}

fn step_two(x: u32) -> u32 {
    if x == 0 {
        panic!("boom"); // finding: serve_fixture -> step_one -> step_two
    }
    x
}

pub fn serve_guarded(req: u32) -> u32 {
    std::panic::catch_unwind(|| risky(req)).unwrap_or(0)
}

fn risky(_x: u32) -> u32 {
    unreachable!("behind the catch_unwind barrier; not reported")
}

fn never_called() {
    panic!("unreachable from any entry; not reported")
}

pub fn serve_allowed() {
    step_allowed()
}

fn step_allowed() {
    // qods-lint: allow(P1) -- fixture: annotated deliberate panic
    panic!("annotated");
}
