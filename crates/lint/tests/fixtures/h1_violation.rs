//! H1 fixture: a knob outside both tables, an in-table knob the
//! canonical encoder forgot, a config field that never reaches the
//! encoder, and a request field that is neither structural nor
//! policy.

pub struct Overrides {
    pub n_bits: Option<usize>,        // in the table and encoded: clean
    pub seed: Option<u64>,            // in the table but NOT encoded below
    pub retry_budget: Option<u32>,    // finding: in neither table
    pub threads: Option<usize>,       // policy: clean
}

pub struct StudyConfig {
    pub n_bits: usize,
    pub logical_gap: u64, // finding: never reaches the encoder
    pub deadline_ms: u64, // policy: clean
}

pub struct RunRequest {
    pub id: String,
    pub experiments: Vec<String>,
    pub overrides: Overrides,
    pub trace: bool, // finding: neither structural nor policy
}

pub fn canonical_config_json(cfg: &StudyConfig) -> Vec<(String, String)> {
    vec![("n_bits".to_owned(), cfg.n_bits.to_string())]
}
