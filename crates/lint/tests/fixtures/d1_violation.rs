//! D1 fixture: clock/entropy sources in a result-producing crate.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _wall = SystemTime::now(); // finding: wall clock
    let _mono = Instant::now(); // finding: monotonic clock
    // qods-lint: allow(D1) -- fixture: annotated timing-only site
    let _allowed = Instant::now();
    let _rng = rand::thread_rng(); // finding: OS entropy
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
