//! D2 fixture: unordered-container iteration near serialization.
use std::collections::{HashMap, HashSet};

pub fn emit(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in map {
        out.push_str(&format!("{k}={v}\n")); // finding: order leaks out
    }
    out
}

pub fn emit_sorted(map: &HashMap<String, u64>) -> String {
    let mut pairs: Vec<_> = map.iter().collect();
    pairs.sort(); // cleared: explicit sort before the sink
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

#[derive(Serialize)]
pub struct Snapshot {
    pub label: String,
    pub counts: HashMap<String, u64>, // finding: serialized unordered field
}

pub fn fold(set: &HashSet<String>) -> u64 {
    let mut h = 0;
    // qods-lint: allow(D2) -- fixture: XOR fold is order-insensitive
    for k in set {
        h ^= fnv(k.as_bytes());
    }
    h
}

fn fnv(_b: &[u8]) -> u64 {
    0
}
