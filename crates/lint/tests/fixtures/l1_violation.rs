//! L1 fixture: two locks nested in opposite orders (an inversion
//! cycle), a lock held across a cancellation checkpoint, and an
//! annotated write-under-lock.

pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    fn ab(&self) -> u32 {
        let ga = plock(&self.a);
        let gb = plock(&self.b); // edge Pair.a -> Pair.b
        *ga + *gb
    }

    fn ba(&self) -> u32 {
        let gb = plock(&self.b);
        let ga = plock(&self.a); // edge Pair.b -> Pair.a: cycle
        *ga + *gb
    }

    fn held_across(&self) {
        let g = plock(&self.a); // finding: held across a checkpoint
        qods_pool::check_deadline();
        drop(g);
    }

    fn emit_locked(&self, w: &mut impl std::io::Write) {
        // qods-lint: allow(L1) -- fixture: serialization under the lock by design
        let g = plock(&self.a);
        let _ = w.write_all(b"x");
        drop(g);
    }
}
