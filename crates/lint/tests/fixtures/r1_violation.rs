//! R1 fixture: panicking unwraps on the serving path.
use std::sync::Mutex;

pub fn serve(m: &Mutex<u64>) -> u64 {
    let v = m.lock().unwrap(); // finding: poison-tolerant idiom expected
    let s = std::env::var("X").expect("set"); // finding: typed error expected
    // qods-lint: allow(R1) -- fixture: annotated legacy site
    let t = std::env::var("Y").unwrap();
    let ok = std::env::var("Z").unwrap_or_else(|_| String::new()); // not a finding
    *v + (s.len() + t.len() + ok.len()) as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        std::env::var("Z").unwrap();
    }
}
