//! A1 fixture: a Relaxed atomic load flowing into a result sink, a
//! sink-free load that stays clean, and an annotated telemetry flow.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn render(&self) -> String {
        let hits = self.hits.load(Ordering::Relaxed); // finding: flows to format!
        format!("hits={hits}")
    }

    pub fn peek(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // clean: never reaches a sink
    }

    pub fn rebound(&self) -> String {
        let hits = self.hits.load(Ordering::Relaxed); // clean: rebound below
        let hits = 0u64;
        format!("hits={hits}")
    }

    pub fn logged(&self) -> String {
        // qods-lint: allow(A1) -- fixture: telemetry-only flow
        let hits = self.hits.load(Ordering::Relaxed);
        format!("log {hits}")
    }
}
