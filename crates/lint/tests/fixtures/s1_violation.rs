//! S1 fixture: fault-site and wire-kind string drift.

pub fn misfire() {
    qods_fault::check("store.raed"); // finding: typo-ed site
    qods_fault::check("store.read"); // canonical — fine
    qods_fault::check_sleeping("net.conn"); // canonical — fine
}

pub fn plan() -> &'static str {
    "store.wrte:1=io;pool.worker:2=sleep:10" // finding: first entry's site
}

pub fn drifted_kind() -> &'static str {
    "{\"kind\":\"overlaoded\"}" // finding: kind not in the protocol table
}

pub fn valid_kind() -> &'static str {
    "{\"kind\":\"overloaded\"}" // canonical — fine
}

// qods-lint: allow(S1) -- fixture: documenting a retired site name
pub const RETIRED_PLAN: &str = "old.site:1=io";
