//! A minimal workspace whose `Overrides` struct grew a knob that is
//! in neither OVERRIDE_FIELDS nor POLICY_FIELDS. CI runs qods-lint
//! against this root and requires the run to FAIL — proving that
//! config-hash drift is build-breaking, not a code-review nicety.

pub struct Overrides {
    pub n_bits: Option<usize>,
    pub unlisted_knob: Option<u32>,
}
