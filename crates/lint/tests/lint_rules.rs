//! Fixture-driven proof that every rule fires where it should, stays
//! quiet where it should, and respects allow annotations — plus the
//! NDJSON round-trip and the self-hosting run over the real
//! workspace.

use qods_lint::baseline::Baseline;
use qods_lint::scan::Tree;
use qods_lint::{from_ndjson, lint_source, to_ndjson, Finding, Tables};
use std::path::Path;

fn tables() -> Tables {
    Tables::workspace()
}

fn rule_lines(findings: &[Finding]) -> Vec<(String, u32)> {
    findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
}

fn pairs(list: &[(&str, u32)]) -> Vec<(String, u32)> {
    list.iter().map(|(r, l)| ((*r).to_owned(), *l)).collect()
}

#[test]
fn d1_fires_on_clock_and_entropy_sources_and_respects_allow() {
    let text = include_str!("fixtures/d1_violation.rs");
    let out = lint_source("fix/d1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("D1", 5), ("D1", 6), ("D1", 9)]),
        "exact {{rule, line}} set"
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("D1", 8)]));
    assert!(out.unused_allows.is_empty());
}

#[test]
fn d1_does_not_apply_to_the_bench_crate() {
    let text = include_str!("fixtures/d1_violation.rs");
    let out = lint_source("fix/d1.rs", "qods-bench", Tree::Src, text, &tables());
    assert!(out.findings.is_empty(), "qods-bench owns timing");
}

#[test]
fn d2_fires_on_unordered_iteration_into_sinks_and_respects_sort_and_allow() {
    let text = include_str!("fixtures/d2_violation.rs");
    let out = lint_source("fix/d2.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("D2", 6), ("D2", 25)]),
        "the for-loop into push_str and the derive(Serialize) HashMap field; \
         the sorted variant must stay clean"
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("D2", 31)]));
}

#[test]
fn r1_fires_on_serving_path_unwraps_with_the_poison_hint_and_respects_allow() {
    let text = include_str!("fixtures/r1_violation.rs");
    let out = lint_source("fix/r1.rs", "qods-net", Tree::Src, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("R1", 5), ("R1", 6)]));
    assert!(
        out.findings[0].note.contains("PoisonError::into_inner"),
        "lock sites point at the poison-tolerant idiom: {}",
        out.findings[0].note
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("R1", 8)]));
}

#[test]
fn r1_does_not_apply_off_the_serving_path() {
    let text = include_str!("fixtures/r1_violation.rs");
    let out = lint_source("fix/r1.rs", "qods-phys", Tree::Src, text, &tables());
    assert!(rule_lines(&out.findings).iter().all(|(r, _)| r != "R1"));
}

#[test]
fn s1_fails_typoed_fault_sites_and_drifted_error_kinds() {
    let text = include_str!("fixtures/s1_violation.rs");
    let out = lint_source("fix/s1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("S1", 4), ("S1", 10), ("S1", 14)]),
        "call-site typo, plan-string typo, kind drift"
    );
    assert!(out.findings[0].note.contains("store.raed"));
    assert!(out.findings[1].note.contains("store.wrte"));
    assert!(out.findings[2].note.contains("overlaoded"));
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("S1", 22)]));
}

#[test]
fn s1_checks_apply_in_test_trees_too() {
    let text = "fn t() { qods_fault::check(\"store.raed\"); }\n";
    let out = lint_source("fix/t.rs", "qods-net", Tree::Tests, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("S1", 1)]));
}

#[test]
fn o1_fails_typoed_instrumentation_sites_and_respects_allow() {
    let text = include_str!("fixtures/o1_violation.rs");
    let out = lint_source("fix/o1.rs", "qods-net", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("O1", 4), ("O1", 7), ("O1", 12)]),
        "counter typo, histogram typo, span! typo; constants, canonical \
         literals, and bare `instant(` calls stay clean"
    );
    assert!(out.findings[0].note.contains("net.requsts"));
    assert!(out.findings[2].note.contains("svc.schedle"));
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("O1", 22)]));
}

#[test]
fn o1_does_not_apply_inside_the_obs_crate() {
    let text = "fn t(r: &qods_obs::Registry) { r.counter(\"scratch.name\"); }\n";
    let out = lint_source("fix/o1.rs", "qods-obs", Tree::Src, text, &tables());
    assert!(rule_lines(&out.findings).iter().all(|(r, _)| r != "O1"));
}

#[test]
fn p1_reports_transitive_panics_stops_at_barriers_and_respects_allow() {
    let text = include_str!("fixtures/p1_violation.rs");
    let out = lint_source("fix/p1.rs", "qods-net", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("P1", 15)]),
        "only the entry-reachable panic; the barrier-guarded and \
         never-called sites stay quiet"
    );
    assert!(
        out.findings[0].note.contains("serve_fixture") && out.findings[0].note.contains("step_two"),
        "the note names the call chain: {}",
        out.findings[0].note
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("P1", 38)]));
    assert!(out.unused_allows.is_empty());
}

#[test]
fn p1_does_not_fire_without_a_serving_entry() {
    let text = include_str!("fixtures/p1_violation.rs");
    // Same code in a leaf crate with no entry signatures: unreachable.
    let out = lint_source("fix/p1.rs", "qods-phys", Tree::Src, text, &tables());
    assert!(rule_lines(&out.findings).iter().all(|(r, _)| r != "P1"));
}

#[test]
fn l1_reports_inversion_cycles_and_locks_held_across_checkpoints() {
    let text = include_str!("fixtures/l1_violation.rs");
    let out = lint_source("fix/l1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("L1", 13), ("L1", 24)]),
        "the a->b/b->a cycle (anchored at the first edge) and the \
         checkpoint-spanning hold"
    );
    assert!(
        out.findings[0].note.contains("Pair.a") && out.findings[0].note.contains("Pair.b"),
        "the cycle note names both locks: {}",
        out.findings[0].note
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("L1", 31)]));
}

#[test]
fn a1_reports_relaxed_loads_that_flow_into_sinks_and_respects_allow() {
    let text = include_str!("fixtures/a1_violation.rs");
    let out = lint_source("fix/a1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("A1", 12)]),
        "the flowing load only; the sink-free and rebound loads stay clean"
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("A1", 28)]));
}

#[test]
fn h1_checks_every_field_against_the_tables_and_the_encoder() {
    let text = include_str!("fixtures/h1_violation.rs");
    let out = lint_source("fix/h1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("H1", 9), ("H1", 15), ("H1", 23), ("H1", 26)]),
        "unlisted override knob, un-encoded config field, unclassified \
         request field, and the encoder missing an in-table knob"
    );
    assert!(out.findings[0].note.contains("retry_budget"));
    assert!(out.findings[1].note.contains("logical_gap"));
    assert!(out.findings[2].note.contains("trace"));
    assert!(out.findings[3].note.contains("seed"));
}

#[test]
fn the_h1_drift_workspace_fails_the_run() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/h1_drift_ws");
    let outcome = qods_lint::run(&root, &tables(), &Baseline::empty()).expect("fixture ws lints");
    assert!(!outcome.clean(), "the drifted Overrides field must fail");
    assert!(
        outcome.fresh.iter().all(|f| f.rule == "H1")
            && outcome
                .fresh
                .iter()
                .any(|f| f.note.contains("unlisted_knob")),
        "exactly the H1 drift: {}",
        to_ndjson(&outcome.fresh)
    );
}

#[test]
fn the_dot_export_renders_both_graphs() {
    let text = include_str!("fixtures/l1_violation.rs");
    let files = [qods_lint::scan::scan(
        "fix/l1.rs",
        "qods-service",
        Tree::Src,
        text,
    )];
    let index = qods_lint::graph::Index::build(&files);
    let locks = qods_lint::graph_rules::build_lock_graph(&index, &files);
    let dot = qods_lint::graph_rules::render_dot(&index, &files, &locks);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("lock graph"));
    assert!(
        dot.contains("Pair_a") && dot.contains("Pair_b"),
        "both locks appear as nodes:\n{dot}"
    );
}

#[test]
fn malformed_and_unknown_rule_annotations_are_l0_findings() {
    let text = concat!(
        "// qods-lint: allow(R1)\n",                    // missing reason
        "// qods-lint: allow(Q9) -- no such rule\n",    // unknown rule
        "// qods-lint: allow(R1) -- fine but unused\n", // matches nothing
        "fn quiet() {}\n",
    );
    let out = lint_source("fix/l0.rs", "qods-core", Tree::Src, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("L0", 1), ("L0", 2)]));
    assert_eq!(out.unused_allows.len(), 1);
    assert_eq!(out.unused_allows[0].line, 3);
}

#[test]
fn ndjson_round_trips_exactly() {
    let text = include_str!("fixtures/s1_violation.rs");
    let out = lint_source("fix/s1.rs", "qods-service", Tree::Src, text, &tables());
    let stream = to_ndjson(&out.findings);
    assert_eq!(stream.lines().count(), out.findings.len());
    let back = from_ndjson(&stream).expect("the stream we just wrote parses");
    assert_eq!(back, out.findings);
}

#[test]
fn graph_rule_findings_round_trip_through_ndjson_too() {
    let text = include_str!("fixtures/h1_violation.rs");
    let out = lint_source("fix/h1.rs", "qods-service", Tree::Src, text, &tables());
    let back = from_ndjson(&to_ndjson(&out.findings)).expect("parses");
    assert_eq!(back, out.findings);
}

#[test]
fn the_workspace_is_clean_against_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let tables = tables();
    let baseline_path = root.join("lint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("lint-baseline.json is committed");
    let base = Baseline::parse(&text).expect("committed baseline parses");
    let outcome = qods_lint::run(&root, &tables, &base).expect("workspace lints");
    assert!(
        outcome.clean(),
        "new findings not covered by lint-baseline.json:\n{}",
        to_ndjson(&outcome.fresh)
    );
    assert!(
        outcome.stale.is_empty(),
        "baseline has stale budget; shrink lint-baseline.json"
    );
    // Suppression bookkeeping is part of the report contract: the
    // workspace's allow annotations are all live.
    assert!(outcome.report.unused_allows.is_empty());
}

#[test]
fn the_s1_tables_match_the_crates_that_own_them() {
    let t = tables();
    let sites: Vec<String> = qods_fault::SITES.iter().map(|s| (*s).to_owned()).collect();
    let kinds: Vec<String> = qods_net::protocol::kind::ALL
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    assert_eq!(t.sites, sites);
    assert_eq!(t.kinds, kinds);
    assert!(t.sites.contains(&"store.read".to_owned()));
    assert!(t.kinds.contains(&"overloaded".to_owned()));
}

#[test]
fn the_h1_tables_match_the_service_crate_that_owns_them() {
    let t = tables();
    let fields: Vec<String> = qods_service::request::OVERRIDE_FIELDS
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let policy: Vec<String> = qods_service::request::POLICY_FIELDS
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    assert_eq!(t.override_fields, fields);
    assert_eq!(t.policy_fields, policy);
    assert!(t.override_fields.contains(&"n_bits".to_owned()));
    assert!(t.policy_fields.contains(&"deadline_ms".to_owned()));
}
