//! Fixture-driven proof that every rule fires where it should, stays
//! quiet where it should, and respects allow annotations — plus the
//! NDJSON round-trip and the self-hosting run over the real
//! workspace.

use qods_lint::baseline::Baseline;
use qods_lint::scan::Tree;
use qods_lint::{from_ndjson, lint_source, to_ndjson, Finding, Tables};
use std::path::Path;

fn tables() -> Tables {
    Tables::workspace()
}

fn rule_lines(findings: &[Finding]) -> Vec<(String, u32)> {
    findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
}

fn pairs(list: &[(&str, u32)]) -> Vec<(String, u32)> {
    list.iter().map(|(r, l)| ((*r).to_owned(), *l)).collect()
}

#[test]
fn d1_fires_on_clock_and_entropy_sources_and_respects_allow() {
    let text = include_str!("fixtures/d1_violation.rs");
    let out = lint_source("fix/d1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("D1", 5), ("D1", 6), ("D1", 9)]),
        "exact {{rule, line}} set"
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("D1", 8)]));
    assert!(out.unused_allows.is_empty());
}

#[test]
fn d1_does_not_apply_to_the_bench_crate() {
    let text = include_str!("fixtures/d1_violation.rs");
    let out = lint_source("fix/d1.rs", "qods-bench", Tree::Src, text, &tables());
    assert!(out.findings.is_empty(), "qods-bench owns timing");
}

#[test]
fn d2_fires_on_unordered_iteration_into_sinks_and_respects_sort_and_allow() {
    let text = include_str!("fixtures/d2_violation.rs");
    let out = lint_source("fix/d2.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("D2", 6), ("D2", 25)]),
        "the for-loop into push_str and the derive(Serialize) HashMap field; \
         the sorted variant must stay clean"
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("D2", 31)]));
}

#[test]
fn r1_fires_on_serving_path_unwraps_with_the_poison_hint_and_respects_allow() {
    let text = include_str!("fixtures/r1_violation.rs");
    let out = lint_source("fix/r1.rs", "qods-net", Tree::Src, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("R1", 5), ("R1", 6)]));
    assert!(
        out.findings[0].note.contains("PoisonError::into_inner"),
        "lock sites point at the poison-tolerant idiom: {}",
        out.findings[0].note
    );
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("R1", 8)]));
}

#[test]
fn r1_does_not_apply_off_the_serving_path() {
    let text = include_str!("fixtures/r1_violation.rs");
    let out = lint_source("fix/r1.rs", "qods-phys", Tree::Src, text, &tables());
    assert!(rule_lines(&out.findings).iter().all(|(r, _)| r != "R1"));
}

#[test]
fn s1_fails_typoed_fault_sites_and_drifted_error_kinds() {
    let text = include_str!("fixtures/s1_violation.rs");
    let out = lint_source("fix/s1.rs", "qods-service", Tree::Src, text, &tables());
    assert_eq!(
        rule_lines(&out.findings),
        pairs(&[("S1", 4), ("S1", 10), ("S1", 14)]),
        "call-site typo, plan-string typo, kind drift"
    );
    assert!(out.findings[0].note.contains("store.raed"));
    assert!(out.findings[1].note.contains("store.wrte"));
    assert!(out.findings[2].note.contains("overlaoded"));
    assert_eq!(rule_lines(&out.suppressed), pairs(&[("S1", 22)]));
}

#[test]
fn s1_checks_apply_in_test_trees_too() {
    let text = "fn t() { qods_fault::check(\"store.raed\"); }\n";
    let out = lint_source("fix/t.rs", "qods-net", Tree::Tests, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("S1", 1)]));
}

#[test]
fn malformed_and_unknown_rule_annotations_are_l0_findings() {
    let text = concat!(
        "// qods-lint: allow(R1)\n",                    // missing reason
        "// qods-lint: allow(Q9) -- no such rule\n",    // unknown rule
        "// qods-lint: allow(R1) -- fine but unused\n", // matches nothing
        "fn quiet() {}\n",
    );
    let out = lint_source("fix/l0.rs", "qods-core", Tree::Src, text, &tables());
    assert_eq!(rule_lines(&out.findings), pairs(&[("L0", 1), ("L0", 2)]));
    assert_eq!(out.unused_allows.len(), 1);
    assert_eq!(out.unused_allows[0].line, 3);
}

#[test]
fn ndjson_round_trips_exactly() {
    let text = include_str!("fixtures/s1_violation.rs");
    let out = lint_source("fix/s1.rs", "qods-service", Tree::Src, text, &tables());
    let stream = to_ndjson(&out.findings);
    assert_eq!(stream.lines().count(), out.findings.len());
    let back = from_ndjson(&stream).expect("the stream we just wrote parses");
    assert_eq!(back, out.findings);
}

#[test]
fn the_workspace_is_clean_against_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let tables = tables();
    let baseline_path = root.join("lint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("lint-baseline.json is committed");
    let base = Baseline::parse(&text).expect("committed baseline parses");
    let outcome = qods_lint::run(&root, &tables, &base).expect("workspace lints");
    assert!(
        outcome.clean(),
        "new findings not covered by lint-baseline.json:\n{}",
        to_ndjson(&outcome.fresh)
    );
    assert!(
        outcome.stale.is_empty(),
        "baseline has stale budget; shrink lint-baseline.json"
    );
    // Suppression bookkeeping is part of the report contract: the
    // workspace's allow annotations are all live.
    assert!(outcome.report.unused_allows.is_empty());
}

#[test]
fn the_s1_tables_match_the_crates_that_own_them() {
    let t = tables();
    let sites: Vec<String> = qods_fault::SITES.iter().map(|s| (*s).to_owned()).collect();
    let kinds: Vec<String> = qods_net::protocol::kind::ALL
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    assert_eq!(t.sites, sites);
    assert_eq!(t.kinds, kinds);
    assert!(t.sites.contains(&"store.read".to_owned()));
    assert!(t.kinds.contains(&"overloaded".to_owned()));
}
