//! # qods-pool — the workspace's one worker pool
//!
//! Before this crate, the atomic-cursor worker pool was copy-pasted
//! three times (the Fig 15 sweep in `qods-arch`, the Monte-Carlo
//! runner in `qods-phys`, and `Registry::run_all` in `qods-core`).
//! This crate is the single implementation all of them — and the
//! `qods-service` scheduler — share:
//!
//! * [`host_threads`] is the one core-count policy, with a
//!   process-wide override so a `--threads N` flag pins every pool in
//!   the process at once;
//! * [`WorkQueue`] is the atomic claim cursor;
//! * [`run_workers`] fans a closure out over scoped worker threads;
//! * [`run_indexed`] runs `n` independent tasks and returns their
//!   results in index order — the common "embarrassingly parallel,
//!   deterministic assembly" shape.
//!
//! ## Determinism contract
//!
//! Nothing here injects nondeterminism: a task's result may depend
//! only on its index (never on which worker ran it or when), and
//! [`run_indexed`] reassembles results by index. Callers that follow
//! that rule are bit-identical at any thread count, including fully
//! sequential — the property the Monte-Carlo engine, the architecture
//! sweep, and the job scheduler all test for.
//!
//! ## Failure model
//!
//! A panicking worker no longer takes the process down blind:
//! [`try_run_workers`] / [`try_run_indexed`] catch worker unwinds and
//! return a typed [`PoolError`] (the serving path's degrade-gracefully
//! contract). The untyped [`run_workers`] / [`run_indexed`] remain
//! for callers inside an already-guarded scope — they re-raise the
//! classified failure (real panics with their message, deadline hits
//! as the [`DeadlineHit`] sentinel) so nested pools propagate cleanly
//! to the outermost guard.
//!
//! ## Deadlines
//!
//! [`with_deadline`] installs a cooperative, thread-local deadline
//! that [`run_workers`] propagates into every worker it spawns.
//! Engines call [`check_deadline`] at *chunk boundaries only* (an MC
//! trial chunk, a sweep point): a hit unwinds with the private
//! [`DeadlineHit`] sentinel, so no partial result is ever observed —
//! a run either completes bit-identically or returns
//! [`PoolError::DeadlineExceeded`] with nothing cached. That is what
//! keeps the determinism contract compatible with cancellation.

// The pool hosts every serving-path worker: no panicking unwraps
// outside tests (lint rule R1 and the chaos-job clippy gate agree).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use qods_obs::sites;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, Once, PoisonError};
use std::time::Instant;

/// Why a pool run failed (nothing partial is returned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker panicked; `message` is the panic payload when it was
    /// a string (the common `panic!` case).
    WorkerPanicked {
        /// The panic payload's text, or a placeholder.
        message: String,
    },
    /// The thread-local deadline ([`with_deadline`]) expired and a
    /// worker observed it at a chunk boundary ([`check_deadline`]).
    DeadlineExceeded,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
            PoolError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The sentinel payload [`check_deadline`] panics with. Private to
/// the cancellation protocol: [`try_run_workers`] (and the scheduler's
/// guard) classify it back into [`PoolError::DeadlineExceeded`], and
/// the panic hook stays silent for it — a deadline is an outcome, not
/// a crash.
pub struct DeadlineHit;

thread_local! {
    /// The cooperative deadline for work on this thread, if any.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Suppresses default panic-hook output for [`DeadlineHit`] unwinds
/// (installed lazily, once, wrapping whatever hook was active).
fn install_quiet_deadline_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<DeadlineHit>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Restores the previous thread-local deadline on scope exit — also
/// on unwind, so a [`DeadlineHit`] flying past never leaks a stale
/// deadline into unrelated work on a reused thread.
struct DeadlineGuard {
    previous: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.previous));
    }
}

/// Runs `f` under a cooperative deadline. `None` leaves any inherited
/// deadline in place; `Some(t)` tightens it (the *earlier* of `t` and
/// the inherited deadline wins, so nesting can only shorten a budget,
/// never extend one). The previous deadline is restored on exit,
/// unwind included.
pub fn with_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    let previous = DEADLINE.with(Cell::get);
    let effective = match (previous, deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => b.or(a),
    };
    if effective.is_some() {
        install_quiet_deadline_hook();
    }
    DEADLINE.with(|d| d.set(effective));
    let _guard = DeadlineGuard { previous };
    f()
}

/// The deadline active on this thread, if any.
pub fn current_deadline() -> Option<Instant> {
    DEADLINE.with(Cell::get)
}

/// Whether this thread's deadline has passed (false when none is
/// set).
pub fn deadline_exceeded() -> bool {
    // qods-lint: allow(D1) -- deadline checks cancel whole runs; they
    // never alter a completed result (all-or-nothing contract above)
    current_deadline().is_some_and(|t| Instant::now() >= t)
}

/// The cooperative cancellation point: a no-op while the deadline
/// (if any) holds, an unwind with the [`DeadlineHit`] sentinel once
/// it has passed. Engines call this at chunk/point boundaries only,
/// so cancellation can never expose a partial result.
pub fn check_deadline() {
    if deadline_exceeded() {
        std::panic::panic_any(DeadlineHit);
    }
}

/// Poison-tolerant lock: acquires `m`, recovering the guard when a
/// previous holder panicked. The workspace's serving path never
/// protects an invariant with poisoning — every critical section
/// leaves the data valid even if it unwinds mid-way (deadline
/// sentinels, injected faults) — so a poisoned lock is recoverable by
/// construction. This is the one spelling of
/// `lock().unwrap_or_else(PoisonError::into_inner)` the serving
/// crates share; lint rule L1 recognizes it as a lock acquisition.
pub fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Classifies a caught worker unwind: the deadline sentinel maps to
/// [`PoolError::DeadlineExceeded`], everything else to
/// [`PoolError::WorkerPanicked`] carrying the payload's text.
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> PoolError {
    if payload.downcast_ref::<DeadlineHit>().is_some() {
        return PoolError::DeadlineExceeded;
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    PoolError::WorkerPanicked { message }
}

/// Folds per-worker outcomes into one pool outcome. A real panic
/// outranks a deadline hit: when both happened in one fan-out the
/// panic is the defect to surface (the deadline unwinds are its
/// siblings cancelling).
fn fold_outcomes<R>(outcomes: Vec<Result<R, PoolError>>) -> Result<Vec<R>, PoolError> {
    let mut deadline = false;
    let mut results = Vec::with_capacity(outcomes.len());
    let mut panic = None;
    for outcome in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(PoolError::DeadlineExceeded) => deadline = true,
            Err(e @ PoolError::WorkerPanicked { .. }) => {
                if panic.is_none() {
                    panic = Some(e);
                }
            }
        }
    }
    match (panic, deadline) {
        (Some(e), _) => Err(e),
        (None, true) => Err(PoolError::DeadlineExceeded),
        (None, false) => Ok(results),
    }
}

/// Process-wide worker-count override; 0 means "auto" (one worker per
/// core). Set through [`set_thread_override`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins (or with `None` unpins) the worker count every pool in the
/// process uses. This is what a `--threads N` command-line flag
/// should call once at startup: after it, [`host_threads`] — and so
/// every sweep, Monte-Carlo run, and scheduler pool — honors the pin.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The currently pinned worker count, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker threads this host supports: the pinned override when one is
/// set, otherwise one per available core (1 when the runtime cannot
/// tell). The single source of the core-count policy — sweeps,
/// benches, the registry, and the service scheduler all consult this
/// instead of re-deriving it.
pub fn host_threads() -> usize {
    thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The worker count for a pool over `tasks` independent tasks: the
/// host policy, clamped so no worker can exist without work.
pub fn pool_threads(tasks: usize) -> usize {
    host_threads().clamp(1, tasks.max(1))
}

/// An atomic claim cursor over `0..total`: each [`WorkQueue::claim`]
/// hands out the next unclaimed index exactly once, across any number
/// of worker threads (chunked work-stealing when indices are chunks).
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicU64,
    total: u64,
}

impl WorkQueue {
    /// A queue over the indices `0..total`.
    pub fn new(total: u64) -> Self {
        WorkQueue {
            next: AtomicU64::new(0),
            total,
        }
    }

    /// How many indices the queue hands out in total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Claims the next index, or `None` when the queue is drained.
    pub fn claim(&self) -> Option<u64> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }
}

/// Runs `worker(worker_index)` on `threads` scoped OS threads,
/// returning results in worker-index order, with unwinds caught and
/// classified. With `threads <= 1` the worker runs inline on the
/// caller's thread (no spawn) under the same guard. The caller's
/// thread-local deadline ([`with_deadline`]) is installed in every
/// spawned worker, so nested pools inherit the budget.
///
/// The `pool.worker` fault-injection site fires once per worker start
/// (`panic` and `delay` actions apply; others are ignored).
///
/// # Errors
///
/// [`PoolError::WorkerPanicked`] when any worker panicked (a real
/// panic outranks concurrent deadline unwinds),
/// [`PoolError::DeadlineExceeded`] when a worker hit the deadline.
/// Either way no partial results are returned.
pub fn try_run_workers<R, F>(threads: usize, worker: F) -> Result<Vec<R>, PoolError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let deadline = current_deadline();
    // Captured on the caller's thread: worker spans on spawned threads
    // link back to the span that scheduled them (cross-thread parent).
    let parent_span = qods_obs::trace::current_span();
    let guarded = |w: usize| -> Result<R, PoolError> {
        let _span = qods_obs::span!(sites::POOL_WORKER).child_of(parent_span);
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_deadline(deadline, || {
                if let Some(action) = qods_fault::check_sleeping(qods_fault::site::POOL_WORKER) {
                    if action == qods_fault::FaultAction::Panic {
                        panic!("injected fault: pool worker {w} panicked");
                    }
                }
                worker(w)
            })
        }))
        .map_err(classify_panic)
    };
    if threads <= 1 {
        return fold_outcomes(vec![guarded(0)]);
    }
    qods_obs::Registry::global()
        .counter(sites::POOL_WORKERS_SPAWNED)
        .add(threads as u64);
    let guarded = &guarded;
    let outcomes: Vec<Result<R, PoolError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    // Fresh OS thread, fresh TLS: worker w renders on
                    // trace lane w + 1 (lane 0 is the caller).
                    qods_obs::trace::set_lane(w as u32 + 1);
                    guarded(w)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    // Unreachable in practice: the closure catches its
                    // own unwinds. Classify rather than re-panic.
                    Err(PoolError::WorkerPanicked {
                        message: "worker thread died before reporting".to_string(),
                    })
                })
            })
            .collect()
    });
    fold_outcomes(outcomes)
}

/// [`try_run_workers`] for callers inside an already-guarded scope:
/// re-raises the classified failure instead of returning it — a real
/// worker panic as `panic!` with its message, a deadline hit as the
/// [`DeadlineHit`] sentinel (so an enclosing guard sees one
/// consistent cancellation unwind however deep the pool nesting).
///
/// # Panics
///
/// On any worker failure, as described above.
pub fn run_workers<R, F>(threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_run_workers(threads, worker) {
        Ok(results) => results,
        Err(PoolError::DeadlineExceeded) => std::panic::panic_any(DeadlineHit),
        // qods-lint: allow(P1) -- deliberate re-raise: a worker panic must not be swallowed; callers sit inside the serve-loop catch_unwind
        Err(PoolError::WorkerPanicked { message }) => panic!("pool worker panicked: {message}"),
    }
}

/// Runs `n` independent tasks — `task(i)` for `i in 0..n` — over a
/// shared [`WorkQueue`] on `threads` workers, returning the results
/// in index order, with unwinds caught and classified
/// ([`try_run_workers`]). The assembly never depends on which worker
/// computed a task, so results are identical at any thread count.
///
/// # Errors
///
/// As for [`try_run_workers`]; no partial results are returned.
pub fn try_run_indexed<T, F>(n: usize, threads: usize, task: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        let task = &task;
        return try_run_workers(1, move |_| (0..n).map(task).collect::<Vec<T>>())
            .map(|mut v| v.pop().unwrap_or_default());
    }
    let queue = WorkQueue::new(n as u64);
    let mut computed: Vec<(usize, T)> = try_run_workers(threads, |_| {
        let mut mine = Vec::new();
        while let Some(i) = queue.claim() {
            let i = i as usize;
            mine.push((i, task(i)));
        }
        mine
    })?
    .into_iter()
    .flatten()
    .collect();
    computed.sort_unstable_by_key(|&(i, _)| i);
    Ok(computed.into_iter().map(|(_, t)| t).collect())
}

/// [`try_run_indexed`] re-raising failures like [`run_workers`] does —
/// the form for callers inside an already-guarded scope.
///
/// # Panics
///
/// On any worker failure ([`run_workers`] semantics).
pub fn run_indexed<T, F>(n: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_run_indexed(n, threads, task) {
        Ok(results) => results,
        Err(PoolError::DeadlineExceeded) => std::panic::panic_any(DeadlineHit),
        // qods-lint: allow(P1) -- deliberate re-raise: a worker panic must not be swallowed; callers sit inside the serve-loop catch_unwind
        Err(PoolError::WorkerPanicked { message }) => panic!("pool worker panicked: {message}"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn queue_hands_out_each_index_exactly_once() {
        let q = WorkQueue::new(500);
        let claimed = Mutex::new(HashSet::new());
        run_workers(4, |_| {
            while let Some(i) = q.claim() {
                assert!(claimed.lock().unwrap().insert(i), "index {i} claimed twice");
            }
        });
        assert_eq!(claimed.lock().unwrap().len(), 500);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn indexed_results_are_ordered_at_any_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(
                run_indexed(97, threads, |i| i * i),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_task_pools_are_safe() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn workers_report_in_worker_order() {
        let ids = run_workers(3, |w| w);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(run_workers(0, |w| w), vec![0]);
    }

    #[test]
    fn worker_panics_are_typed_errors_not_process_aborts() {
        for threads in [1, 4] {
            let err = try_run_workers(threads, |w| {
                if w == 0 {
                    panic!("worker zero exploded");
                }
                w
            })
            .expect_err("panic must surface as PoolError");
            assert_eq!(
                err,
                PoolError::WorkerPanicked {
                    message: "worker zero exploded".to_string()
                },
                "threads = {threads}"
            );
        }
        // The untyped form re-raises with the message preserved.
        let caught = std::panic::catch_unwind(|| {
            run_workers(2, |w| {
                if w == 1 {
                    panic!("boom");
                }
                w
            })
        })
        .expect_err("must re-panic");
        let text = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn indexed_panics_return_no_partial_results() {
        for threads in [1, 3] {
            let err = try_run_indexed(10, threads, |i| {
                if i == 7 {
                    panic!("task seven");
                }
                i
            })
            .expect_err("panic must surface");
            assert!(matches!(err, PoolError::WorkerPanicked { .. }));
        }
    }

    #[test]
    fn expired_deadline_cancels_at_the_check() {
        let already_past = Instant::now() - std::time::Duration::from_millis(1);
        let err = with_deadline(Some(already_past), || {
            try_run_indexed(100, 2, |i| {
                check_deadline();
                i
            })
        })
        .expect_err("expired deadline must cancel");
        assert_eq!(err, PoolError::DeadlineExceeded);
        // Outside the scope the deadline is gone.
        assert_eq!(current_deadline(), None);
        assert!(!deadline_exceeded());
    }

    #[test]
    fn unexpired_deadline_changes_nothing() {
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let results = with_deadline(Some(far), || {
            try_run_indexed(50, 2, |i| {
                check_deadline();
                i * 2
            })
        })
        .expect("far deadline must not cancel");
        assert_eq!(results, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_deadlines_tighten_never_extend() {
        let near = Instant::now() - std::time::Duration::from_millis(1);
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        with_deadline(Some(near), || {
            // An inner, later deadline must not revive expired work.
            with_deadline(Some(far), || {
                assert!(deadline_exceeded(), "inner scope keeps the tighter bound");
            });
            // `None` inherits.
            with_deadline(None, || assert!(deadline_exceeded()));
        });
    }

    #[test]
    fn workers_inherit_the_spawning_threads_deadline() {
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = with_deadline(Some(past), || {
            try_run_workers(3, |_| {
                check_deadline(); // runs on a spawned thread
                0u32
            })
        })
        .expect_err("spawned workers must see the deadline");
        assert_eq!(err, PoolError::DeadlineExceeded);
    }

    #[test]
    fn injected_worker_panic_fires_through_the_fault_site() {
        // Process-global injector: keep arm/disarm in one test.
        qods_fault::arm(qods_fault::FaultPlan::new().once(
            "pool.worker",
            1,
            qods_fault::FaultAction::Panic,
        ));
        let err = try_run_workers(1, |_| 7).expect_err("injected panic");
        match err {
            PoolError::WorkerPanicked { message } => {
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(qods_fault::fired_at("pool.worker"), 1);
        qods_fault::disarm();
        // Disarmed again: the same call succeeds.
        assert_eq!(try_run_workers(1, |_| 7), Ok(vec![7]));
    }

    /// The override tests live in one function: the pin is
    /// process-global, and splitting them across `#[test]`s would race
    /// under the parallel test harness.
    #[test]
    fn thread_override_pins_and_unpins() {
        assert!(host_threads() >= 1);
        set_thread_override(Some(3));
        assert_eq!(thread_override(), Some(3));
        assert_eq!(host_threads(), 3);
        assert_eq!(pool_threads(2), 2);
        assert_eq!(pool_threads(100), 3);
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        assert!(host_threads() >= 1);
        assert_eq!(pool_threads(0), 1);
    }
}
