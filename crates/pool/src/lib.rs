//! # qods-pool — the workspace's one worker pool
//!
//! Before this crate, the atomic-cursor worker pool was copy-pasted
//! three times (the Fig 15 sweep in `qods-arch`, the Monte-Carlo
//! runner in `qods-phys`, and `Registry::run_all` in `qods-core`).
//! This crate is the single implementation all of them — and the
//! `qods-service` scheduler — share:
//!
//! * [`host_threads`] is the one core-count policy, with a
//!   process-wide override so a `--threads N` flag pins every pool in
//!   the process at once;
//! * [`WorkQueue`] is the atomic claim cursor;
//! * [`run_workers`] fans a closure out over scoped worker threads;
//! * [`run_indexed`] runs `n` independent tasks and returns their
//!   results in index order — the common "embarrassingly parallel,
//!   deterministic assembly" shape.
//!
//! ## Determinism contract
//!
//! Nothing here injects nondeterminism: a task's result may depend
//! only on its index (never on which worker ran it or when), and
//! [`run_indexed`] reassembles results by index. Callers that follow
//! that rule are bit-identical at any thread count, including fully
//! sequential — the property the Monte-Carlo engine, the architecture
//! sweep, and the job scheduler all test for.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 means "auto" (one worker per
/// core). Set through [`set_thread_override`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins (or with `None` unpins) the worker count every pool in the
/// process uses. This is what a `--threads N` command-line flag
/// should call once at startup: after it, [`host_threads`] — and so
/// every sweep, Monte-Carlo run, and scheduler pool — honors the pin.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The currently pinned worker count, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker threads this host supports: the pinned override when one is
/// set, otherwise one per available core (1 when the runtime cannot
/// tell). The single source of the core-count policy — sweeps,
/// benches, the registry, and the service scheduler all consult this
/// instead of re-deriving it.
pub fn host_threads() -> usize {
    thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The worker count for a pool over `tasks` independent tasks: the
/// host policy, clamped so no worker can exist without work.
pub fn pool_threads(tasks: usize) -> usize {
    host_threads().clamp(1, tasks.max(1))
}

/// An atomic claim cursor over `0..total`: each [`WorkQueue::claim`]
/// hands out the next unclaimed index exactly once, across any number
/// of worker threads (chunked work-stealing when indices are chunks).
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicU64,
    total: u64,
}

impl WorkQueue {
    /// A queue over the indices `0..total`.
    pub fn new(total: u64) -> Self {
        WorkQueue {
            next: AtomicU64::new(0),
            total,
        }
    }

    /// How many indices the queue hands out in total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Claims the next index, or `None` when the queue is drained.
    pub fn claim(&self) -> Option<u64> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }
}

/// Runs `worker(worker_index)` on `threads` scoped OS threads and
/// returns their results in worker-index order. With `threads <= 1`
/// the worker runs inline on the caller's thread (no spawn).
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_workers<R, F>(threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 {
        return vec![worker(0)];
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// Runs `n` independent tasks — `task(i)` for `i in 0..n` — over a
/// shared [`WorkQueue`] on `threads` workers, returning the results
/// in index order. The assembly never depends on which worker
/// computed a task, so results are identical at any thread count.
pub fn run_indexed<T, F>(n: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(task).collect();
    }
    let queue = WorkQueue::new(n as u64);
    let mut computed: Vec<(usize, T)> = run_workers(threads, |_| {
        let mut mine = Vec::new();
        while let Some(i) = queue.claim() {
            let i = i as usize;
            mine.push((i, task(i)));
        }
        mine
    })
    .into_iter()
    .flatten()
    .collect();
    computed.sort_unstable_by_key(|&(i, _)| i);
    computed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn queue_hands_out_each_index_exactly_once() {
        let q = WorkQueue::new(500);
        let claimed = Mutex::new(HashSet::new());
        run_workers(4, |_| {
            while let Some(i) = q.claim() {
                assert!(claimed.lock().unwrap().insert(i), "index {i} claimed twice");
            }
        });
        assert_eq!(claimed.lock().unwrap().len(), 500);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn indexed_results_are_ordered_at_any_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(
                run_indexed(97, threads, |i| i * i),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_task_pools_are_safe() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn workers_report_in_worker_order() {
        let ids = run_workers(3, |w| w);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(run_workers(0, |w| w), vec![0]);
    }

    /// The override tests live in one function: the pin is
    /// process-global, and splitting them across `#[test]`s would race
    /// under the parallel test harness.
    #[test]
    fn thread_override_pins_and_unpins() {
        assert!(host_threads() >= 1);
        set_thread_override(Some(3));
        assert_eq!(thread_override(), Some(3));
        assert_eq!(host_threads(), 3);
        assert_eq!(pool_threads(2), 2);
        assert_eq!(pool_threads(100), 3);
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        assert!(host_threads() >= 1);
        assert_eq!(pool_threads(0), 1);
    }
}
