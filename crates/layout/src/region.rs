//! The data-qubit compute region of Fig 10 (§4.2).
//!
//! Each encoded data qubit occupies a single column of seven
//! straight-channel-gate macroblocks (one per physical qubit of the
//! [[7,1,3]] code), with interconnect access on both ends. Data area is
//! therefore `m x n_q` macroblocks with `m = 7`.

use crate::grid::Grid;
use crate::macroblock::{Macroblock, MacroblockKind};

/// Physical qubits per encoded qubit in the [[7,1,3]] code.
pub const BLOCK_SIZE: usize = 7;

/// Total data area (macroblocks) for `n_qubits` encoded qubits,
/// including data ancillae — the paper's `m x n_q` rule.
pub fn data_region_area(n_qubits: usize) -> usize {
    BLOCK_SIZE * n_qubits
}

/// Builds the Fig 10 layout for one encoded data qubit: a column of
/// seven gate macroblocks, open to the interconnect at both ends.
pub fn single_qubit_region() -> Grid {
    let mut g = Grid::new(BLOCK_SIZE, 1);
    for r in 0..BLOCK_SIZE {
        g.place(r, 0, Macroblock::new(MacroblockKind::StraightChannelGate));
    }
    g
}

/// Builds a dense data region for `n` encoded qubits: `n` adjacent
/// columns of seven gate macroblocks (ballistic channels run along the
/// column axis; the surrounding interconnect is provided by the
/// enclosing tile, see `qods-arch`).
pub fn dense_data_region(n: usize) -> Grid {
    let mut g = Grid::new(BLOCK_SIZE, n);
    for c in 0..n {
        for r in 0..BLOCK_SIZE {
            g.place(r, c, Macroblock::new(MacroblockKind::StraightChannelGate));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::route;
    use qods_phys::latency::LatencyTable;

    #[test]
    fn table9_data_areas() {
        // 32-bit QRCA: 97 encoded qubits; QCLA: 123; QFT: 32.
        assert_eq!(data_region_area(97), 679);
        assert_eq!(data_region_area(123), 861);
        assert_eq!(data_region_area(32), 224);
    }

    #[test]
    fn single_region_is_a_valid_column_of_gates() {
        let g = single_qubit_region();
        assert_eq!(g.area(), 7);
        assert!(g.validate().is_ok());
        assert_eq!(g.gate_locations().len(), 7);
    }

    #[test]
    fn dense_region_area_matches_rule() {
        let g = dense_data_region(5);
        assert_eq!(g.area(), data_region_area(5));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn physical_qubits_can_traverse_their_column() {
        let g = single_qubit_region();
        let t = LatencyTable::ion_trap();
        let p = route(&g, (0, 0), (6, 0), &t).expect("column traversal");
        assert_eq!(p.moves, 6);
        assert_eq!(p.turns, 0);
    }
}
