//! The macroblock kinds of Fig 9.

/// Cardinal directions; ports and headings use these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Up (decreasing row).
    North,
    /// Right (increasing column).
    East,
    /// Down (increasing row).
    South,
    /// Left (decreasing column).
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Row/column delta of a step in this direction.
    pub fn delta(self) -> (isize, isize) {
        match self {
            Dir::North => (-1, 0),
            Dir::East => (0, 1),
            Dir::South => (1, 0),
            Dir::West => (0, -1),
        }
    }

    /// Rotation by 90 degrees clockwise, `q` times.
    pub fn rotated(self, q: u8) -> Dir {
        let order = [Dir::North, Dir::East, Dir::South, Dir::West];
        let i = match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        };
        order[(i + q as usize) % 4]
    }
}

/// Orientation of a macroblock: the number of clockwise quarter-turns
/// applied to its canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Orientation(pub u8);

/// The abstract building blocks of Fig 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroblockKind {
    /// A straight movement channel (canonical: north-south).
    StraightChannel,
    /// A straight channel containing a gate location.
    StraightChannelGate,
    /// A dead end containing a gate location (canonical port: south).
    DeadEndGate,
    /// A 90-degree turn (canonical: south-to-east).
    Turn,
    /// A three-way intersection (canonical: all but north).
    ThreeWayIntersection,
    /// A four-way intersection.
    FourWayIntersection,
}

impl MacroblockKind {
    /// Ports of the canonical (unrotated) form.
    fn canonical_ports(self) -> Vec<Dir> {
        match self {
            MacroblockKind::StraightChannel | MacroblockKind::StraightChannelGate => {
                vec![Dir::North, Dir::South]
            }
            MacroblockKind::DeadEndGate => vec![Dir::South],
            MacroblockKind::Turn => vec![Dir::South, Dir::East],
            MacroblockKind::ThreeWayIntersection => vec![Dir::East, Dir::South, Dir::West],
            MacroblockKind::FourWayIntersection => Dir::ALL.to_vec(),
        }
    }

    /// Whether the block contains a gate location. Gate locations may
    /// not occur in intersections (Fig 9 caption).
    pub fn has_gate_location(self) -> bool {
        matches!(
            self,
            MacroblockKind::StraightChannelGate | MacroblockKind::DeadEndGate
        )
    }
}

/// A placed macroblock: a kind plus an orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Macroblock {
    /// Which Fig 9 block this is.
    pub kind: MacroblockKind,
    /// Clockwise quarter-turns from the canonical form.
    pub orientation: Orientation,
}

impl Macroblock {
    /// A block in canonical orientation.
    pub fn new(kind: MacroblockKind) -> Self {
        Macroblock {
            kind,
            orientation: Orientation(0),
        }
    }

    /// A rotated block.
    pub fn rotated(kind: MacroblockKind, quarter_turns: u8) -> Self {
        Macroblock {
            kind,
            orientation: Orientation(quarter_turns % 4),
        }
    }

    /// The open ports after rotation.
    pub fn ports(&self) -> Vec<Dir> {
        self.kind
            .canonical_ports()
            .into_iter()
            .map(|d| d.rotated(self.orientation.0))
            .collect()
    }

    /// True when a port opens in direction `d`.
    pub fn has_port(&self, d: Dir) -> bool {
        self.ports().contains(&d)
    }

    /// Whether the block contains a gate location.
    pub fn has_gate_location(&self) -> bool {
        self.kind.has_gate_location()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles_ports() {
        let t = Macroblock::rotated(MacroblockKind::Turn, 1);
        // south-east turned clockwise once: west-south.
        assert!(t.has_port(Dir::West));
        assert!(t.has_port(Dir::South));
        assert!(!t.has_port(Dir::North));
    }

    #[test]
    fn gate_locations_only_in_channel_blocks() {
        assert!(MacroblockKind::StraightChannelGate.has_gate_location());
        assert!(MacroblockKind::DeadEndGate.has_gate_location());
        assert!(!MacroblockKind::FourWayIntersection.has_gate_location());
        assert!(!MacroblockKind::Turn.has_gate_location());
    }

    #[test]
    fn four_way_is_rotation_invariant() {
        for q in 0..4 {
            let b = Macroblock::rotated(MacroblockKind::FourWayIntersection, q);
            assert_eq!(b.ports().len(), 4);
        }
    }

    #[test]
    fn opposite_and_delta_are_consistent() {
        for d in Dir::ALL {
            let (dr, dc) = d.delta();
            let (or, oc) = d.opposite().delta();
            assert_eq!((dr + or, dc + oc), (0, 0));
            assert_eq!(d.rotated(4), d);
        }
    }
}
