//! Rectangular macroblock layouts.

use crate::macroblock::{Dir, Macroblock};

/// A rectangular grid of optional macroblocks.
///
/// # Example
///
/// ```
/// use qods_layout::grid::Grid;
/// use qods_layout::macroblock::{Macroblock, MacroblockKind};
///
/// let mut g = Grid::new(2, 1);
/// g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannelGate));
/// g.place(1, 0, Macroblock::new(MacroblockKind::StraightChannel));
/// assert_eq!(g.area(), 2);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    rows: usize,
    cols: usize,
    cells: Vec<Option<Macroblock>>,
}

impl Grid {
    /// An empty grid of the given dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        Grid {
            rows,
            cols,
            cells: vec![None; rows * cols],
        }
    }

    /// Grid height in macroblocks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width in macroblocks.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Places a block.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or the cell is occupied.
    pub fn place(&mut self, row: usize, col: usize, block: Macroblock) {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of bounds"
        );
        let cell = &mut self.cells[row * self.cols + col];
        assert!(cell.is_none(), "cell ({row},{col}) already occupied");
        *cell = Some(block);
    }

    /// The block at a position (if any).
    pub fn at(&self, row: usize, col: usize) -> Option<&Macroblock> {
        if row < self.rows && col < self.cols {
            self.cells[row * self.cols + col].as_ref()
        } else {
            None
        }
    }

    /// Number of placed macroblocks — the paper's area measure.
    pub fn area(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Positions of all gate locations.
    pub fn gate_locations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                if let Some(b) = self.at(r, c) {
                    if b.has_gate_location() {
                        out.push((r, c));
                    }
                }
            }
        }
        out
    }

    /// Neighbor position in a direction (bounds-checked).
    pub fn neighbor(&self, row: usize, col: usize, d: Dir) -> Option<(usize, usize)> {
        let (dr, dc) = d.delta();
        let nr = row as isize + dr;
        let nc = col as isize + dc;
        if nr >= 0 && nc >= 0 && (nr as usize) < self.rows && (nc as usize) < self.cols {
            Some((nr as usize, nc as usize))
        } else {
            None
        }
    }

    /// Checks that every open port faces either the grid edge (an
    /// external port) or an open port of the adjacent block.
    ///
    /// # Errors
    ///
    /// Returns the first mismatched `(row, col, dir)`.
    pub fn validate(&self) -> Result<(), (usize, usize, Dir)> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                let Some(b) = self.at(r, c) else { continue };
                for d in b.ports() {
                    if let Some((nr, nc)) = self.neighbor(r, c, d) {
                        if let Some(nb) = self.at(nr, nc) {
                            if !nb.has_port(d.opposite()) {
                                return Err((r, c, d));
                            }
                        }
                        // Facing an empty cell is allowed: the channel
                        // simply terminates (external port).
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroblock::MacroblockKind;

    #[test]
    fn area_counts_placed_blocks() {
        let mut g = Grid::new(3, 3);
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(2, 2, Macroblock::new(MacroblockKind::FourWayIntersection));
        assert_eq!(g.area(), 2);
    }

    #[test]
    fn validate_catches_port_mismatch() {
        let mut g = Grid::new(2, 1);
        // Vertical channel above a turn whose ports face south+east:
        // the channel's south port hits the turn's closed north side.
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(1, 0, Macroblock::new(MacroblockKind::Turn));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_accepts_matched_ports() {
        let mut g = Grid::new(3, 1);
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(1, 0, Macroblock::new(MacroblockKind::StraightChannelGate));
        g.place(2, 0, Macroblock::new(MacroblockKind::StraightChannel));
        assert!(g.validate().is_ok());
        assert_eq!(g.gate_locations(), vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_placement_panics() {
        let mut g = Grid::new(1, 1);
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
    }
}
