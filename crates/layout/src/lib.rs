//! # qods-layout — the ion-trap macroblock layout abstraction (§4.1)
//!
//! The paper measures every area in *macroblocks* (Fig 9): fixed
//! electrode structures with channels for ion movement, optional gate
//! locations, and ports to adjacent macroblocks. This crate provides:
//!
//! * [`macroblock`] — the six macroblock kinds of Fig 9 with their
//!   port structure and gate locations;
//! * [`grid`] — rectangular layouts of macroblocks with connectivity
//!   validation and area accounting;
//! * [`route`] — a Dijkstra router that counts straight moves and
//!   turns (the two movement primitives of Table 4) between layout
//!   positions;
//! * [`region`] — the data-qubit compute region of Fig 10 (a single
//!   column of gate macroblocks per encoded qubit: data area is
//!   `7 x n_qubits` for the [[7,1,3]] code, §4.2).
//!
//! # Example
//!
//! ```
//! use qods_layout::region::data_region_area;
//!
//! // Table 9's data areas: 32-bit QRCA uses 97 encoded qubits.
//! assert_eq!(data_region_area(97), 679);
//! ```

pub mod grid;
pub mod macroblock;
pub mod region;
pub mod route;

pub use grid::Grid;
pub use macroblock::{Macroblock, MacroblockKind, Orientation};
pub use route::{route, MovementPlan};
