//! Movement routing over a macroblock grid.
//!
//! Ion movement has two primitives (Table 4): a straight move across
//! one macroblock (`t_move` = 1 us) and a turn (`t_turn` = 10 us,
//! an order of magnitude slower — the reason factory layouts minimize
//! corners). The router runs Dijkstra over `(position, heading)`
//! states and reports the move/turn counts of the cheapest path.

use crate::grid::Grid;
use crate::macroblock::Dir;
use qods_phys::latency::{LatencyTable, SymbolicLatency};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The movement cost of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementPlan {
    /// Straight macroblock crossings.
    pub moves: u32,
    /// Heading changes.
    pub turns: u32,
}

impl MovementPlan {
    /// The plan as a symbolic latency.
    pub fn symbolic(&self) -> SymbolicLatency {
        SymbolicLatency::new().mov(self.moves).turn(self.turns)
    }

    /// Latency in microseconds under a latency table.
    pub fn latency_us(&self, t: &LatencyTable) -> f64 {
        self.symbolic().eval(t)
    }
}

#[derive(PartialEq)]
struct Node {
    cost: f64,
    pos: (usize, usize),
    heading: Option<Dir>,
    moves: u32,
    turns: u32,
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost.
        other.cost.partial_cmp(&self.cost).expect("finite costs")
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the cheapest movement plan from `from` to `to` through open
/// ports, or `None` when unreachable. The initial heading is free (the
/// ion starts parked); every subsequent heading change is a turn.
pub fn route(
    grid: &Grid,
    from: (usize, usize),
    to: (usize, usize),
    t: &LatencyTable,
) -> Option<MovementPlan> {
    if grid.at(from.0, from.1).is_none() || grid.at(to.0, to.1).is_none() {
        return None;
    }
    if from == to {
        return Some(MovementPlan { moves: 0, turns: 0 });
    }
    let idx = |p: (usize, usize), h: usize| (p.0 * grid.cols() + p.1) * 5 + h;
    let hidx = |h: Option<Dir>| match h {
        None => 4usize,
        Some(d) => Dir::ALL.iter().position(|&x| x == d).expect("cardinal"),
    };
    let mut best = vec![f64::INFINITY; grid.rows() * grid.cols() * 5];
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        cost: 0.0,
        pos: from,
        heading: None,
        moves: 0,
        turns: 0,
    });
    best[idx(from, 4)] = 0.0;
    while let Some(n) = heap.pop() {
        if n.pos == to {
            return Some(MovementPlan {
                moves: n.moves,
                turns: n.turns,
            });
        }
        if n.cost > best[idx(n.pos, hidx(n.heading))] {
            continue;
        }
        let here = grid.at(n.pos.0, n.pos.1).expect("on grid");
        for d in here.ports() {
            let Some(np) = grid.neighbor(n.pos.0, n.pos.1, d) else {
                continue;
            };
            let Some(nb) = grid.at(np.0, np.1) else {
                continue;
            };
            if !nb.has_port(d.opposite()) {
                continue;
            }
            let turning = matches!(n.heading, Some(h) if h != d);
            let cost = n.cost + t.t_move + if turning { t.t_turn } else { 0.0 };
            let key = idx(np, hidx(Some(d)));
            if cost < best[key] {
                best[key] = cost;
                heap.push(Node {
                    cost,
                    pos: np,
                    heading: Some(d),
                    moves: n.moves + 1,
                    turns: n.turns + u32::from(turning),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroblock::{Macroblock, MacroblockKind};

    fn straight_line(n: usize) -> Grid {
        let mut g = Grid::new(n, 1);
        for r in 0..n {
            g.place(r, 0, Macroblock::new(MacroblockKind::StraightChannel));
        }
        g
    }

    #[test]
    fn straight_route_has_no_turns() {
        let g = straight_line(6);
        let t = LatencyTable::ion_trap();
        let p = route(&g, (0, 0), (5, 0), &t).expect("reachable");
        assert_eq!(p.moves, 5);
        assert_eq!(p.turns, 0);
        assert_eq!(p.latency_us(&t), 5.0);
    }

    #[test]
    fn l_shaped_route_counts_one_turn() {
        // Vertical channel, a turn block, then horizontal channel.
        let mut g = Grid::new(3, 3);
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(1, 0, Macroblock::new(MacroblockKind::StraightChannel));
        // Turn: canonical south+east; we need north+east = rotate so
        // ports are north and east: canonical (S,E) rotated twice is
        // (N,W); rotated three times is (E,N)... enumerate to find it.
        let mut placed = false;
        for q in 0..4 {
            let b = Macroblock::rotated(MacroblockKind::Turn, q);
            if b.has_port(crate::macroblock::Dir::North) && b.has_port(crate::macroblock::Dir::East)
            {
                g.place(2, 0, b);
                placed = true;
                break;
            }
        }
        assert!(placed);
        for c in 1..3 {
            g.place(
                2,
                c,
                Macroblock::rotated(MacroblockKind::StraightChannel, 1),
            );
        }
        assert!(g.validate().is_ok());
        let t = LatencyTable::ion_trap();
        let p = route(&g, (0, 0), (2, 2), &t).expect("reachable");
        assert_eq!(p.moves, 4);
        assert_eq!(p.turns, 1);
        assert_eq!(p.latency_us(&t), 14.0);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Grid::new(3, 1);
        g.place(0, 0, Macroblock::new(MacroblockKind::StraightChannel));
        g.place(2, 0, Macroblock::new(MacroblockKind::StraightChannel));
        // gap at row 1
        let t = LatencyTable::ion_trap();
        assert!(route(&g, (0, 0), (2, 0), &t).is_none());
    }

    #[test]
    fn self_route_is_free() {
        let g = straight_line(2);
        let t = LatencyTable::ion_trap();
        let p = route(&g, (1, 0), (1, 0), &t).expect("self");
        assert_eq!((p.moves, p.turns), (0, 0));
    }

    #[test]
    fn router_prefers_fewer_turns_when_costlier() {
        // A 3x3 all-four-way grid: multiple shortest paths exist; the
        // L-path has 1 turn; any staircase has 3. Dijkstra must pick 1.
        let mut g = Grid::new(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                g.place(r, c, Macroblock::new(MacroblockKind::FourWayIntersection));
            }
        }
        let t = LatencyTable::ion_trap();
        let p = route(&g, (0, 0), (2, 2), &t).expect("reachable");
        assert_eq!(p.moves, 4);
        assert_eq!(p.turns, 1);
    }
}
