//! # qods-synth — fault-tolerant rotation synthesis (§2.5, §4.4.2)
//!
//! The QFT needs controlled phase rotations by pi/2^k; below pi/2 no
//! transversal implementation exists in the [[7,1,3]] code, so the
//! paper adopts Fowler's technique: exhaustively search H/T gate
//! sequences for a minimum-length approximation of each small-angle
//! rotation.
//!
//! This crate implements that search over the **Matsumoto-Amano normal
//! form** — every single-qubit Clifford+T unitary has a unique
//! representation `(T|eps) (HT|SHT)* C` with `C` one of the 24 Clifford
//! gates — which enumerates exactly the distinct unitaries of each
//! T-count instead of the raw (exponentially redundant) H/T strings
//! Fowler describes. The search result is the same: the best
//! approximation at each sequence length.
//!
//! It also provides the analysis of the paper's Fig 6 *cascade*
//! construction (exact pi/2^k gates built recursively from pi/2^i
//! ancilla factories), including the expected critical-path CX/X
//! counts quoted in §4.4.2.
//!
//! # Example
//!
//! ```
//! use qods_synth::search::Synthesizer;
//!
//! let synth = Synthesizer::with_max_t_count(10);
//! let seq = synth.rz_pi_over_2k(4, false); // approximate Rz(pi/16)
//! assert!(seq.t_count <= 10);
//! assert!(seq.distance < 0.3); // coarse at this tiny budget
//! ```

pub mod c64;
pub mod cascade;
pub mod clifford;
pub mod ma;
pub mod search;
pub mod simplify;
pub mod su2;

pub use cascade::CascadeAnalysis;
pub use search::{HtGate, Sequence, Synthesizer};
pub use su2::U2;
