//! Peephole simplification of H/S/T sequences.
//!
//! The exhaustive search emits normal-form sequences whose trailing
//! Clifford words can create local redundancies when sequences are
//! concatenated inside a larger circuit (e.g. a QFT lowering two
//! adjacent rotations on the same qubit). This pass cancels and fuses:
//!
//! * `H H -> (nothing)`
//! * `T T -> S`, `S S -> Z -> (tracked as S S S S -> nothing)`
//! * `S T -> T S` is *not* applied (they commute as diagonal gates;
//!   fusion handles it): adjacent diagonal gates fuse by phase count.
//!
//! Diagonal bookkeeping: T = 1 eighth-turn, S = 2, Z = 4 (mod 8).

use crate::search::HtGate;

/// Simplifies a gate sequence, returning an equivalent one (up to
/// global phase) with no adjacent `H H` and all runs of diagonal gates
/// fused to a minimal `Z?/S?/T?` tail.
pub fn simplify(gates: &[HtGate]) -> Vec<HtGate> {
    // First fuse diagonal runs and cancel HH, iterating to fixpoint.
    let mut cur: Vec<HtGate> = gates.to_vec();
    loop {
        let next = one_pass(&cur);
        if next.len() == cur.len() {
            return next;
        }
        cur = next;
    }
}

fn one_pass(gates: &[HtGate]) -> Vec<HtGate> {
    let mut out: Vec<HtGate> = Vec::with_capacity(gates.len());
    let mut eighths: u32 = 0; // pending diagonal phase (mod 8)

    let flush = |out: &mut Vec<HtGate>, eighths: &mut u32| {
        let e = *eighths % 8;
        // Emit minimal realization of diag(1, e^{i pi e / 4}).
        // 4 -> Z is not in the alphabet; use S S (cost 2, still
        // transversal). 1..3, 5..7 decompose greedily into S (2) and
        // T (1) steps; 7 = S S S T (e^{i7pi/4} = Z S T up to phase) —
        // greedy is fine for a peephole pass.
        let mut rem = e;
        while rem >= 2 {
            out.push(HtGate::S);
            rem -= 2;
        }
        if rem == 1 {
            out.push(HtGate::T);
        }
        *eighths = 0;
    };

    for &g in gates {
        match g {
            HtGate::T => eighths += 1,
            HtGate::S => eighths += 2,
            HtGate::H => {
                flush(&mut out, &mut eighths);
                if out.last() == Some(&HtGate::H) {
                    out.pop(); // H H cancels
                } else {
                    out.push(HtGate::H);
                }
            }
        }
    }
    flush(&mut out, &mut eighths);
    out
}

/// T-count of a sequence (the fault-tolerance cost metric).
pub fn t_count(gates: &[HtGate]) -> usize {
    gates.iter().filter(|g| matches!(g, HtGate::T)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su2::U2;

    fn matrix(gates: &[HtGate]) -> U2 {
        let mut m = U2::identity();
        for g in gates {
            let u = match g {
                HtGate::H => U2::h(),
                HtGate::S => U2::s(),
                HtGate::T => U2::t(),
            };
            m = u.mul(&m);
        }
        m
    }

    #[test]
    fn hh_cancels() {
        assert!(simplify(&[HtGate::H, HtGate::H]).is_empty());
    }

    #[test]
    fn tt_fuses_to_s() {
        assert_eq!(simplify(&[HtGate::T, HtGate::T]), vec![HtGate::S]);
    }

    #[test]
    fn full_turn_vanishes() {
        // 8 T gates = identity up to phase.
        assert!(simplify(&[HtGate::T; 8]).is_empty());
    }

    #[test]
    fn preserves_unitary_on_random_words() {
        // Deterministic pseudo-random words; semantic equality checked
        // against the 2x2 matrices.
        let mut x = 0x243f6a8885a308d3u64;
        for _ in 0..200 {
            let mut word = Vec::new();
            for _ in 0..12 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                word.push(match x % 3 {
                    0 => HtGate::H,
                    1 => HtGate::S,
                    _ => HtGate::T,
                });
            }
            let simp = simplify(&word);
            assert!(
                matrix(&word).distance(&matrix(&simp)) < 1e-9,
                "simplification changed semantics of {word:?} -> {simp:?}"
            );
            assert!(simp.len() <= word.len());
            assert!(t_count(&simp) <= t_count(&word));
        }
    }

    #[test]
    fn idempotent() {
        let word = [
            HtGate::H,
            HtGate::T,
            HtGate::T,
            HtGate::H,
            HtGate::H,
            HtGate::S,
        ];
        let once = simplify(&word);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }
}
