//! A minimal complex-number type.
//!
//! Hand-rolled (about forty lines) instead of pulling in `num-complex`,
//! which is outside the approved offline dependency set; see DESIGN.md.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// `re + i*im`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// Scalar multiple.
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert!((C64::cis(std::f64::consts::PI).re + 1.0).abs() < 1e-15);
        assert!((a.abs2() - 5.0).abs() < 1e-15);
    }
}
