//! Enumeration of Clifford+T unitaries in Matsumoto-Amano order.
//!
//! Every single-qubit Clifford+T operator has a unique normal form
//! `(T | eps) (HT | SHT)* C` (matrix product, rightmost factor applied
//! first), with `C` a Clifford. Enumerating these forms visits each
//! distinct unitary of T-count `t` exactly once — about `3 * 2^(t-1)`
//! non-Clifford cores per T-count — which is what makes Fowler-style
//! exhaustive search tractable at useful depths.

use crate::su2::U2;

/// A visited core: its matrix and the path that built it.
#[derive(Debug, Clone)]
pub struct Core {
    /// Product of the T/HT/SHT factors (no trailing Clifford).
    pub matrix: U2,
    /// True when the form starts with a lone `T` factor.
    pub leading_t: bool,
    /// Syllable choices left-to-right: `false` = HT, `true` = SHT.
    pub syllables: Vec<bool>,
    /// Number of T gates in the core.
    pub t_count: u32,
}

impl Core {
    /// The circuit-order gate names realizing this core, *excluding*
    /// the trailing Clifford. Matrix factors apply right-to-left, so
    /// the circuit order is the reverse of the factor order.
    pub fn circuit_gates(&self) -> Vec<crate::search::HtGate> {
        use crate::search::HtGate;
        // Matrix = [T?] * syl_1 * syl_2 * ... * syl_m, where each
        // syllable is H*T or S*H*T. Circuit order: syl_m first
        // (its T first), then ..., then the leading T last.
        let mut gates = Vec::new();
        for &s in self.syllables.iter().rev() {
            gates.push(HtGate::T);
            gates.push(HtGate::H);
            if s {
                gates.push(HtGate::S);
            }
        }
        if self.leading_t {
            gates.push(HtGate::T);
        }
        gates
    }
}

/// Depth-first enumeration of all cores with `t_count <= max_t`,
/// invoking `visit` on each (including the identity core). The `prune`
/// callback is consulted before descending: returning `false` for a
/// prospective child T-count skips that subtree (used to stop once a
/// satisfactory shorter sequence is known).
pub fn enumerate_cores(
    max_t: u32,
    mut visit: impl FnMut(&Core),
    mut prune: impl FnMut(u32) -> bool,
) {
    // Identity core (pure Clifford).
    let id = Core {
        matrix: U2::identity(),
        leading_t: false,
        syllables: Vec::new(),
        t_count: 0,
    };
    visit(&id);
    if max_t == 0 {
        return;
    }

    let t = U2::t();
    let ht = U2::h().mul(&t);
    let sht = U2::s().mul(&ht);

    // Two DFS roots: leading T, and a first syllable (HT or SHT).
    let mut stack: Vec<Core> = Vec::new();
    if prune(1) {
        stack.push(Core {
            matrix: t,
            leading_t: true,
            syllables: Vec::new(),
            t_count: 1,
        });
        stack.push(Core {
            matrix: ht,
            leading_t: false,
            syllables: vec![false],
            t_count: 1,
        });
        stack.push(Core {
            matrix: sht,
            leading_t: false,
            syllables: vec![true],
            t_count: 1,
        });
    }
    while let Some(core) = stack.pop() {
        visit(&core);
        let next_t = core.t_count + 1;
        if next_t <= max_t && prune(next_t) {
            for (m, s) in [(&ht, false), (&sht, true)] {
                let mut syl = core.syllables.clone();
                syl.push(s);
                stack.push(Core {
                    matrix: core.matrix.mul(m),
                    leading_t: core.leading_t,
                    syllables: syl,
                    t_count: next_t,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::HtGate;
    use std::collections::HashSet;

    #[test]
    fn core_counts_match_normal_form_theory() {
        // Cores with t_count = t: 3 * 2^(t-1) for t >= 1, plus the
        // identity at t = 0.
        let mut by_t = std::collections::HashMap::new();
        enumerate_cores(6, |c| *by_t.entry(c.t_count).or_insert(0u64) += 1, |_| true);
        assert_eq!(by_t[&0], 1);
        for t in 1..=6u32 {
            assert_eq!(by_t[&t], 3 * (1 << (t - 1)), "t = {t}");
        }
    }

    #[test]
    fn cores_are_distinct_unitaries() {
        // The normal form is unique, so all core matrices (even before
        // the trailing Clifford) must be pairwise distinct up to phase.
        let mut keys = HashSet::new();
        let mut dup = 0;
        enumerate_cores(
            7,
            |c| {
                if !keys.insert(c.matrix.phase_key()) {
                    dup += 1;
                }
            },
            |_| true,
        );
        assert_eq!(dup, 0, "duplicate cores found");
    }

    #[test]
    fn circuit_gates_realize_core_matrices() {
        enumerate_cores(
            5,
            |c| {
                let mut m = U2::identity();
                for g in c.circuit_gates() {
                    let u = match g {
                        HtGate::H => U2::h(),
                        HtGate::S => U2::s(),
                        HtGate::T => U2::t(),
                    };
                    m = u.mul(&m);
                }
                assert!(
                    m.distance(&c.matrix) < 1e-9,
                    "core gates do not rebuild matrix (t={})",
                    c.t_count
                );
            },
            |_| true,
        );
    }

    #[test]
    fn pruning_cuts_subtrees() {
        let mut visited = 0u64;
        enumerate_cores(8, |_| visited += 1, |t| t <= 3);
        // 1 + 3 + 6 + 12 = 22 cores with t <= 3.
        assert_eq!(visited, 22);
    }
}
