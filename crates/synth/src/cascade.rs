//! The recursive exact pi/2^k construction of Fig 6 and its §4.4.2
//! critical-path analysis.
//!
//! If physical pi/2^k rotations are available, an exact fault-tolerant
//! pi/2^k gate can be built from a cascade of pi/2^i ancilla factories
//! (i = 3..k) with k-2 CX and X gates: each stage teleports the
//! rotation onto the data; the measurement picks the "correct" branch
//! with probability 1/2, and the "wrong" branch needs a larger
//! follow-up rotation from the next factory in the cascade. The
//! expected number of CX gates on the data's critical path is therefore
//! `sum_{i=0}^{k-3} 2^-i` (< 2), with one fewer X gate — the paper
//! states this sum (with a typo'd exponent) in §4.4.2.
//!
//! The paper is deliberately conservative and does *not* assume such
//! physical rotations exist; this module quantifies what they would buy
//! relative to synthesized H/T sequences.

use crate::search::Sequence;
use qods_phys::latency::LatencyTable;

/// Critical-path analysis of one cascade gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeAnalysis {
    /// The target rotation exponent (pi/2^k).
    pub k: u8,
    /// Number of pi/2^i ancilla factories required (i = 3..=k).
    pub factories: u32,
    /// Expected CX gates on the data critical path.
    pub expected_cx: f64,
    /// Expected conditional X gates on the data critical path.
    pub expected_x: f64,
    /// Worst-case CX count (every measurement lands "wrong").
    pub worst_cx: u32,
}

impl CascadeAnalysis {
    /// Expected data-path latency of the cascade under a latency
    /// table: CX interactions, measurements (one per consumed
    /// ancilla), and conditional X corrections.
    pub fn expected_latency_us(&self, t: &LatencyTable) -> f64 {
        self.expected_cx * (t.t_2q + t.t_meas) + self.expected_x * t.t_1q
    }
}

/// Analyzes the Fig 6 cascade for a pi/2^k target.
///
/// # Panics
///
/// Panics for `k < 3` (pi/2^2 = T has its own gadget; larger angles
/// are transversal).
pub fn analyze_cascade(k: u8) -> CascadeAnalysis {
    assert!(
        k >= 3,
        "cascades start at pi/8 precision (k >= 3), got k = {k}"
    );
    let stages = u32::from(k) - 2;
    // Stage i (0-indexed) is reached with probability 2^-i.
    let expected_cx: f64 = (0..stages).map(|i| 0.5f64.powi(i as i32)).sum();
    CascadeAnalysis {
        k,
        factories: stages,
        expected_cx,
        expected_x: expected_cx - 1.0 + 0.5f64.powi(stages as i32 - 1) * 0.5,
        worst_cx: stages,
    }
}

/// Compares the cascade's expected data-path latency against a
/// synthesized sequence's (T gates pay the pi/8-gadget interaction,
/// Cliffords are transversal). Returns (cascade_us, synthesis_us).
pub fn compare_with_synthesis(k: u8, seq: &Sequence, t: &LatencyTable) -> (f64, f64) {
    let cascade = analyze_cascade(k).expected_latency_us(t);
    let pi8_interact = t.t_2q + t.t_meas + t.t_1q;
    let mut synth_us = 0.0;
    for g in &seq.gates {
        synth_us += match g {
            crate::search::HtGate::T => pi8_interact,
            _ => t.t_1q,
        };
    }
    (cascade, synth_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_cx_approaches_two() {
        // sum 2^-i over i=0.. -> 2; finite cascades stay below.
        for k in 3..=16u8 {
            let a = analyze_cascade(k);
            assert!(a.expected_cx < 2.0);
            assert!(a.expected_cx >= 1.0);
            assert_eq!(a.factories, u32::from(k) - 2);
            assert_eq!(a.worst_cx, u32::from(k) - 2);
        }
        assert!((analyze_cascade(3).expected_cx - 1.0).abs() < 1e-12);
        assert!((analyze_cascade(4).expected_cx - 1.5).abs() < 1e-12);
        let deep = analyze_cascade(16);
        assert!((deep.expected_cx - 2.0).abs() < 1e-3);
    }

    #[test]
    fn latency_grows_slowly_with_k() {
        let t = LatencyTable::ion_trap();
        let l3 = analyze_cascade(3).expected_latency_us(&t);
        let l10 = analyze_cascade(10).expected_latency_us(&t);
        assert!(l10 < 2.0 * l3 + 1.0, "cascade latency must stay bounded");
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn shallow_k_rejected() {
        let _ = analyze_cascade(2);
    }

    #[test]
    fn cascade_beats_long_synthesis() {
        // A synthesized sequence with several T gates pays the pi/8
        // gadget per T; the cascade pays ~2 CX+measure rounds total.
        use crate::search::{HtGate, Sequence};
        let seq = Sequence {
            gates: vec![
                HtGate::H,
                HtGate::T,
                HtGate::H,
                HtGate::T,
                HtGate::H,
                HtGate::T,
            ],
            t_count: 3,
            distance: 0.01,
        };
        let t = LatencyTable::ion_trap();
        let (cascade, synth) = compare_with_synthesis(6, &seq, &t);
        assert!(cascade < synth, "cascade {cascade} !< synthesis {synth}");
    }
}
