//! Fowler-style exhaustive search for minimum-length H/S/T sequences
//! approximating small-angle phase rotations (§2.5).

use crate::clifford::CliffordGroup;
use crate::ma::{enumerate_cores, Core};
use crate::su2::U2;
use std::f64::consts::PI;

/// The physical single-qubit alphabet of synthesized sequences.
///
/// `S` is transversal on the [[7,1,3]] code and `T` consumes a pi/8
/// ancilla, so sequence cost is dominated by the T-count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HtGate {
    /// Hadamard.
    H,
    /// Phase gate.
    S,
    /// pi/8 gate.
    T,
}

/// A synthesized approximation.
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Gates in circuit order.
    pub gates: Vec<HtGate>,
    /// Number of T gates (the fault-tolerance cost driver).
    pub t_count: u32,
    /// Global-phase-invariant distance to the target.
    pub distance: f64,
}

impl Sequence {
    /// Total gate count.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True for the empty sequence (target approximated by identity).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Rebuilds the sequence's unitary (for verification).
    pub fn matrix(&self) -> U2 {
        let mut m = U2::identity();
        for g in &self.gates {
            let u = match g {
                HtGate::H => U2::h(),
                HtGate::S => U2::s(),
                HtGate::T => U2::t(),
            };
            m = u.mul(&m);
        }
        m
    }
}

/// Exhaustive Clifford+T synthesizer with a T-count budget.
///
/// # Example
///
/// ```
/// use qods_synth::search::Synthesizer;
/// use qods_synth::su2::U2;
///
/// let synth = Synthesizer::with_max_t_count(8);
/// let seq = synth.approximate(&U2::t());
/// // T itself is in the search space: exact hit with one T.
/// assert_eq!(seq.t_count, 1);
/// assert!(seq.distance < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    max_t: u32,
    target_distance: f64,
    cliffords: CliffordGroup,
}

impl Synthesizer {
    /// Default budget: T-count <= 14, stop early below distance 1e-4.
    ///
    /// At this budget typical pi/2^k targets reach distances of a few
    /// times 1e-2 to 1e-3 (the paper's [14] reports comparable
    /// accuracy at comparable sequence lengths).
    pub fn new() -> Self {
        Self::with_budget(14, 1e-4)
    }

    /// Budget with a custom maximum T-count.
    pub fn with_max_t_count(max_t: u32) -> Self {
        Self::with_budget(max_t, 1e-4)
    }

    /// Full budget control: search stops descending a branch once a
    /// sequence within `target_distance` at a lower T-count is known.
    pub fn with_budget(max_t: u32, target_distance: f64) -> Self {
        Synthesizer {
            max_t,
            target_distance,
            cliffords: CliffordGroup::generate(),
        }
    }

    /// The configured T-count budget.
    pub fn max_t_count(&self) -> u32 {
        self.max_t
    }

    /// Finds the best approximation of `target` within the budget.
    ///
    /// Preference order: satisfying `target_distance` at the smallest
    /// T-count; otherwise the smallest distance found overall (ties to
    /// lower T-count).
    pub fn approximate(&self, target: &U2) -> Sequence {
        struct Best {
            dist: f64,
            t: u32,
            core: Core,
            cliff: usize,
        }
        let mut best: Option<Best> = None;
        // Smallest T-count achieving the target distance, shared
        // between the visitor (writes) and the pruner (reads).
        let sat_t = std::cell::Cell::new(u32::MAX);
        let eps = self.target_distance;

        let cliffs = self.cliffords.elements();
        enumerate_cores(
            self.max_t,
            |core| {
                for (ci, c) in cliffs.iter().enumerate() {
                    let u = core.matrix.mul(&c.matrix);
                    let d = u.distance(target);
                    let better = match &best {
                        None => true,
                        Some(b) => d + 1e-15 < b.dist || (d < b.dist + 1e-15 && core.t_count < b.t),
                    };
                    if better {
                        best = Some(Best {
                            dist: d,
                            t: core.t_count,
                            core: core.clone(),
                            cliff: ci,
                        });
                        if d <= eps {
                            sat_t.set(sat_t.get().min(core.t_count));
                        }
                    }
                }
            },
            |t| t < sat_t.get(),
        );

        let b = best.expect("search space is never empty");
        // Circuit order: core gates first, then the Clifford word.
        // (Matrix = core * C means C is applied first; but the trailing
        // Clifford in MA form is on the right, i.e. applied first in
        // circuit order.)
        let mut gates = cliffs[b.cliff].word.clone();
        gates.extend(b.core.circuit_gates());
        Sequence {
            gates,
            t_count: b.t,
            distance: b.dist,
        }
    }

    /// Approximates `diag(1, e^{±i pi/2^k})` (the paper's pi/2^k
    /// rotation; `k = 2` is T itself and returns a length-1 sequence).
    pub fn rz_pi_over_2k(&self, k: u8, dagger: bool) -> Sequence {
        let theta = PI / 2f64.powi(i32::from(k)) * if dagger { -1.0 } else { 1.0 };
        self.approximate(&U2::phase(theta))
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hits_for_native_gates() {
        let synth = Synthesizer::with_max_t_count(4);
        for (target, expect_t) in [
            (U2::identity(), 0),
            (U2::s(), 0),
            (U2::z(), 0),
            (U2::h(), 0),
            (U2::t(), 1),
        ] {
            let seq = synth.approximate(&target);
            assert!(seq.distance < 1e-9, "distance {}", seq.distance);
            assert_eq!(seq.t_count, expect_t);
            assert!(seq.matrix().distance(&target) < 1e-9);
        }
    }

    #[test]
    fn sequences_realize_their_reported_distance() {
        let synth = Synthesizer::with_max_t_count(8);
        for k in 3..=6u8 {
            let seq = synth.rz_pi_over_2k(k, false);
            let target = U2::phase(PI / f64::from(1u32 << k));
            let d = seq.matrix().distance(&target);
            assert!(
                (d - seq.distance).abs() < 1e-9,
                "k={k}: reported {} actual {d}",
                seq.distance
            );
        }
    }

    #[test]
    fn deeper_budget_never_hurts() {
        let coarse = Synthesizer::with_budget(4, 0.0);
        let fine = Synthesizer::with_budget(10, 0.0);
        for k in 3..=5u8 {
            let a = coarse.rz_pi_over_2k(k, false);
            let b = fine.rz_pi_over_2k(k, false);
            assert!(
                b.distance <= a.distance + 1e-12,
                "k={k}: {} vs {}",
                b.distance,
                a.distance
            );
        }
    }

    #[test]
    fn tiny_angles_are_near_identity() {
        // For very deep k the identity is already a good approximation
        // and the search should not spend T gates on it.
        let synth = Synthesizer::with_budget(8, 1e-3);
        let seq = synth.rz_pi_over_2k(14, false);
        assert_eq!(seq.t_count, 0);
        assert!(seq.distance < 1e-3);
    }

    #[test]
    fn dagger_mirrors_distance() {
        let synth = Synthesizer::with_max_t_count(6);
        let a = synth.rz_pi_over_2k(3, false);
        let b = synth.rz_pi_over_2k(3, true);
        assert!((a.distance - b.distance).abs() < 1e-9);
    }
}
