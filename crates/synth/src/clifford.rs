//! The 24 single-qubit Clifford gates, generated as shortest words in
//! {H, S} and deduplicated up to global phase.

use crate::search::HtGate;
use crate::su2::U2;
use std::collections::HashMap;

/// One Clifford element: its matrix and a shortest {H,S} word.
#[derive(Debug, Clone)]
pub struct CliffordElement {
    /// The unitary (up to global phase).
    pub matrix: U2,
    /// A shortest realizing word over {H, S}.
    pub word: Vec<HtGate>,
}

/// The full single-qubit Clifford group (24 elements mod phase).
#[derive(Debug, Clone)]
pub struct CliffordGroup {
    elements: Vec<CliffordElement>,
}

impl CliffordGroup {
    /// Generates the group by breadth-first search over {H, S} words.
    pub fn generate() -> Self {
        let gens = [(U2::h(), HtGate::H), (U2::s(), HtGate::S)];
        let mut seen: HashMap<[i64; 8], usize> = HashMap::new();
        let mut elements = vec![CliffordElement {
            matrix: U2::identity(),
            word: Vec::new(),
        }];
        seen.insert(U2::identity().phase_key(), 0);
        let mut frontier = std::collections::VecDeque::from([0usize]);
        while let Some(idx) = frontier.pop_front() {
            let base = elements[idx].clone();
            for (g, name) in &gens {
                // Append the gate in circuit order: new = base then g,
                // i.e. matrix = g * base.
                let m = g.mul(&base.matrix);
                let key = m.phase_key();
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                    let mut word = base.word.clone();
                    word.push(*name);
                    e.insert(elements.len());
                    frontier.push_back(elements.len());
                    elements.push(CliffordElement { matrix: m, word });
                }
            }
        }
        CliffordGroup { elements }
    }

    /// The elements (24 of them).
    pub fn elements(&self) -> &[CliffordElement] {
        &self.elements
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the group is empty (never true after `generate`).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

impl Default for CliffordGroup {
    fn default() -> Self {
        CliffordGroup::generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_24_elements() {
        let g = CliffordGroup::generate();
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn words_realize_their_matrices() {
        let g = CliffordGroup::generate();
        for e in g.elements() {
            let mut m = U2::identity();
            for gate in &e.word {
                let u = match gate {
                    HtGate::H => U2::h(),
                    HtGate::S => U2::s(),
                    HtGate::T => unreachable!("Clifford words are over H,S"),
                };
                m = u.mul(&m);
            }
            assert!(
                m.distance(&e.matrix) < 1e-9,
                "word {:?} does not realize its matrix",
                e.word
            );
        }
    }

    #[test]
    fn contains_the_paulis() {
        let g = CliffordGroup::generate();
        for target in [U2::x(), U2::z(), U2::identity()] {
            assert!(
                g.elements()
                    .iter()
                    .any(|e| e.matrix.distance(&target) < 1e-9),
                "missing a Pauli"
            );
        }
    }

    #[test]
    fn words_are_short() {
        let g = CliffordGroup::generate();
        // Diameter of the Clifford group under {H,S} is small.
        assert!(g.elements().iter().all(|e| e.word.len() <= 7));
    }
}
