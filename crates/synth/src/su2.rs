//! 2x2 unitaries and the global-phase-invariant distance used by the
//! synthesis search.

use crate::c64::C64;
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// A 2x2 complex matrix (assumed unitary by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct U2 {
    /// Row 0, column 0.
    pub a: C64,
    /// Row 0, column 1.
    pub b: C64,
    /// Row 1, column 0.
    pub c: C64,
    /// Row 1, column 1.
    pub d: C64,
}

impl U2 {
    /// The identity.
    pub fn identity() -> Self {
        U2 {
            a: C64::ONE,
            b: C64::ZERO,
            c: C64::ZERO,
            d: C64::ONE,
        }
    }

    /// Hadamard.
    pub fn h() -> Self {
        let s = C64::new(FRAC_1_SQRT_2, 0.0);
        U2 {
            a: s,
            b: s,
            c: s,
            d: -s,
        }
    }

    /// Phase gate S = diag(1, i).
    pub fn s() -> Self {
        U2 {
            a: C64::ONE,
            b: C64::ZERO,
            c: C64::ZERO,
            d: C64::new(0.0, 1.0),
        }
    }

    /// pi/8 gate T = diag(1, e^{i pi/4}).
    pub fn t() -> Self {
        U2 {
            a: C64::ONE,
            b: C64::ZERO,
            c: C64::ZERO,
            d: C64::cis(PI / 4.0),
        }
    }

    /// Pauli X.
    pub fn x() -> Self {
        U2 {
            a: C64::ZERO,
            b: C64::ONE,
            c: C64::ONE,
            d: C64::ZERO,
        }
    }

    /// Pauli Z.
    pub fn z() -> Self {
        U2 {
            a: C64::ONE,
            b: C64::ZERO,
            c: C64::ZERO,
            d: -C64::ONE,
        }
    }

    /// The phase rotation diag(1, e^{i theta}).
    pub fn phase(theta: f64) -> Self {
        U2 {
            a: C64::ONE,
            b: C64::ZERO,
            c: C64::ZERO,
            d: C64::cis(theta),
        }
    }

    /// Matrix product `self * rhs` (apply `rhs` first).
    pub fn mul(&self, rhs: &U2) -> U2 {
        U2 {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> U2 {
        U2 {
            a: self.a.conj(),
            b: self.c.conj(),
            c: self.b.conj(),
            d: self.d.conj(),
        }
    }

    /// Global-phase-invariant distance:
    /// `d(U, V) = sqrt(1 - |tr(U^dag V)| / 2)`, in [0, 1].
    ///
    /// This is the metric of Fowler's search (zero iff U = V up to
    /// global phase; sub-additive under composition).
    pub fn distance(&self, other: &U2) -> f64 {
        let p = self.dagger().mul(other);
        let tr = p.a + p.d;
        (1.0 - (tr.abs() / 2.0).min(1.0)).max(0.0).sqrt()
    }

    /// A canonical quantized key identifying the matrix up to global
    /// phase (used to deduplicate Clifford words).
    pub fn phase_key(&self) -> [i64; 8] {
        // Normalize by the phase of the largest entry.
        let entries = [self.a, self.b, self.c, self.d];
        let pivot = entries
            .iter()
            .copied()
            .max_by(|x, y| x.abs2().partial_cmp(&y.abs2()).expect("finite"))
            .expect("four entries");
        let inv_phase = pivot.conj().scale(1.0 / pivot.abs());
        let mut key = [0i64; 8];
        for (i, e) in entries.iter().enumerate() {
            let n = *e * inv_phase;
            key[2 * i] = (n.re * 1e9).round() as i64;
            key[2 * i + 1] = (n.im * 1e9).round() as i64;
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_squared_is_identity() {
        let hh = U2::h().mul(&U2::h());
        assert!(hh.distance(&U2::identity()) < 1e-12);
    }

    #[test]
    fn t_squared_is_s() {
        let tt = U2::t().mul(&U2::t());
        assert!(tt.distance(&U2::s()) < 1e-12);
    }

    #[test]
    fn s_squared_is_z() {
        let ss = U2::s().mul(&U2::s());
        assert!(ss.distance(&U2::z()) < 1e-12);
    }

    #[test]
    fn distance_is_phase_invariant() {
        let u = U2::h();
        let phased = U2 {
            a: u.a * C64::cis(1.234),
            b: u.b * C64::cis(1.234),
            c: u.c * C64::cis(1.234),
            d: u.d * C64::cis(1.234),
        };
        assert!(u.distance(&phased) < 1e-12);
    }

    #[test]
    fn distance_separates_distinct_gates() {
        assert!(U2::h().distance(&U2::t()) > 0.1);
        assert!(U2::s().distance(&U2::t()) > 0.1);
    }

    #[test]
    fn phase_key_identifies_up_to_phase() {
        let u = U2::h().mul(&U2::s());
        let phased = U2 {
            a: u.a * C64::cis(-0.7),
            b: u.b * C64::cis(-0.7),
            c: u.c * C64::cis(-0.7),
            d: u.d * C64::cis(-0.7),
        };
        assert_eq!(u.phase_key(), phased.phase_key());
        assert_ne!(u.phase_key(), U2::h().phase_key());
    }

    #[test]
    fn hthth_matches_explicit_product() {
        let m = U2::h().mul(&U2::t()).mul(&U2::h());
        // H T H is a rotation; check unitarity via U U^dag = I.
        let prod = m.mul(&m.dagger());
        assert!(prod.distance(&U2::identity()) < 1e-12);
    }
}
