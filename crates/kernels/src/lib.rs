//! # qods-kernels — the paper's benchmark circuits (§3.1)
//!
//! Three kernels, all core subroutines of Shor-class algorithms:
//!
//! * [`qrca`] — the n-bit quantum ripple-carry adder (VBE form: two
//!   n-bit inputs plus n+1 carry ancillae, 3n+1 = 97 encoded qubits at
//!   n = 32, matching the paper's 679-macroblock data region);
//! * [`qcla`] — the Draper-Kutin-Rains-Svore out-of-place
//!   carry-lookahead adder (123 encoded qubits at n = 32, log depth);
//! * [`qft`] — the quantum Fourier transform, with controlled
//!   rotations decomposed per §2.5 and small-angle rotations
//!   synthesized by `qods-synth`;
//! * [`draper`] — Draper's ancilla-free QFT adder (the paper's [18]),
//!   an extension kernel contrasting carry chains against rotation
//!   depth.
//!
//! Builders return *kernel-level* IR (Toffolis, controlled rotations);
//! `*_lowered` variants produce the physical Clifford+T circuits the
//! characterization machinery consumes. Adders are verified against
//! classical addition with the permutation simulator; the QFT against
//! the DFT matrix with the statevector simulator.
//!
//! Every builder is parameterized by operand width; the [`family`]
//! module packages them as typed [`KernelSpec`] values (`family` x
//! `width`, with typed errors for bad input) — the unit the
//! `qods-compile` pipeline content-addresses its artifacts by.
//!
//! # Example
//!
//! ```
//! use qods_kernels::{qrca, verify_adder};
//!
//! let adder = qrca(4);
//! assert_eq!(adder.n_qubits(), 13); // 3n + 1
//! verify_adder(&adder, 4, 11, 6).expect("11 + 6 = 17");
//! ```

pub mod ctrl_add;
pub mod draper;
pub mod family;
pub mod qcla;
pub mod qft;
pub mod qrca;
pub mod synth_adapter;

pub use ctrl_add::{controlled_adder, controlled_adder_lowered};
pub use draper::{draper_adder, draper_adder_lowered};
pub use family::{KernelError, KernelFamily, KernelSpec, MAX_WIDTH};
pub use qcla::{qcla, qcla_lowered};
pub use qft::{qft, qft_lowered};
pub use qrca::{qrca, qrca_lowered};
pub use synth_adapter::SynthAdapter;

use qods_circuit::circuit::Circuit;
use qods_circuit::sim::permutation;

/// Checks that an (un-lowered) adder circuit maps inputs `(a, b)` to
/// the sum in the adder's output register.
///
/// Works for both kernels: register layout is queried from the circuit
/// name ("QRCA"/"QCLA" prefix set by the builders).
///
/// # Errors
///
/// Returns a message describing the first mismatch.
pub fn verify_adder(circuit: &Circuit, n: usize, a: u64, b: u64) -> Result<(), String> {
    assert!(n < 60, "operand width too large for the test harness");
    let mask = (1u128 << n) - 1;
    let a = u128::from(a) & mask;
    let b = u128::from(b) & mask;
    let expected = a + b;

    let is_qrca = circuit.name.starts_with("QRCA");
    // Input packing: QRCA: a at bits [0,n), b at [n,2n), carries zero.
    //                QCLA: same input packing; z and ancillae zero.
    let input = a | (b << n);
    let out = permutation::apply(circuit, input);

    if is_qrca {
        // b register holds the low n sum bits; c[n] the carry-out.
        let sum_lo = (out >> n) & mask;
        let carry_out = out >> (3 * n) & 1;
        let got = sum_lo | (carry_out << n);
        if got != expected {
            return Err(format!("QRCA {a}+{b}: got {got}, want {expected}"));
        }
        // a unchanged; carry ancillae c[0..n] restored.
        if out & mask != a {
            return Err(format!("QRCA {a}+{b}: input register a corrupted"));
        }
        let carries = (out >> (2 * n)) & mask;
        if carries != 0 {
            return Err(format!("QRCA {a}+{b}: carry ancillae not restored"));
        }
    } else {
        // z register at [2n, 3n+1) holds the full n+1-bit sum.
        let z_mask = (1u128 << (n + 1)) - 1;
        let got = (out >> (2 * n)) & z_mask;
        if got != expected {
            return Err(format!("QCLA {a}+{b}: got {got}, want {expected}"));
        }
        // inputs restored.
        if out & mask != a || (out >> n) & mask != b {
            return Err(format!("QCLA {a}+{b}: input registers corrupted"));
        }
        // P-tree ancillae restored to zero.
        if out >> (3 * n + 1) != 0 {
            return Err(format!("QCLA {a}+{b}: ancillae not restored"));
        }
    }
    Ok(())
}
