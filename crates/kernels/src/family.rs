//! Parameterized kernel families: every benchmark circuit of the
//! repository as a `(family, width)` pair, buildable at *arbitrary*
//! operand widths — not just the paper's fixed points.
//!
//! [`KernelFamily`] enumerates the five families; [`KernelSpec`] is
//! the typed, serializable "which circuit" value the compilation
//! pipeline (`qods-compile`) content-addresses its artifacts by.
//! Construction is fallible with typed [`KernelError`]s so bad CLI or
//! service input (`repro --kernel qrcaa:32`, width 0, width beyond
//! [`MAX_WIDTH`]) reports a clean message instead of panicking.

use crate::synth_adapter::SynthAdapter;
use crate::{controlled_adder, draper_adder, qcla, qft, qrca};
use qods_circuit::circuit::{Circuit, NoSynth};
use serde::{Deserialize, Serialize};

/// Largest accepted operand width. Every family builds correctly at
/// any positive width; the cap bounds the cost a single (possibly
/// hostile) service request can demand — a 128-bit QFT already lowers
/// to hundreds of thousands of physical gates.
pub const MAX_WIDTH: usize = 128;

/// A benchmark kernel family (§3.1 plus the repository's extension
/// kernels), parameterized by operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelFamily {
    /// VBE ripple-carry adder (3n+1 qubits).
    Qrca,
    /// Draper-Kutin-Rains-Svore carry-lookahead adder (log depth).
    Qcla,
    /// Quantum Fourier transform (synthesized rotations).
    Qft,
    /// Draper's ancilla-free QFT adder (2n qubits).
    Draper,
    /// Controlled ripple-carry adder (modular-exponentiation block).
    CtrlAdd,
}

impl KernelFamily {
    /// Every family, in presentation order (the paper's three first).
    pub const ALL: [KernelFamily; 5] = [
        KernelFamily::Qrca,
        KernelFamily::Qcla,
        KernelFamily::Qft,
        KernelFamily::Draper,
        KernelFamily::CtrlAdd,
    ];

    /// The stable lowercase id used on the command line and in
    /// artifact keys (`qrca`, `qcla`, `qft`, `draper`, `ctrladd`).
    pub fn name(&self) -> &'static str {
        match self {
            KernelFamily::Qrca => "qrca",
            KernelFamily::Qcla => "qcla",
            KernelFamily::Qft => "qft",
            KernelFamily::Draper => "draper",
            KernelFamily::CtrlAdd => "ctrladd",
        }
    }

    /// Human-readable one-line description.
    pub fn title(&self) -> &'static str {
        match self {
            KernelFamily::Qrca => "quantum ripple-carry adder (VBE)",
            KernelFamily::Qcla => "quantum carry-lookahead adder (DKRS, out-of-place)",
            KernelFamily::Qft => "quantum Fourier transform",
            KernelFamily::Draper => "Draper QFT adder (ancilla-free)",
            KernelFamily::CtrlAdd => "controlled ripple-carry adder",
        }
    }

    /// Whether lowering this family needs rotation synthesis (and so
    /// whether compiled artifacts depend on the synthesis budget).
    pub fn uses_synthesis(&self) -> bool {
        matches!(self, KernelFamily::Qft | KernelFamily::Draper)
    }

    /// Encoded qubits a width-`n` member uses (data + data ancillae).
    pub fn n_qubits(&self, width: usize) -> usize {
        match self {
            KernelFamily::Qrca => 3 * width + 1,
            KernelFamily::Qcla => 3 * width + 1 + crate::qcla::p_tree_ancillae(width),
            KernelFamily::Qft => width,
            KernelFamily::Draper => 2 * width,
            KernelFamily::CtrlAdd => 3 * width + 2,
        }
    }

    /// Resolves a family id (as printed by [`KernelFamily::name`]).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownFamily`] when `name` matches no family.
    pub fn parse(name: &str) -> Result<Self, KernelError> {
        KernelFamily::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| KernelError::UnknownFamily {
                name: name.to_string(),
            })
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified kernel: one family at one operand width. The
/// unit of compilation — artifact keys, the width sweep, and the
/// `repro --kernel` flag all speak in specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Which family.
    pub family: KernelFamily,
    /// Operand width in bits (the paper's benchmarks use 32).
    pub width: usize,
}

impl KernelSpec {
    /// A validated spec.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvalidWidth`] outside `1..=MAX_WIDTH`.
    pub fn new(family: KernelFamily, width: usize) -> Result<Self, KernelError> {
        let spec = KernelSpec { family, width };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the width bound.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvalidWidth`] outside `1..=MAX_WIDTH`.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.width == 0 || self.width > MAX_WIDTH {
            return Err(KernelError::InvalidWidth {
                family: self.family,
                width: self.width,
            });
        }
        Ok(())
    }

    /// Parses the CLI form `family:width` (e.g. `qcla:48`).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSpec`] when the shape is not `family:width`,
    /// plus the [`KernelFamily::parse`] / [`KernelSpec::new`] errors.
    pub fn parse(input: &str) -> Result<Self, KernelError> {
        let (family, width) = input.split_once(':').ok_or_else(|| KernelError::BadSpec {
            input: input.to_string(),
        })?;
        let width: usize = width.parse().map_err(|_| KernelError::BadSpec {
            input: input.to_string(),
        })?;
        KernelSpec::new(KernelFamily::parse(family)?, width)
    }

    /// Encoded qubits this spec's circuit uses.
    pub fn n_qubits(&self) -> usize {
        self.family.n_qubits(self.width)
    }

    /// Builds the kernel-level IR circuit (Toffolis, controlled
    /// rotations).
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid — callers construct specs
    /// through the validating [`KernelSpec::new`] / [`KernelSpec::parse`].
    pub fn build_ir(&self) -> Circuit {
        // qods-lint: allow(P1) -- documented caller contract: specs come from the validating constructors
        self.validate().expect("spec validated at construction");
        match self.family {
            KernelFamily::Qrca => qrca(self.width),
            KernelFamily::Qcla => qcla(self.width),
            KernelFamily::Qft => qft(self.width),
            KernelFamily::Draper => draper_adder(self.width),
            KernelFamily::CtrlAdd => controlled_adder(self.width),
        }
    }

    /// Lowers the IR to the physical Clifford+T set; `synth` is only
    /// consulted for rotation families ([`KernelFamily::uses_synthesis`]).
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid (see [`KernelSpec::build_ir`]).
    pub fn build_lowered(&self, synth: &SynthAdapter) -> Circuit {
        let ir = self.build_ir();
        if self.family.uses_synthesis() {
            ir.lower(synth)
        } else {
            ir.lower(&NoSynth)
        }
    }
}

impl std::fmt::Display for KernelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.family.name(), self.width)
    }
}

/// Why a kernel spec was rejected (nothing builds on error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A family name no [`KernelFamily`] matches.
    UnknownFamily {
        /// The name as the caller wrote it.
        name: String,
    },
    /// A width outside `1..=MAX_WIDTH`.
    InvalidWidth {
        /// The family the width was requested for.
        family: KernelFamily,
        /// The rejected width.
        width: usize,
    },
    /// Input that does not parse as `family:width`.
    BadSpec {
        /// The input as the caller wrote it.
        input: String,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnknownFamily { name } => {
                let known: Vec<&str> = KernelFamily::ALL.iter().map(|f| f.name()).collect();
                write!(
                    f,
                    "unknown kernel family `{name}` (families: {})",
                    known.join(", ")
                )
            }
            KernelError::InvalidWidth { family, width } => write!(
                f,
                "invalid width {width} for kernel family `{family}` (accepted: 1..={MAX_WIDTH})"
            ),
            KernelError::BadSpec { input } => {
                write!(
                    f,
                    "malformed kernel spec `{input}` (expected `family:width`)"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_round_trips_through_name() {
        for family in KernelFamily::ALL {
            assert_eq!(KernelFamily::parse(family.name()), Ok(family));
        }
        assert_eq!(
            KernelFamily::parse("qrcaa"),
            Err(KernelError::UnknownFamily {
                name: "qrcaa".to_string()
            })
        );
    }

    #[test]
    fn specs_parse_and_display() {
        let spec = KernelSpec::parse("qcla:48").expect("valid spec");
        assert_eq!(spec.family, KernelFamily::Qcla);
        assert_eq!(spec.width, 48);
        assert_eq!(spec.to_string(), "qcla:48");
        assert!(matches!(
            KernelSpec::parse("qft"),
            Err(KernelError::BadSpec { .. })
        ));
        assert!(matches!(
            KernelSpec::parse("qft:abc"),
            Err(KernelError::BadSpec { .. })
        ));
        assert!(matches!(
            KernelSpec::parse("qft:0"),
            Err(KernelError::InvalidWidth { .. })
        ));
        assert!(matches!(
            KernelSpec::parse("qft:4096"),
            Err(KernelError::InvalidWidth { .. })
        ));
        assert!(matches!(
            KernelSpec::parse("nope:8"),
            Err(KernelError::UnknownFamily { .. })
        ));
    }

    #[test]
    fn qubit_formulas_match_builders() {
        for family in KernelFamily::ALL {
            for width in [1usize, 2, 5, 8, 13, 32] {
                let spec = KernelSpec::new(family, width).expect("valid");
                assert_eq!(
                    spec.build_ir().n_qubits(),
                    spec.n_qubits(),
                    "{family}:{width}"
                );
            }
        }
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = KernelSpec::parse("zft:8").unwrap_err();
        assert!(e.to_string().contains("unknown kernel family `zft`"));
        assert!(e.to_string().contains("qrca"));
        let e = KernelSpec::parse("qft:200").unwrap_err();
        assert!(e.to_string().contains("invalid width 200"));
    }

    #[test]
    fn build_lowered_is_physical_for_all_families() {
        let synth = SynthAdapter::with_budget(6, 5e-2);
        for family in KernelFamily::ALL {
            let spec = KernelSpec::new(family, 4).expect("valid");
            let lowered = spec.build_lowered(&synth);
            assert!(
                lowered.gates().iter().all(|g| g.is_physical()),
                "{family}:4 lowered to non-physical gates"
            );
        }
    }

    #[test]
    fn family_serde_round_trips() {
        for family in KernelFamily::ALL {
            let spec = KernelSpec::new(family, 9).expect("valid");
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: KernelSpec = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, spec);
        }
    }
}
