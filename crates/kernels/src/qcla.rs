//! The n-bit Quantum Carry-Lookahead Adder (Draper, Kutin, Rains,
//! Svore — the paper's [19]), out-of-place form.
//!
//! Register layout:
//!
//! ```text
//! a:  [0, n)            first input (preserved)
//! b:  [n, 2n)           second input (preserved)
//! z:  [2n, 3n+1)        output: the (n+1)-bit sum
//! P:  [3n+1, ...)       propagate-tree ancillae (restored to zero)
//! ```
//!
//! The propagate tree stores `P_t[m]` (block-propagate of the 2^t-wide
//! block starting at m*2^t) for t >= 1 and 1 <= m <= floor(n/2^t)-1 —
//! `sum_t (floor(n/2^t) - 1)` ancillae = n - w(n) - floor(lg n). At
//! n = 32 that is 26, for 123 qubits total: the paper's Table 9 data
//! area of 861 = 7 x 123 macroblocks.
//!
//! Correctness of the XOR (Toffoli) accumulation relies on generate
//! and propagate being mutually exclusive (`g_i p_i = 0`), which holds
//! because `g_i = a_i b_i` and `p_i = a_i ^ b_i`.

use qods_circuit::circuit::{Circuit, NoSynth};
use std::collections::HashMap;

fn floor_log2(n: usize) -> u32 {
    (usize::BITS - 1) - n.leading_zeros()
}

/// Number of propagate-tree ancillae for width `n`.
pub fn p_tree_ancillae(n: usize) -> usize {
    let mut total = 0;
    let mut t = 1;
    while (1usize << t) <= n {
        total += (n >> t).saturating_sub(1);
        t += 1;
    }
    total
}

struct Layout {
    n: usize,
    /// P_t[m] -> qubit index, for t >= 1.
    p_nodes: HashMap<(u32, usize), usize>,
}

impl Layout {
    fn new(n: usize) -> Self {
        let mut p_nodes = HashMap::new();
        let mut next = 3 * n + 1;
        let mut t = 1u32;
        while (1usize << t) <= n {
            for m in 1..(n >> t) {
                p_nodes.insert((t, m), next);
                next += 1;
            }
            t += 1;
        }
        Layout { n, p_nodes }
    }

    fn a(&self, i: usize) -> usize {
        i
    }

    fn b(&self, i: usize) -> usize {
        self.n + i
    }

    fn z(&self, i: usize) -> usize {
        2 * self.n + i
    }

    /// P_t[m]: t = 0 lives in b (p_i after the CX pass); t >= 1 in the
    /// ancilla pool. Returns `None` for nodes that were never
    /// materialized (only m >= 1 exists for t >= 1).
    fn p(&self, t: u32, m: usize) -> Option<usize> {
        if t == 0 {
            Some(self.b(m))
        } else {
            self.p_nodes.get(&(t, m)).copied()
        }
    }
}

/// Builds the n-bit out-of-place carry-lookahead adder (kernel IR).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qcla(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let lay = Layout::new(n);
    let total = 3 * n + 1 + p_tree_ancillae(n);
    let mut c = Circuit::named(total, format!("QCLA-{n}"));

    // 1. Generate bits: z[i+1] = a_i b_i.
    for i in 0..n {
        c.toffoli(lay.a(i), lay.b(i), lay.z(i + 1));
    }
    // 2. Propagate bits in place: b_i = p_i.
    for i in 0..n {
        c.cx(lay.a(i), lay.b(i));
    }
    let log_n = floor_log2(n);
    // 3. P rounds: P_t[m] = P_{t-1}[2m] & P_{t-1}[2m+1].
    // The three `expect`s per round are proven invariants: Layout::new
    // materializes P_t[m] for exactly the (t, m) pairs these loops
    // visit; skipping a missing node would silently build a wrong
    // adder, which is worse than the panic.
    for t in 1..=log_n {
        for m in 1..(n >> t) {
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let lo = lay.p(t - 1, 2 * m).expect("lo child");
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let hi = lay.p(t - 1, 2 * m + 1).expect("hi child");
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let dst = lay.p(t, m).expect("dst node");
            c.toffoli(lo, hi, dst);
        }
    }
    // 4. G rounds: z[2^t (m+1)] ^= z[2^t m + 2^{t-1}] & P_{t-1}[2m+1].
    for t in 1..=log_n {
        for m in 0..(n >> t) {
            let src = lay.z((1 << t) * m + (1 << (t - 1)));
            let dst = lay.z((1 << t) * (m + 1));
            if let Some(p) = lay.p(t - 1, 2 * m + 1) {
                c.toffoli(src, p, dst);
            }
        }
    }
    // 5. C rounds: z[2^t m + 2^{t-1}] ^= z[2^t m] & P_{t-1}[2m].
    for t in (1..=log_n).rev() {
        let span = 1usize << t;
        let half = span >> 1;
        let mut m = 1;
        while span * m + half <= n {
            let src = lay.z(span * m);
            let dst = lay.z(span * m + half);
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let p = lay.p(t - 1, 2 * m).expect("C-round propagate");
            c.toffoli(src, p, dst);
            m += 1;
        }
    }
    // 6. Undo the P rounds (restore ancillae).
    for t in (1..=log_n).rev() {
        for m in (1..(n >> t)).rev() {
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let lo = lay.p(t - 1, 2 * m).expect("lo child");
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let hi = lay.p(t - 1, 2 * m + 1).expect("hi child");
            // qods-lint: allow(P1) -- proven invariant: Layout::new materializes exactly these p-tree nodes
            let dst = lay.p(t, m).expect("dst node");
            c.toffoli(lo, hi, dst);
        }
    }
    // 7. Sum: z_i ^= p_i (z_i holds the carry c_i; z_0 holds 0).
    for i in 0..n {
        c.cx(lay.b(i), lay.z(i));
    }
    // 8. Restore b.
    for i in 0..n {
        c.cx(lay.a(i), lay.b(i));
    }
    c
}

/// The adder lowered to the physical Clifford+T set.
pub fn qcla_lowered(n: usize) -> Circuit {
    qcla(n).lower(&NoSynth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_adder;
    use qods_circuit::dag::Dag;

    #[test]
    fn qubit_budget_matches_paper() {
        assert_eq!(p_tree_ancillae(32), 26);
        assert_eq!(qcla(32).n_qubits(), 123);
    }

    #[test]
    fn adds_exhaustively_small() {
        for n in 1..=5 {
            let circ = qcla(n);
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    verify_adder(&circ, n, a, b).expect("exhaustive add");
                }
            }
        }
    }

    #[test]
    fn adds_sampled_wide() {
        for n in [8, 16, 32] {
            let circ = qcla(n);
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let mut x = 0x1234_5678_9abc_def0u64;
            for _ in 0..40 {
                // xorshift for deterministic pseudo-random operands
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x & mask;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let b = x & mask;
                verify_adder(&circ, n, a, b).expect("sampled add");
            }
        }
    }

    #[test]
    fn log_depth_beats_ripple_carry() {
        let n = 32;
        let cla = qcla_lowered(n);
        let rca = crate::qrca::qrca_lowered(n);
        let d_cla = Dag::build(&cla).depth();
        let d_rca = Dag::build(&rca).depth();
        assert!(
            d_cla * 4 < d_rca,
            "QCLA depth {d_cla} not <<< QRCA depth {d_rca}"
        );
    }

    #[test]
    fn lowered_t_fraction_near_paper() {
        // Paper §3.3: 41.0% of QCLA gates are non-transversal.
        let f = qcla_lowered(32).non_transversal_fraction();
        assert!((0.35..0.50).contains(&f), "T fraction {f}");
    }

    #[test]
    fn ancilla_counts_for_other_widths() {
        // n - w(n) - floor(lg n).
        for n in [4usize, 8, 16, 32, 48] {
            let expect = n - (n.count_ones() as usize) - (floor_log2(n) as usize);
            assert_eq!(p_tree_ancillae(n), expect, "n = {n}");
        }
    }
}
