//! The n-bit Quantum Ripple-Carry Adder (VBE construction).
//!
//! Register layout (qubit indices):
//!
//! ```text
//! a:  [0, n)        first input (preserved)
//! b:  [n, 2n)       second input; becomes the low n sum bits
//! c:  [2n, 3n+1)    carry ancillae; c[n] becomes the carry-out,
//!                   c[0..n] are restored to zero
//! ```
//!
//! 3n+1 qubits total — the "two n-bit data inputs plus n+1 ancillae"
//! of §3: 97 encoded qubits at n = 32, which is exactly the paper's
//! Table 9 data area of 679 = 7 x 97 macroblocks.

use qods_circuit::circuit::{Circuit, NoSynth};

/// CARRY(c, a, b, c_next): the VBE majority/carry block.
fn carry(circ: &mut Circuit, c: usize, a: usize, b: usize, c_next: usize) {
    circ.toffoli(a, b, c_next);
    circ.cx(a, b);
    circ.toffoli(c, b, c_next);
}

/// Inverse CARRY.
fn carry_dg(circ: &mut Circuit, c: usize, a: usize, b: usize, c_next: usize) {
    circ.toffoli(c, b, c_next);
    circ.cx(a, b);
    circ.toffoli(a, b, c_next);
}

/// SUM(c, a, b): b ^= a ^ c.
fn sum(circ: &mut Circuit, c: usize, a: usize, b: usize) {
    circ.cx(a, b);
    circ.cx(c, b);
}

/// Builds the n-bit ripple-carry adder (kernel IR with Toffolis).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qrca(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut circ = Circuit::named(3 * n + 1, format!("QRCA-{n}"));
    let a = |i: usize| i;
    let b = |i: usize| n + i;
    let c = |i: usize| 2 * n + i;

    for i in 0..n {
        carry(&mut circ, c(i), a(i), b(i), c(i + 1));
    }
    circ.cx(a(n - 1), b(n - 1));
    sum(&mut circ, c(n - 1), a(n - 1), b(n - 1));
    for i in (0..n - 1).rev() {
        carry_dg(&mut circ, c(i), a(i), b(i), c(i + 1));
        sum(&mut circ, c(i), a(i), b(i));
    }
    circ
}

/// The adder lowered to the physical Clifford+T set.
pub fn qrca_lowered(n: usize) -> Circuit {
    qrca(n).lower(&NoSynth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_adder;
    use qods_circuit::gate::Gate;

    #[test]
    fn qubit_budget_matches_paper() {
        assert_eq!(qrca(32).n_qubits(), 97);
    }

    #[test]
    fn adds_exhaustively_small() {
        for n in 1..=4 {
            let circ = qrca(n);
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    verify_adder(&circ, n, a, b).expect("exhaustive add");
                }
            }
        }
    }

    #[test]
    fn adds_sampled_wide() {
        let circ = qrca(16);
        for (a, b) in [
            (0u64, 0u64),
            (65535, 65535),
            (12345, 54321),
            (1, 65535),
            (32768, 32768),
        ] {
            verify_adder(&circ, 16, a, b).expect("sampled add");
        }
    }

    #[test]
    fn toffoli_and_cx_counts() {
        let n = 32;
        let circ = qrca(n);
        let toffolis = circ.count_where(|g| matches!(g, Gate::Toffoli(..)));
        let cxs = circ.count_where(|g| matches!(g, Gate::Cx(..)));
        assert_eq!(toffolis, 4 * n - 2);
        assert_eq!(cxs, 4 * n);
    }

    #[test]
    fn lowered_t_fraction_near_paper() {
        // Paper §3.3: 40.5% of QRCA gates are non-transversal.
        let f = qrca_lowered(32).non_transversal_fraction();
        assert!((0.35..0.50).contains(&f), "T fraction {f}");
    }

    #[test]
    fn lowered_is_physical() {
        assert!(qrca_lowered(8).gates().iter().all(|g| g.is_physical()));
    }
}
