//! Controlled ripple-carry addition — the composite kernel inside
//! Shor-style modular exponentiation (§3.1 motivates the adder
//! kernels as exactly this building block).
//!
//! `b += a` fires only when the control qubit is set. Built from the
//! VBE structure with the SUM blocks controlled (CX -> Toffoli); the
//! CARRY chain runs unconditionally and uncomputes itself, so only the
//! sum writes need the control — the standard trick that keeps the
//! controlled adder at roughly 1.5x the plain adder's Toffoli count.
//!
//! Register layout:
//!
//! ```text
//! ctrl: 0                control
//! a:    [1, n+1)         first input (preserved)
//! b:    [n+1, 2n+1)      second input; b += a when ctrl = 1
//! c:    [2n+1, 3n+2)     carry ancillae (restored; c[n] stays clear
//!                        because the carry-out write is controlled)
//! ```

use qods_circuit::circuit::{Circuit, NoSynth};

/// Builds the n-bit controlled adder (kernel IR with Toffolis).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn controlled_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut circ = Circuit::named(3 * n + 2, format!("CtrlAdd-{n}"));
    let ctrl = 0usize;
    let a = |i: usize| 1 + i;
    let b = |i: usize| 1 + n + i;
    let c = |i: usize| 1 + 2 * n + i;

    // Forward carry chain (unconditional, self-inverse overall).
    for i in 0..n {
        circ.toffoli(a(i), b(i), c(i + 1));
        circ.cx(a(i), b(i));
        circ.toffoli(c(i), b(i), c(i + 1));
    }
    // Controlled carry-out write: c[n] -> result high bit only under
    // control. We copy it to b-space via the control... the carry-out
    // has no home in b, so expose it through c[n] conditionally:
    // uncompute c[n] unless ctrl (double-Toffoli trick). Simplest
    // correct form: leave the carry chain value, write the controlled
    // sums, then uncompute the chain.
    for i in (0..n).rev() {
        // Uncompute the carry into c[i+1].
        circ.toffoli(c(i), b(i), c(i + 1));
        circ.cx(a(i), b(i));
        circ.toffoli(a(i), b(i), c(i + 1));
        // Controlled SUM: b_i ^= ctrl & (a_i ^ c_i).
        circ.toffoli(ctrl, a(i), b(i));
        circ.toffoli(ctrl, c(i), b(i));
        // Recompute carries below so deeper bits see them... not
        // needed: we sweep from the top bit down, and position i only
        // needs c(i), which is still intact (we uncompute c(i+1),
        // never c(i), before using it).
    }
    circ
}

/// The controlled adder lowered to the physical gate set.
pub fn controlled_adder_lowered(n: usize) -> Circuit {
    controlled_adder(n).lower(&NoSynth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_circuit::sim::permutation;

    fn apply(n: usize, ctrl: bool, a: u64, b: u64) -> (u64, u64, u64, bool) {
        let circ = controlled_adder(n);
        let input: u128 = (u128::from(ctrl)) | (u128::from(a) << 1) | (u128::from(b) << (1 + n));
        let out = permutation::apply(&circ, input);
        let mask = (1u128 << n) - 1;
        let a_out = (out >> 1) & mask;
        let b_out = (out >> (1 + n)) & mask;
        let c_out = (out >> (1 + 2 * n)) & ((1 << (n + 1)) - 1);
        (a_out as u64, b_out as u64, c_out as u64, out & 1 == 1)
    }

    #[test]
    fn adds_only_under_control() {
        for n in 1..=4 {
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    // Control off: identity on b.
                    let (ao, bo, co, ct) = apply(n, false, a, b);
                    assert_eq!((ao, bo), (a, b), "n={n} {a}+{b} ctrl=0");
                    assert_eq!(co, 0, "carries must restore");
                    assert!(!ct);
                    // Control on: modular sum into b.
                    let (ao, bo, co, ct) = apply(n, true, a, b);
                    assert_eq!(ao, a, "a preserved");
                    assert_eq!(bo, (a + b) & ((1 << n) - 1), "n={n} {a}+{b} ctrl=1");
                    assert_eq!(co, 0, "carries must restore");
                    assert!(ct, "control preserved");
                }
            }
        }
    }

    #[test]
    fn toffoli_overhead_is_modest() {
        use qods_circuit::gate::Gate;
        let n = 32;
        let plain = crate::qrca(n).count_where(|g| matches!(g, Gate::Toffoli(..)));
        let ctrl = controlled_adder(n).count_where(|g| matches!(g, Gate::Toffoli(..)));
        // ~1.5x the plain adder's Toffoli count.
        assert!((ctrl as f64) / (plain as f64) < 1.8, "{ctrl} vs {plain}");
    }

    #[test]
    fn lowered_is_physical_and_t_heavy() {
        let c = controlled_adder_lowered(16);
        assert!(c.gates().iter().all(|g| g.is_physical()));
        assert!(c.non_transversal_fraction() > 0.35);
    }
}
