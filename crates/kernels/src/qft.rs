//! The n-bit Quantum Fourier Transform (§2.5, §3.1).
//!
//! Standard textbook circuit: for each target bit (high to low) a
//! Hadamard followed by controlled phase rotations from every lower
//! bit, then a qubit-order reversal via swaps. The controlled rotation
//! between bits at distance `m` has angle `2*pi / 2^(m+1)` =
//! `pi / 2^m`, i.e. [`qods_circuit::gate::Gate::CPhaseRot`] with
//! `k = m`.
//!
//! Lowering decomposes each controlled rotation into CX gates plus
//! three half-angle single-qubit rotations (§2.5) and synthesizes the
//! sub-T-gate angles by exhaustive Clifford+T search.

use crate::synth_adapter::SynthAdapter;
use qods_circuit::circuit::Circuit;

/// Builds the n-qubit QFT in kernel IR (exact controlled rotations),
/// including the final bit-reversal swaps.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "QFT width must be positive");
    let mut c = Circuit::named(n, format!("QFT-{n}"));
    for j in (0..n).rev() {
        c.h(j);
        for i in (0..j).rev() {
            // Controlled rotation between bits at distance j - i.
            let k = (j - i) as u8;
            c.cphase_rot(i, j, k, false);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// The QFT lowered to the physical gate set using the given synthesis
/// budget.
pub fn qft_lowered(n: usize, synth: &SynthAdapter) -> Circuit {
    qft(n).lower(synth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_circuit::sim::statevector::{Amp, State};
    use std::f64::consts::PI;

    /// Directly computed DFT of the basis state |x> over n qubits.
    fn dft_state(n: usize, x: usize) -> Vec<Amp> {
        let size = 1usize << n;
        let norm = 1.0 / (size as f64).sqrt();
        (0..size)
            .map(|y| {
                let theta = 2.0 * PI * (x as f64) * (y as f64) / size as f64;
                Amp::new(norm * theta.cos(), norm * theta.sin())
            })
            .collect()
    }

    fn fidelity_to_dft(n: usize, x: usize) -> f64 {
        let mut s = State::basis(n, x);
        s.run(&qft(n));
        let want = dft_state(n, x);
        // |<want|s>|^2
        let mut re = 0.0;
        let mut im = 0.0;
        for (a, b) in want.iter().zip(s.amps()) {
            re += a.re * b.re + a.im * b.im;
            im += a.re * b.im - a.im * b.re;
        }
        re * re + im * im
    }

    #[test]
    fn matches_dft_matrix_exactly() {
        for n in 1..=5 {
            for x in 0..(1usize << n) {
                let f = fidelity_to_dft(n, x);
                assert!((f - 1.0).abs() < 1e-10, "QFT-{n} on |{x}>: fidelity {f}");
            }
        }
    }

    #[test]
    fn gate_count_is_quadratic() {
        let n = 16;
        let c = qft(n);
        // n H + n(n-1)/2 controlled rotations + 3*floor(n/2) swap CXs.
        assert_eq!(c.len(), n + n * (n - 1) / 2 + 3 * (n / 2));
    }

    #[test]
    fn lowered_qft_is_physical_and_t_heavy() {
        let synth = SynthAdapter::with_budget(8, 2e-2);
        let c = qft_lowered(16, &synth);
        assert!(c.gates().iter().all(|g| g.is_physical()));
        // Paper §3.3: 46.9% of QFT gates are non-transversal.
        let f = c.non_transversal_fraction();
        assert!((0.25..0.60).contains(&f), "T fraction {f}");
    }

    #[test]
    fn lowered_small_qft_stays_close_to_exact() {
        // With a real synthesis budget the lowered QFT-3 should match
        // the exact one to high fidelity (only k=3... none: QFT-3 has
        // k <= 2, all native). QFT-4 introduces k = 3.
        let synth = SynthAdapter::with_budget(10, 1e-3);
        let n = 4;
        let exact = qft(n);
        let lowered = qft_lowered(n, &synth);
        for x in 0..(1usize << n) {
            let mut s1 = State::basis(n, x);
            s1.run(&exact);
            let mut s2 = State::basis(n, x);
            s2.run(&lowered);
            let f = s1.fidelity(&s2);
            assert!(f > 0.98, "QFT-4 on |{x}>: lowered fidelity {f}");
        }
    }
}
