//! Bridges `qods-synth` sequences into the circuit IR's
//! [`RotationSynthesizer`] hook, with a per-(k, dagger) cache.

use qods_circuit::circuit::RotationSynthesizer;
use qods_circuit::gate::Gate;
use qods_synth::search::{HtGate, Synthesizer};
use qods_synth::simplify::simplify;
use std::collections::HashMap;
use std::sync::Mutex;

/// A caching adapter from the Fowler-style search to circuit lowering.
///
/// The same pi/2^k sequence is reused for every qubit it is applied
/// to, so a QFT lowers with at most `n - 3` searches. Dagger targets
/// reuse the mirror search (the search space is closed under
/// conjugation, so distances match; see `qods-synth` tests).
#[derive(Debug)]
pub struct SynthAdapter {
    synth: Synthesizer,
    cache: Mutex<HashMap<(u8, bool), Vec<HtGate>>>,
}

impl SynthAdapter {
    /// Adapter with the default search budget.
    pub fn new() -> Self {
        SynthAdapter {
            synth: Synthesizer::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Adapter with a custom search budget (T-count cap, stop-early
    /// distance).
    pub fn with_budget(max_t: u32, target_distance: f64) -> Self {
        SynthAdapter {
            synth: Synthesizer::with_budget(max_t, target_distance),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The approximation distance achieved for a given rotation (runs
    /// or reuses the search).
    pub fn distance(&self, k: u8, dagger: bool) -> f64 {
        // Not cached (cache stores gates only); cheap relative to use.
        self.synth.rz_pi_over_2k(k, dagger).distance
    }

    fn sequence(&self, k: u8, dagger: bool) -> Vec<HtGate> {
        let mut cache = qods_pool::plock(&self.cache);
        cache
            .entry((k, dagger))
            .or_insert_with(|| simplify(&self.synth.rz_pi_over_2k(k, dagger).gates))
            .clone()
    }
}

impl Default for SynthAdapter {
    fn default() -> Self {
        SynthAdapter::new()
    }
}

impl RotationSynthesizer for SynthAdapter {
    fn synthesize(&self, q: usize, k: u8, dagger: bool) -> Vec<Gate> {
        self.sequence(k, dagger)
            .into_iter()
            .map(|g| match g {
                HtGate::H => Gate::H(q),
                HtGate::S => Gate::S(q),
                HtGate::T => Gate::T(q),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_physical_gates_on_requested_qubit() {
        let a = SynthAdapter::with_budget(6, 1e-2);
        let gates = a.synthesize(5, 4, false);
        for g in &gates {
            assert!(g.is_physical());
            assert_eq!(g.qubits(), vec![5]);
        }
    }

    #[test]
    fn cache_returns_stable_sequences() {
        let a = SynthAdapter::with_budget(6, 1e-2);
        let g1 = a.synthesize(0, 5, false);
        let g2 = a.synthesize(0, 5, false);
        assert_eq!(g1, g2);
    }
}
