//! Draper's QFT-based adder ("Addition on a Quantum Computer",
//! quant-ph/0008033 — the paper's reference [18]).
//!
//! Adds register `a` into register `b` in the Fourier basis: QFT on
//! `b`, controlled phase rotations from `a`, inverse QFT. Uses no
//! carry ancillae at all (2n qubits), trading them for deep controlled
//! rotations — a useful contrast to the QRCA/QCLA kernels when
//! studying pi/8-ancilla bandwidth, since its non-transversal demand
//! scales very differently.
//!
//! Register layout: `a` at `[0, n)` (preserved), `b` at `[n, 2n)`
//! (becomes `(a + b) mod 2^n`).

use crate::synth_adapter::SynthAdapter;
use qods_circuit::circuit::Circuit;

/// Builds the n-bit Draper adder in kernel IR (exact rotations).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn draper_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut c = Circuit::named(2 * n, format!("Draper-{n}"));
    let a = |i: usize| i;
    let b = |i: usize| n + i;

    // QFT on b (without the final swaps: we uncompute symmetrically).
    for j in (0..n).rev() {
        c.h(b(j));
        for i in (0..j).rev() {
            c.cphase_rot(b(i), b(j), (j - i) as u8, false);
        }
    }
    // Phase additions: bit a_i contributes exp(2 pi i a_i 2^i y / 2^n)
    // = a controlled rotation of angle pi / 2^(j - i) onto Fourier
    // coefficient j >= i.
    for j in 0..n {
        for i in 0..=j {
            c.cphase_rot(a(i), b(j), (j - i) as u8, false);
        }
    }
    // Inverse QFT on b.
    for j in 0..n {
        for i in 0..j {
            c.cphase_rot(b(i), b(j), (j - i) as u8, true);
        }
        c.h(b(j));
    }
    c
}

/// The Draper adder lowered to the physical gate set.
pub fn draper_adder_lowered(n: usize, synth: &SynthAdapter) -> Circuit {
    draper_adder(n).lower(synth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_circuit::sim::statevector::State;

    /// Exhaustive functional verification through the statevector
    /// simulator (the circuit is not classical gate-by-gate, so the
    /// permutation oracle does not apply).
    fn check_adds(n: usize) {
        for a in 0..(1usize << n) {
            for b in 0..(1usize << n) {
                let mut s = State::basis(2 * n, a | (b << n));
                s.run(&draper_adder(n));
                let want = a | (((a + b) % (1 << n)) << n);
                let amp = s.amps()[want].norm_sq();
                assert!(amp > 1.0 - 1e-9, "{n}-bit {a}+{b}: |amp|^2 = {amp}");
            }
        }
    }

    #[test]
    fn adds_exhaustively_n1_to_n3() {
        for n in 1..=3 {
            check_adds(n);
        }
    }

    #[test]
    fn adds_sampled_n4() {
        for (a, b) in [(0usize, 0usize), (15, 15), (9, 7), (8, 8), (1, 14)] {
            let n = 4;
            let mut s = State::basis(2 * n, a | (b << n));
            s.run(&draper_adder(n));
            let want = a | (((a + b) % 16) << n);
            assert!(s.amps()[want].norm_sq() > 1.0 - 1e-9, "{a}+{b}");
        }
    }

    #[test]
    fn uses_no_ancillae() {
        assert_eq!(draper_adder(32).n_qubits(), 64);
    }

    #[test]
    fn lowered_is_physical() {
        let synth = SynthAdapter::with_budget(6, 5e-2);
        let c = draper_adder_lowered(8, &synth);
        assert!(c.gates().iter().all(|g| g.is_physical()));
        assert!(c.non_transversal_fraction() > 0.1);
    }

    #[test]
    fn bandwidth_profile_differs_from_ripple_carry() {
        // The Draper adder trades carry ancillae for rotation depth:
        // fewer encoded qubits than the QRCA, different pi/8 pattern.
        use qods_circuit::characterize::characterize;
        let synth = SynthAdapter::with_budget(8, 3e-2);
        let d = characterize(&draper_adder_lowered(16, &synth));
        let r = characterize(&crate::qrca_lowered(16));
        assert!(d.n_qubits < r.n_qubits);
        assert!(d.bandwidth.zero_per_ms > 0.0);
    }
}
