//! Prints Table 2/3-shaped characterization for the three kernels.
use qods_circuit::characterize::characterize;
use qods_kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let synth = SynthAdapter::with_budget(12, 1e-2);
    let circuits = vec![qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)];
    println!("built in {:?}", t0.elapsed());
    for c in &circuits {
        let r = characterize(c);
        println!(
            "{:<10} q={:<4} gates={:<6} T%={:.1} | T2: {:.0} ({:.1}%) {:.0} ({:.1}%) {:.0} ({:.1}%) | T3: zero={:.1}/ms pi8={:.1}/ms runtime={:.1}ms",
            r.name, r.n_qubits, r.gate_count, 100.0 * r.non_transversal_fraction,
            r.breakdown.data_op_us, 100.0 * r.breakdown.data_op_share(),
            r.breakdown.qec_interact_us, 100.0 * r.breakdown.qec_interact_share(),
            r.breakdown.ancilla_prep_us, 100.0 * r.breakdown.ancilla_prep_share(),
            r.bandwidth.zero_per_ms, r.bandwidth.pi8_per_ms, r.bandwidth.runtime_ms
        );
    }
    println!("paper T2 rows: QRCA 29508(5.2)/95641(16.7)/447726(78.2); QCLA 3827(5.3)/11921(16.7)/55806(78.0); QFT 77057(5.0)/365792(23.7)/1097376(71.2)");
    println!("paper T3 rows: QRCA 34.8/7.0; QCLA 306.1/62.7; QFT 36.8/8.6");
}
