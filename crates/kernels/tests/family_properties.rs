//! Property tests for the kernel families at *random* operand widths:
//! the `KernelSpec { family, width }` generalization only earns its
//! keep if every family is functionally correct at widths the paper
//! never exercised — adders must add, the QFT must implement the DFT —
//! not just at the fixed points the unit tests pin.

use proptest::prelude::*;
use qods_circuit::sim::permutation;
use qods_circuit::sim::statevector::{Amp, State};
use qods_kernels::{verify_adder, KernelFamily, KernelSpec, SynthAdapter};
use std::f64::consts::PI;

/// Widths are capped by the simulators, not the builders: the
/// permutation oracle tracks one u128 (3n+2 qubits for the controlled
/// adder caps n at 42), the statevector oracle 2^n amplitudes.
fn spec(family: KernelFamily, width: usize) -> KernelSpec {
    KernelSpec::new(family, width).expect("test widths are in bounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ripple-carry adder adds at any width the oracle can check.
    #[test]
    fn qrca_adds_at_random_widths(width in 1usize..41, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let circuit = spec(KernelFamily::Qrca, width).build_ir();
        let mask = (1u64 << width) - 1;
        verify_adder(&circuit, width, a & mask, b & mask)
            .map_err(TestCaseError::fail)?;
    }

    /// The carry-lookahead adder adds at any width (including the
    /// awkward non-powers-of-two the P-tree must round around).
    #[test]
    fn qcla_adds_at_random_widths(width in 1usize..34, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let circuit = spec(KernelFamily::Qcla, width).build_ir();
        let mask = (1u64 << width) - 1;
        verify_adder(&circuit, width, a & mask, b & mask)
            .map_err(TestCaseError::fail)?;
    }

    /// The controlled adder adds exactly when the control is set and
    /// is the identity when it is not, at any width.
    #[test]
    fn ctrladd_is_controlled_at_random_widths(
        width in 1usize..41,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        ctrl_bit in 0u8..2,
    ) {
        let ctrl = ctrl_bit == 1;
        let circuit = spec(KernelFamily::CtrlAdd, width).build_ir();
        let mask = (1u64 << width) - 1;
        let (a, b) = (u128::from(a & mask), u128::from(b & mask));
        let input = u128::from(ctrl) | (a << 1) | (b << (1 + width));
        let out = permutation::apply(&circuit, input);
        let want_b = if ctrl { (a + b) & u128::from(mask) } else { b };
        prop_assert_eq!(out & 1, u128::from(ctrl), "control corrupted");
        prop_assert_eq!((out >> 1) & u128::from(mask), a, "input a corrupted");
        prop_assert_eq!((out >> (1 + width)) & u128::from(mask), want_b, "sum wrong");
        prop_assert_eq!(out >> (1 + 2 * width), 0u128, "carries not restored");
    }

    /// The QFT matches the DFT matrix on random basis states at
    /// random (statevector-checkable) widths.
    #[test]
    fn qft_matches_dft_at_random_widths(width in 1usize..7, x in 0usize..1_000_000) {
        let x = x % (1usize << width);
        let mut s = State::basis(width, x);
        s.run(&spec(KernelFamily::Qft, width).build_ir());
        let size = 1usize << width;
        let norm = 1.0 / (size as f64).sqrt();
        let mut re = 0.0;
        let mut im = 0.0;
        for (y, amp) in s.amps().iter().enumerate() {
            let theta = 2.0 * PI * (x as f64) * (y as f64) / size as f64;
            let want = Amp::new(norm * theta.cos(), norm * theta.sin());
            re += want.re * amp.re + want.im * amp.im;
            im += want.re * amp.im - want.im * amp.re;
        }
        let fidelity = re * re + im * im;
        prop_assert!((fidelity - 1.0).abs() < 1e-9, "QFT-{width} on |{x}>: fidelity {fidelity}");
    }

    /// The Draper adder adds modulo 2^n on random inputs at random
    /// widths (through the statevector oracle — its rotations are not
    /// classical gate-by-gate).
    #[test]
    fn draper_adds_at_random_widths(width in 1usize..6, a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let size = 1usize << width;
        let (a, b) = (a % size, b % size);
        let mut s = State::basis(2 * width, a | (b << width));
        s.run(&spec(KernelFamily::Draper, width).build_ir());
        let want = a | (((a + b) % size) << width);
        let amp = s.amps()[want].norm_sq();
        prop_assert!(amp > 1.0 - 1e-9, "{width}-bit {a}+{b}: |amp|^2 = {amp}");
    }

    /// Lowering stays physical at random widths for every family.
    #[test]
    fn every_family_lowers_physical_at_random_widths(width in 1usize..13, fi in 0usize..5) {
        let family = KernelFamily::ALL[fi];
        let synth = SynthAdapter::with_budget(6, 5e-2);
        let lowered = spec(family, width).build_lowered(&synth);
        prop_assert!(lowered.gates().iter().all(|g| g.is_physical()), "{family}:{width}");
        prop_assert_eq!(lowered.n_qubits(), family.n_qubits(width));
    }
}
