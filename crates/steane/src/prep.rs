//! The four encoded-zero preparation strategies of Fig 4.
//!
//! | strategy | circuit | paper error rate |
//! |---|---|---|
//! | [`PrepStrategy::Basic`] | Fig 3b alone | 1.8e-3 |
//! | [`PrepStrategy::VerifyOnly`] | Fig 4a: basic + cat verification | 3.7e-4 |
//! | [`PrepStrategy::CorrectOnly`] | Fig 4b: 3 blocks, bit+phase correct | 1.1e-3 |
//! | [`PrepStrategy::VerifyAndCorrect`] | Fig 4c: verify all 3, then correct | 2.9e-5 |
//!
//! In the verify-and-correct pipeline a nonzero syndrome observed
//! during correction discards the block (see the crate-level modeling
//! note): the block is in a known state, recycling is cheap (Fig 12
//! routes failures back to the stateless-qubit pool), and this is what
//! makes the delivered error rate second-order in the fault rate.

use crate::code::SteaneCode;
use crate::correct::{bit_correct, phase_correct, CorrectionPolicy};
use crate::encoder::{encode_zero, EncoderMovement};
use crate::executor::{Executor, OpCounts};
use crate::verify::verify_block;
use qods_phys::error_model::ErrorModel;
use qods_phys::montecarlo::TrialArena;
use rand::Rng;

/// Which Fig 4 preparation circuit to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrepStrategy {
    /// The bare encoding circuit of Fig 3b.
    Basic,
    /// Fig 4a: encode, then verify with two cat-state checks.
    VerifyOnly,
    /// Fig 4b: encode three blocks; bit- and phase-correct the first
    /// using the other two (corrections applied unconditionally).
    CorrectOnly,
    /// Fig 4c: encode and verify three blocks; then bit- and
    /// phase-correct the first, discarding on any nonzero syndrome.
    VerifyAndCorrect,
}

impl PrepStrategy {
    /// All four strategies, in the paper's presentation order.
    pub const ALL: [PrepStrategy; 4] = [
        PrepStrategy::Basic,
        PrepStrategy::VerifyOnly,
        PrepStrategy::CorrectOnly,
        PrepStrategy::VerifyAndCorrect,
    ];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            PrepStrategy::Basic => "basic",
            PrepStrategy::VerifyOnly => "verify only",
            PrepStrategy::CorrectOnly => "correct only",
            PrepStrategy::VerifyAndCorrect => "verify and correct",
        }
    }

    /// The paper's reported logical error rate for this circuit (used
    /// by the reproduction report for paper-vs-measured tables).
    pub fn paper_error_rate(self) -> f64 {
        match self {
            PrepStrategy::Basic => 1.8e-3,
            PrepStrategy::VerifyOnly => 3.7e-4,
            PrepStrategy::CorrectOnly => 1.1e-3,
            PrepStrategy::VerifyAndCorrect => 2.9e-5,
        }
    }

    /// Number of physical qubits the protocol touches (blocks + cats +
    /// the cat end-check auxiliary; cat registers are recycled between
    /// blocks).
    pub fn register_size(self) -> usize {
        match self {
            PrepStrategy::Basic => 7,
            PrepStrategy::VerifyOnly => 7 + 6 + 1,
            PrepStrategy::CorrectOnly => 21,
            PrepStrategy::VerifyAndCorrect => 21 + 6 + 1,
        }
    }
}

/// Result of one preparation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepOutcome {
    /// A block was delivered with the given residual error masks.
    Delivered {
        /// X-component error mask over the delivered block.
        x: u8,
        /// Z-component error mask over the delivered block.
        z: u8,
    },
    /// Verification (or a correction-stage syndrome, for
    /// verify-and-correct) rejected the block.
    Discarded,
}

impl PrepOutcome {
    /// True when the attempt delivered a block whose residual error is
    /// harmful per [`SteaneCode::ancilla_uncorrectable`].
    pub fn is_uncorrectable(&self, code: &SteaneCode) -> bool {
        match *self {
            PrepOutcome::Delivered { x, z } => code.ancilla_uncorrectable(x, z),
            PrepOutcome::Discarded => false,
        }
    }

    /// True when the attempt delivered a block with *any* non-benign
    /// residual (see [`SteaneCode::ancilla_dirty`]).
    pub fn is_dirty(&self, code: &SteaneCode) -> bool {
        match *self {
            PrepOutcome::Delivered { x, z } => code.ancilla_dirty(x, z),
            PrepOutcome::Discarded => false,
        }
    }
}

const BLOCK_A: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];
const BLOCK_B: [usize; 7] = [7, 8, 9, 10, 11, 12, 13];
const BLOCK_C: [usize; 7] = [14, 15, 16, 17, 18, 19, 20];

/// Cat registers (recycled across checks) and the end-check auxiliary.
fn cats_for(base: usize) -> ([[usize; 3]; 2], usize) {
    (
        [[base, base + 1, base + 2], [base + 3, base + 4, base + 5]],
        base + 6,
    )
}

/// Runs one preparation attempt under `strategy`, returning the
/// delivered block's residual error (or a discard) plus the physical-op
/// census of the attempt.
///
/// Allocates a fresh frame per call; Monte-Carlo loops should prefer
/// [`run_prep_in`], which reuses a [`TrialArena`].
pub fn run_prep<R: Rng>(
    strategy: PrepStrategy,
    model: ErrorModel,
    rng: &mut R,
) -> (PrepOutcome, OpCounts) {
    let ex = Executor::new(strategy.register_size(), model, rng);
    run_prep_on(strategy, ex)
}

/// [`run_prep`] on a borrowed [`TrialArena`] frame: the allocation-free
/// hot path the Monte-Carlo evaluations drive.
pub fn run_prep_in<R: Rng>(
    strategy: PrepStrategy,
    model: ErrorModel,
    rng: &mut R,
    arena: &mut TrialArena,
) -> (PrepOutcome, OpCounts) {
    let ex = Executor::in_arena(strategy.register_size(), model, rng, arena);
    run_prep_on(strategy, ex)
}

fn run_prep_on<R: Rng>(strategy: PrepStrategy, mut ex: Executor<'_, R>) -> (PrepOutcome, OpCounts) {
    let movement = EncoderMovement::default();
    let outcome = match strategy {
        PrepStrategy::Basic => {
            encode_zero(&mut ex, &BLOCK_A, movement);
            PrepOutcome::Delivered {
                x: ex.x_mask(&BLOCK_A),
                z: ex.z_mask(&BLOCK_A),
            }
        }
        PrepStrategy::VerifyOnly => {
            encode_zero(&mut ex, &BLOCK_A, movement);
            let (cats, aux) = cats_for(7);
            if verify_block(&mut ex, &BLOCK_A, &cats, aux).passed() {
                PrepOutcome::Delivered {
                    x: ex.x_mask(&BLOCK_A),
                    z: ex.z_mask(&BLOCK_A),
                }
            } else {
                PrepOutcome::Discarded
            }
        }
        PrepStrategy::CorrectOnly => {
            encode_zero(&mut ex, &BLOCK_A, movement);
            encode_zero(&mut ex, &BLOCK_B, movement);
            encode_zero(&mut ex, &BLOCK_C, movement);
            let _ = bit_correct(&mut ex, &BLOCK_A, &BLOCK_B, CorrectionPolicy::Apply);
            let _ = phase_correct(&mut ex, &BLOCK_A, &BLOCK_C, CorrectionPolicy::Apply);
            PrepOutcome::Delivered {
                x: ex.x_mask(&BLOCK_A),
                z: ex.z_mask(&BLOCK_A),
            }
        }
        PrepStrategy::VerifyAndCorrect => {
            encode_zero(&mut ex, &BLOCK_A, movement);
            encode_zero(&mut ex, &BLOCK_B, movement);
            encode_zero(&mut ex, &BLOCK_C, movement);
            let (cats, aux) = cats_for(21);
            let ok = verify_block(&mut ex, &BLOCK_A, &cats, aux).passed()
                && verify_block(&mut ex, &BLOCK_B, &cats, aux).passed()
                && verify_block(&mut ex, &BLOCK_C, &cats, aux).passed();
            if !ok {
                return (PrepOutcome::Discarded, ex.counts());
            }
            let s_bit = bit_correct(&mut ex, &BLOCK_A, &BLOCK_B, CorrectionPolicy::ReportOnly);
            let s_phase = phase_correct(&mut ex, &BLOCK_A, &BLOCK_C, CorrectionPolicy::ReportOnly);
            if s_bit != 0 || s_phase != 0 {
                PrepOutcome::Discarded
            } else {
                PrepOutcome::Delivered {
                    x: ex.x_mask(&BLOCK_A),
                    z: ex.z_mask(&BLOCK_A),
                }
            }
        }
    };
    (outcome, ex.counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_all_strategies_deliver_clean_blocks() {
        for s in PrepStrategy::ALL {
            let mut rng = StdRng::seed_from_u64(31);
            let (out, counts) = run_prep(s, ErrorModel::noiseless(), &mut rng);
            assert_eq!(
                out,
                PrepOutcome::Delivered { x: 0, z: 0 },
                "strategy {s:?} failed noiselessly"
            );
            assert!(counts.total() > 0);
        }
    }

    #[test]
    fn arena_prep_matches_owned_prep() {
        let model = ErrorModel::paper().scaled(50.0);
        let mut arena = TrialArena::new();
        for s in PrepStrategy::ALL {
            for seed in 0..20 {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let owned = run_prep(s, model, &mut r1);
                // A fresh owned frame starts a fresh sampling stream;
                // match that on the arena side for stream equality.
                arena.reset_sampling();
                let pooled = run_prep_in(s, model, &mut r2, &mut arena);
                assert_eq!(owned, pooled, "strategy {s:?} seed {seed}");
            }
        }
    }

    #[test]
    fn op_counts_scale_with_strategy_complexity() {
        let mut rng = StdRng::seed_from_u64(31);
        let totals: Vec<u64> = PrepStrategy::ALL
            .iter()
            .map(|&s| run_prep(s, ErrorModel::noiseless(), &mut rng).1.total())
            .collect();
        // basic < verify-only < correct-only < verify-and-correct.
        assert!(totals[0] < totals[1]);
        assert!(totals[1] < totals[2]);
        assert!(totals[2] < totals[3]);
    }

    #[test]
    fn basic_counts_match_figure_3b() {
        let mut rng = StdRng::seed_from_u64(31);
        let (_, c) = run_prep(PrepStrategy::Basic, ErrorModel::noiseless(), &mut rng);
        assert_eq!(c.preps, 7);
        assert_eq!(c.one_qubit_gates, 3);
        assert_eq!(c.two_qubit_gates, 9);
    }

    #[test]
    fn register_sizes_are_consistent() {
        assert_eq!(PrepStrategy::Basic.register_size(), 7);
        assert_eq!(PrepStrategy::VerifyOnly.register_size(), 14);
        assert_eq!(PrepStrategy::CorrectOnly.register_size(), 21);
        assert_eq!(PrepStrategy::VerifyAndCorrect.register_size(), 28);
    }

    #[test]
    fn paper_rates_are_ordered() {
        assert!(
            PrepStrategy::VerifyAndCorrect.paper_error_rate()
                < PrepStrategy::VerifyOnly.paper_error_rate()
        );
        assert!(
            PrepStrategy::VerifyOnly.paper_error_rate()
                < PrepStrategy::CorrectOnly.paper_error_rate()
        );
        assert!(
            PrepStrategy::CorrectOnly.paper_error_rate() < PrepStrategy::Basic.paper_error_rate()
        );
    }
}
