//! The QEC step applied to *data* qubits (Fig 2): bit correction then
//! phase correction, each consuming one high-fidelity encoded zero.
//!
//! For long-lived data, discarding is not an option, so corrections are
//! always applied. This module also provides the ablation experiment
//! behind the paper's motivation: the logical error rate accumulated by
//! a data qubit per QEC step as a function of the ancilla preparation
//! strategy feeding it.

use crate::code::SteaneCode;
use crate::correct::{bit_correct, phase_correct, CorrectionPolicy};
use crate::encoder::{encode_zero, EncoderMovement};
use crate::executor::Executor;
use crate::prep::{run_prep_in, PrepOutcome, PrepStrategy};
use qods_phys::error_model::ErrorModel;
use qods_phys::montecarlo::{run_trials_parallel, MonteCarloStats, TrialArena, TrialOutcome};
use qods_phys::pauli::Pauli;
use rand::Rng;

/// Runs one QEC step on `data` using two fresh encoded-zero ancillae
/// whose residual errors are injected from the masks given (as produced
/// by a preparation strategy). Returns nothing; the data block's frame
/// carries the result.
pub fn qec_step<R: Rng>(
    ex: &mut Executor<'_, R>,
    data: &[usize; 7],
    anc_bit: &[usize; 7],
    anc_phase: &[usize; 7],
) {
    let _ = bit_correct(ex, data, anc_bit, CorrectionPolicy::Apply);
    let _ = phase_correct(ex, data, anc_phase, CorrectionPolicy::Apply);
}

/// Monte-Carlo estimate of the probability that a *clean* data block
/// picks up an uncorrectable error from a single QEC step fed by
/// ancillae prepared under `strategy`.
///
/// This is the paper's motivation for high-fidelity ancillae made
/// quantitative: ancilla residuals either mis-steer the syndrome or
/// deposit directly onto the data.
pub fn data_error_per_qec(
    strategy: PrepStrategy,
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> MonteCarloStats {
    let code = SteaneCode::new();
    run_trials_parallel(trials, seed, threads, |rng, arena| {
        // Draw two delivered ancillae from the strategy (redrawing on
        // discard, like a factory would — the chunked work-stealing
        // runner absorbs the uneven retry cost across workers).
        let draw = |rng: &mut rand::rngs::StdRng, arena: &mut TrialArena| loop {
            if let (PrepOutcome::Delivered { x, z }, _) = run_prep_in(strategy, model, rng, arena) {
                return (x, z);
            }
        };
        let (bx, bz) = draw(rng, arena);
        let (cx, cz) = draw(rng, arena);

        // Fresh register: data + two ancilla blocks.
        let mut ex = Executor::in_arena(21, model, rng, arena);
        let data = [0, 1, 2, 3, 4, 5, 6];
        let anc_b = [7, 8, 9, 10, 11, 12, 13];
        let anc_c = [14, 15, 16, 17, 18, 19, 20];
        // Data: ideal encoded state (we study only what QEC *adds*).
        encode_zero(&mut ex, &data, EncoderMovement::default());
        // Materialize the ancillae with their delivered residuals.
        encode_zero(&mut ex, &anc_b, EncoderMovement::default());
        encode_zero(&mut ex, &anc_c, EncoderMovement::default());
        for i in 0..7 {
            if bx & (1 << i) != 0 {
                ex.inject(anc_b[i], Pauli::X);
            }
            if bz & (1 << i) != 0 {
                ex.inject(anc_b[i], Pauli::Z);
            }
            if cx & (1 << i) != 0 {
                ex.inject(anc_c[i], Pauli::X);
            }
            if cz & (1 << i) != 0 {
                ex.inject(anc_c[i], Pauli::Z);
            }
        }
        // NOTE: the blocks above were (re-)encoded under the noisy
        // model, so the experiment includes interaction noise too.
        qec_step(&mut ex, &data, &anc_b, &anc_c);
        // Ideal final decode of the data block.
        let x = ex.x_mask(&data);
        let z = ex.z_mask(&data);
        TrialOutcome::Accepted {
            logical_error: code.uncorrectable_xz(x, z),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_qec_step_is_identity_on_clean_data() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ex = Executor::new(21, ErrorModel::noiseless(), &mut rng);
        let data = [0, 1, 2, 3, 4, 5, 6];
        let b = [7, 8, 9, 10, 11, 12, 13];
        let c = [14, 15, 16, 17, 18, 19, 20];
        encode_zero(&mut ex, &data, EncoderMovement::default());
        encode_zero(&mut ex, &b, EncoderMovement::default());
        encode_zero(&mut ex, &c, EncoderMovement::default());
        qec_step(&mut ex, &data, &b, &c);
        assert_eq!(ex.x_mask(&data), 0);
        assert_eq!(ex.z_mask(&data), 0);
    }

    #[test]
    fn noiseless_qec_fixes_single_data_errors() {
        for q in 0..7 {
            for p in [Pauli::X, Pauli::Z, Pauli::Y] {
                let mut rng = StdRng::seed_from_u64(42);
                let mut ex = Executor::new(21, ErrorModel::noiseless(), &mut rng);
                let data = [0, 1, 2, 3, 4, 5, 6];
                let b = [7, 8, 9, 10, 11, 12, 13];
                let c = [14, 15, 16, 17, 18, 19, 20];
                encode_zero(&mut ex, &data, EncoderMovement::default());
                encode_zero(&mut ex, &b, EncoderMovement::default());
                encode_zero(&mut ex, &c, EncoderMovement::default());
                ex.inject(q, p);
                qec_step(&mut ex, &data, &b, &c);
                assert_eq!(ex.x_mask(&data), 0, "X residue for {p:?} on {q}");
                assert_eq!(ex.z_mask(&data), 0, "Z residue for {p:?} on {q}");
            }
        }
    }

    #[test]
    fn better_ancillae_give_cleaner_data() {
        // Smoke-sized Monte Carlo: verify-and-correct ancillae must not
        // be worse than basic ancillae for the data.
        let model = ErrorModel::paper().scaled(20.0); // inflate for cheap stats
        let basic = data_error_per_qec(PrepStrategy::Basic, model, 1500, 7, 2);
        let vc = data_error_per_qec(PrepStrategy::VerifyAndCorrect, model, 1500, 7, 2);
        assert!(
            vc.error_rate() <= basic.error_rate() + 0.01,
            "v&c {} vs basic {}",
            vc.error_rate(),
            basic.error_rate()
        );
    }
}
