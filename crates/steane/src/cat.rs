//! Cat (GHZ) state preparation.
//!
//! Verification of an encoded zero uses a 3-qubit cat state ("Cat
//! Prep" in Fig 4); the pi/8-ancilla gadget uses a 7-qubit cat state
//! (Fig 5b). A cat state over n qubits is |0...0> + |1...1>, prepared
//! by a Hadamard followed by a CX chain.

use crate::executor::Executor;
use rand::Rng;

/// Prepares a cat state over the given qubits (first qubit is the
/// Hadamard root; CXs chain root -> next -> next...).
///
/// The chain layout matches the factory cat-prep unit (Fig 13d):
/// 2 sequential CXs for the 3-qubit cat, 6 for the 7-qubit cat.
pub fn prepare_cat<R: Rng>(ex: &mut Executor<'_, R>, qubits: &[usize]) {
    assert!(qubits.len() >= 2, "cat state needs at least two qubits");
    // Cats in this study are 3 or 7 qubits; a fixed link buffer keeps
    // the CX chain a single batched fault scan.
    assert!(qubits.len() <= 8, "cat chain buffer holds 7 links");
    ex.prep_all(qubits);
    ex.h(qubits[0]);
    let mut links = [(0usize, 0usize); 7];
    for (link, w) in links.iter_mut().zip(qubits.windows(2)) {
        *link = (w[0], w[1]);
    }
    ex.cx_all(&links[..qubits.len() - 1]);
}

/// Movement charged to cat qubits travelling from the cat-prep unit to
/// the verification site. From the factory layout (Fig 13d/e): each cat
/// qubit crosses the crossbar (2 turns) and a couple of straight
/// channels.
pub fn shuttle_cat<R: Rng>(ex: &mut Executor<'_, R>, qubits: &[usize], moves: u32, turns: u32) {
    // The cat travels as one convoy: all straight moves, then all
    // turns, each as a single batched fault scan.
    ex.moves_multi(qubits, moves);
    ex.turns_multi(qubits, turns);
}

/// Prepares a cat state and checks its two end qubits against each
/// other through an auxiliary qubit (`aux` is measured and recycled).
///
/// A *partial* branch flip (an X error on a suffix of the chain) is the
/// dangerous cat fault: used in a verification gadget it deposits a
/// correlated Z pattern onto the block being verified. The end check
/// catches every suffix flip except the full branch flip — which is the
/// GHZ stabilizer and therefore benign. Retries until the check
/// passes (the factory recycles flagged cats from the same stateless
/// pool; `max_retries` only guards against pathological error rates).
///
/// Returns `false` if the cat could not be prepared within the retry
/// budget (callers discard the surrounding block attempt).
pub fn prepare_verified_cat<R: Rng>(
    ex: &mut Executor<'_, R>,
    qubits: &[usize],
    aux: usize,
    max_retries: u32,
) -> bool {
    for _ in 0..=max_retries {
        prepare_cat(ex, qubits);
        ex.prep(aux);
        ex.cx_all(&[
            // qods-lint: allow(P1) -- proven invariant: callers pass the code's fixed non-empty qubit set
            (*qubits.first().expect("cat is non-empty"), aux),
            // qods-lint: allow(P1) -- proven invariant: callers pass the code's fixed non-empty qubit set
            (*qubits.last().expect("cat is non-empty"), aux),
        ]);
        if !ex.measure_z(aux) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_phys::error_model::ErrorModel;
    use qods_phys::pauli::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_cat_is_clean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ex = Executor::new(3, ErrorModel::noiseless(), &mut rng);
        prepare_cat(&mut ex, &[0, 1, 2]);
        for q in 0..3 {
            assert_eq!(ex.frame().error_at(q), Pauli::I);
        }
        assert_eq!(ex.counts().two_qubit_gates, 2);
        assert_eq!(ex.counts().one_qubit_gates, 1);
    }

    #[test]
    fn seven_cat_uses_six_cx() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        prepare_cat(&mut ex, &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(ex.counts().two_qubit_gates, 6);
    }

    #[test]
    fn root_fault_spreads_to_whole_cat() {
        // An X on the root before the chain becomes X on every qubit —
        // in a real cat this is the branch-flip, which verification
        // tolerates (it only flips which GHZ branch is measured).
        let mut rng = StdRng::seed_from_u64(5);
        let mut ex = Executor::new(3, ErrorModel::noiseless(), &mut rng);
        for q in 0..3 {
            ex.prep(q);
        }
        ex.h(0);
        ex.inject(0, Pauli::X);
        ex.cx(0, 1);
        ex.cx(1, 2);
        for q in 0..3 {
            assert!(ex.frame().error_at(q).has_x());
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_qubit_cat_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ex = Executor::new(1, ErrorModel::noiseless(), &mut rng);
        prepare_cat(&mut ex, &[0]);
    }
}
