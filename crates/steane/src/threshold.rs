//! Error-rate scaling sweeps: how each preparation circuit's delivered
//! quality responds to the physical error rate.
//!
//! The paper fixes p_gate = 1e-4; this extension sweeps the scale to
//! expose the structural difference between the circuits: the basic
//! and verify-only circuits degrade linearly in p (first-order fault
//! paths), while verify-and-correct degrades quadratically until its
//! second-order floor crosses the first-order circuits — the
//! pseudo-threshold structure familiar from Steane's overhead analyses
//! (the paper's [4]).

use crate::eval::{evaluate_prep, PrepEvaluation};
use crate::prep::PrepStrategy;
use qods_phys::error_model::ErrorModel;

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdPoint {
    /// Multiplier applied to the paper's error rates.
    pub scale: f64,
    /// The resulting physical gate error probability.
    pub p_gate: f64,
    /// Evaluation at this scale.
    pub eval: PrepEvaluation,
}

/// Sweeps `scales` (multipliers on the paper's p_gate = 1e-4) for one
/// strategy.
pub fn threshold_sweep(
    strategy: PrepStrategy,
    scales: &[f64],
    trials: u64,
    seed: u64,
    threads: usize,
) -> Vec<ThresholdPoint> {
    scales
        .iter()
        .map(|&scale| {
            let model = ErrorModel::paper().scaled(scale);
            ThresholdPoint {
                scale,
                p_gate: model.p_gate,
                eval: evaluate_prep(strategy, model, trials, seed, threads),
            }
        })
        .collect()
}

/// Fits the scaling exponent of the uncorrectable rate between two
/// sweep points: `rate ~ p^alpha` gives
/// `alpha = log(r2/r1) / log(p2/p1)`. Returns `None` when either rate
/// resolved to zero.
pub fn scaling_exponent(a: &ThresholdPoint, b: &ThresholdPoint) -> Option<f64> {
    let (r1, r2) = (a.eval.error_rate(), b.eval.error_rate());
    if r1 <= 0.0 || r2 <= 0.0 {
        return None;
    }
    Some((r2 / r1).ln() / (b.p_gate / a.p_gate).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_prep_scales_linearly() {
        let pts = threshold_sweep(PrepStrategy::Basic, &[10.0, 40.0], 30_000, 5, 4);
        let alpha = scaling_exponent(&pts[0], &pts[1]).expect("rates resolved");
        assert!(
            (0.7..1.4).contains(&alpha),
            "basic prep exponent {alpha}, expected ~1"
        );
    }

    #[test]
    fn verify_and_correct_scales_superlinearly() {
        let pts = threshold_sweep(PrepStrategy::VerifyAndCorrect, &[30.0, 100.0], 60_000, 5, 4);
        match scaling_exponent(&pts[0], &pts[1]) {
            Some(alpha) => assert!(alpha > 1.3, "v&c exponent {alpha}, expected ~2"),
            // At these sizes the low-scale point may resolve to zero —
            // itself evidence of super-linear suppression.
            None => assert!(pts[0].eval.error_rate() < 1e-3),
        }
    }

    #[test]
    fn discard_rate_grows_with_noise() {
        let pts = threshold_sweep(PrepStrategy::VerifyOnly, &[5.0, 50.0], 10_000, 5, 4);
        assert!(pts[1].eval.discard_rate() > pts[0].eval.discard_rate());
    }
}
