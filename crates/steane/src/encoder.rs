//! The basic encoded-zero preparation circuit (Fig 3b).
//!
//! Seven physical |0> preparations, Hadamards on the three "pivot"
//! qubits {0, 1, 3} (positions 1, 2, 4 in Hamming numbering — the
//! powers of two), then nine CX gates arranged in three fully parallel
//! rounds of three, exactly the structure shown in the paper's figure
//! ("the first three CX's can be performed in parallel, as can the next
//! three, followed by the final three").
//!
//! Each control fans out over the support of one parity check, so the
//! final state is the uniform superposition over the even Hamming
//! subcode — the Steane |0_L>.

use crate::executor::Executor;
use rand::Rng;

/// The qubits receiving Hadamards (fan-out controls).
pub const CONTROLS: [usize; 3] = [0, 1, 3];

/// The nine encoder CX gates as (control, target) pairs, grouped into
/// three rounds that each touch six distinct qubits (so each round is
/// one two-qubit gate time).
pub const CX_ROUNDS: [[(usize, usize); 3]; 3] = [
    [(0, 2), (1, 5), (3, 6)],
    [(0, 4), (1, 6), (3, 5)],
    [(0, 6), (1, 2), (3, 4)],
];

/// Movement budget charged while running the encoder inside a factory
/// row. The paper's hand-optimized simple-factory schedule spends 8
/// turns and 30 straight moves across the *whole* verify-and-correct
/// prep (§4.3); the share attributed to one basic encode is small. We
/// charge 2 turns + 6 moves per block, spread across the CX rounds, so
/// Monte-Carlo results include movement error at the paper's scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderMovement {
    /// Straight moves per CX round (applied to the round's controls).
    pub moves_per_round: u32,
    /// Turns per CX round.
    pub turns_per_round: u32,
}

impl Default for EncoderMovement {
    fn default() -> Self {
        // 3 rounds x 2 moves = 6 moves; 3 rounds x ~2/3 turn ~ 2 turns.
        EncoderMovement {
            moves_per_round: 2,
            turns_per_round: 1,
        }
    }
}

/// Runs the basic encoded-zero prepare on the 7 physical qubits in
/// `block` (indices into the executor's register).
///
/// After this call, `block` holds |0_L> up to the accumulated Pauli
/// frame errors.
pub fn encode_zero<R: Rng>(
    ex: &mut Executor<'_, R>,
    block: &[usize; 7],
    movement: EncoderMovement,
) {
    ex.prep_all(block);
    ex.h_all(&CONTROLS.map(|c| block[c]));
    for round in &CX_ROUNDS {
        ex.cx_all(&round.map(|(c, t)| (block[c], block[t])));
        // Charge the round's movement to the fan-out controls: they are
        // the qubits shuttling between gate locations.
        for &(c, _) in round.iter().take(1) {
            ex.moves(block[c], movement.moves_per_round);
            ex.turns(block[c], movement.turns_per_round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{SteaneCode, CHECKS};
    use qods_phys::error_model::ErrorModel;
    use qods_phys::pauli::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BLOCK: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];

    #[test]
    fn rounds_cover_all_nine_edges_with_disjoint_rounds() {
        let mut edges = std::collections::HashSet::new();
        for round in &CX_ROUNDS {
            let mut touched = std::collections::HashSet::new();
            for &(c, t) in round {
                assert!(touched.insert(c), "round reuses qubit {c}");
                assert!(touched.insert(t), "round reuses qubit {t}");
                edges.insert((c, t));
            }
        }
        assert_eq!(edges.len(), 9);
        // Each control fans out over its check support minus itself.
        for (ci, &c) in CONTROLS.iter().enumerate() {
            let check = CHECKS[2 - ci]; // control 0 -> g2, 1 -> g1, 3 -> g0
            assert_ne!(check & (1 << c), 0, "control {c} not in its check");
            for t in 0..7 {
                if t != c && check & (1 << t) != 0 {
                    assert!(edges.contains(&(c, t)), "missing edge {c}->{t}");
                }
            }
        }
    }

    #[test]
    fn noiseless_encode_leaves_clean_block() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        assert_eq!(ex.x_mask(&BLOCK), 0);
        assert_eq!(ex.z_mask(&BLOCK), 0);
        // 7 preps + 3 H + 9 CX.
        assert_eq!(ex.counts().preps, 7);
        assert_eq!(ex.counts().one_qubit_gates, 3);
        assert_eq!(ex.counts().two_qubit_gates, 9);
    }

    #[test]
    fn early_control_fault_becomes_stabilizer() {
        // X on a control before its fan-out spreads to the full check
        // support = an X-stabilizer = harmless.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        for &q in &BLOCK {
            ex.prep(q);
        }
        for &c in &CONTROLS {
            ex.h(BLOCK[c]);
        }
        ex.inject(0, Pauli::X);
        for round in &CX_ROUNDS {
            for &(c, t) in round {
                ex.cx(BLOCK[c], BLOCK[t]);
            }
        }
        let code = SteaneCode::new();
        let x = ex.x_mask(&BLOCK);
        assert_eq!(x, CHECKS[2]); // full fan-out of control 0
        assert_eq!(code.syndrome(x), 0);
        assert!(!code.uncorrectable(x));
    }

    #[test]
    fn late_control_fault_is_uncorrectable() {
        // X on a control with one CX remaining yields a weight-2 error,
        // which mis-decodes to a logical operator.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        for &q in &BLOCK {
            ex.prep(q);
        }
        for &c in &CONTROLS {
            ex.h(BLOCK[c]);
        }
        for (i, round) in CX_ROUNDS.iter().enumerate() {
            if i == 2 {
                ex.inject(0, Pauli::X);
            }
            for &(c, t) in round {
                ex.cx(BLOCK[c], BLOCK[t]);
            }
        }
        let code = SteaneCode::new();
        let x = ex.x_mask(&BLOCK);
        assert_eq!(x.count_ones(), 2);
        assert!(code.uncorrectable(x));
    }
}
