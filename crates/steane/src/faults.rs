//! Exhaustive single-fault enumeration — a deterministic complement to
//! the Monte-Carlo evaluation.
//!
//! Instead of sampling faults, this module injects every fault the
//! error model can produce, at every location of the basic encoding
//! circuit, exactly once: an X flip at each preparation, each of the 3
//! Paulis after each Hadamard, and each of the 15 two-qubit Paulis
//! after each CX. Classifying the delivered block pins down *which*
//! fault paths dominate the failure rate (the §2.3 discussion made
//! quantitative) and yields an exact leading-order prediction that the
//! Monte-Carlo results must extrapolate to at low p.

use crate::code::SteaneCode;
use crate::encoder::{CONTROLS, CX_ROUNDS};
use crate::executor::Executor;
use qods_phys::error_model::ErrorModel;
use qods_phys::pauli::Pauli;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One enumerated fault: where it strikes and what it applies.
#[derive(Debug, Clone)]
pub struct FaultPath {
    /// Index of the circuit step the fault follows.
    pub step: usize,
    /// (qubit, Pauli) components of the fault.
    pub pauli: Vec<(usize, Pauli)>,
    /// Probability weight of this fault *given* a fault at this
    /// location (1.0 for prep-X, 1/3 for one-qubit, 1/15 for
    /// two-qubit choices).
    pub weight: f64,
    /// Residual X mask on the delivered block.
    pub x: u8,
    /// Residual Z mask on the delivered block.
    pub z: u8,
}

/// Classification tallies over all enumerated faults.
#[derive(Debug, Clone, Default)]
pub struct FaultCensus {
    /// All enumerated fault paths with their outcomes.
    pub paths: Vec<FaultPath>,
}

impl FaultCensus {
    /// Number of enumerated fault paths.
    pub fn total(&self) -> usize {
        self.paths.len()
    }

    /// Probability-weighted count of harmful locations: multiplying by
    /// the per-location fault probability p gives the leading-order
    /// uncorrectable rate.
    pub fn harmful_weight(&self) -> f64 {
        let code = SteaneCode::new();
        self.paths
            .iter()
            .filter(|f| code.ancilla_uncorrectable(f.x, f.z))
            .map(|f| f.weight)
            .sum()
    }

    /// Weighted count of benign (invisible) faults.
    pub fn benign_weight(&self) -> f64 {
        let code = SteaneCode::new();
        self.paths
            .iter()
            .filter(|f| {
                f.x == 0 && f.z == 0
                    || (code.syndrome(f.x) == 0
                        && f.x.count_ones() % 2 == 0
                        && code.syndrome(f.z) == 0)
            })
            .map(|f| f.weight)
            .sum()
    }

    /// Leading-order prediction of the uncorrectable rate at fault
    /// probability `p` per operation.
    pub fn predicted_rate(&self, p: f64) -> f64 {
        p * self.harmful_weight()
    }
}

/// The encoder as a step list: which qubits each step touches.
fn encoder_steps() -> Vec<Vec<usize>> {
    let mut steps = Vec::new();
    for q in 0..7 {
        steps.push(vec![q]); // prep
    }
    for &c in &CONTROLS {
        steps.push(vec![c]); // H
    }
    for round in &CX_ROUNDS {
        for &(c, t) in round {
            steps.push(vec![c, t]); // CX
        }
    }
    steps
}

fn run_with_fault(step: usize, fault: &[(usize, Pauli)]) -> (u8, u8) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
    let block = [0, 1, 2, 3, 4, 5, 6];
    let mut s = 0usize;
    let maybe = |ex: &mut Executor<'_, StdRng>, s: usize| {
        if s == step {
            for &(q, p) in fault {
                ex.inject(q, p);
            }
        }
    };
    for &q in &block {
        ex.prep(q);
        maybe(&mut ex, s);
        s += 1;
    }
    for &c in &CONTROLS {
        ex.h(block[c]);
        maybe(&mut ex, s);
        s += 1;
    }
    for round in &CX_ROUNDS {
        for &(c, t) in round {
            ex.cx(block[c], block[t]);
            maybe(&mut ex, s);
            s += 1;
        }
    }
    (ex.x_mask(&block), ex.z_mask(&block))
}

/// Enumerates every single fault the error model can inject into the
/// basic encoder (Fig 3b), with exact probability weights.
pub fn enumerate_basic_encoder_faults() -> FaultCensus {
    let steps = encoder_steps();
    let mut census = FaultCensus::default();
    for (step, qubits) in steps.iter().enumerate() {
        let choices: Vec<(Vec<(usize, Pauli)>, f64)> = if step < 7 {
            // Preparation fault: the flipped state = X, probability 1.
            vec![(vec![(qubits[0], Pauli::X)], 1.0)]
        } else if qubits.len() == 1 {
            Pauli::NON_IDENTITY
                .iter()
                .map(|&p| (vec![(qubits[0], p)], 1.0 / 3.0))
                .collect()
        } else {
            // 15 non-identity two-qubit Paulis.
            let mut v = Vec::new();
            for pa in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
                for pb in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
                    if pa == Pauli::I && pb == Pauli::I {
                        continue;
                    }
                    let mut f = Vec::new();
                    if pa != Pauli::I {
                        f.push((qubits[0], pa));
                    }
                    if pb != Pauli::I {
                        f.push((qubits[1], pb));
                    }
                    v.push((f, 1.0 / 15.0));
                }
            }
            v
        };
        for (fault, weight) in choices {
            let (x, z) = run_with_fault(step, &fault);
            census.paths.push(FaultPath {
                step,
                pauli: fault,
                weight,
                x,
                z,
            });
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_covers_all_locations() {
        let c = enumerate_basic_encoder_faults();
        // 7 prep-X + 3 H x 3 Paulis + 9 CX x 15 Paulis.
        assert_eq!(c.total(), 7 + 9 + 135);
        // Weights sum to the number of fault locations.
        let w: f64 = c.paths.iter().map(|p| p.weight).sum();
        assert!((w - 19.0).abs() < 1e-9);
    }

    #[test]
    fn single_faults_are_mostly_tolerable() {
        let c = enumerate_basic_encoder_faults();
        let harmful = c.harmful_weight();
        assert!(harmful > 0.0, "some fault paths must be harmful");
        assert!(harmful < 19.0 * 0.4, "too many harmful paths: {harmful}");
        assert!(c.benign_weight() > 0.0, "stabilizer absorption must occur");
    }

    #[test]
    fn census_predicts_monte_carlo_leading_order() {
        // The enumeration is the exact first-order term of the MC
        // model (movement disabled); at p = 1e-3 second-order effects
        // are at the percent level, so agreement must be tight.
        use crate::eval::evaluate_prep;
        use crate::prep::PrepStrategy;
        let census = enumerate_basic_encoder_faults();
        let p = 1e-3;
        let predicted = census.predicted_rate(p);
        let measured = evaluate_prep(
            PrepStrategy::Basic,
            ErrorModel {
                p_gate: p,
                p_move: 0.0,
                ..ErrorModel::noiseless()
            },
            200_000,
            13,
            4,
        )
        .error_rate();
        let ratio = measured / predicted;
        assert!(
            (0.8..1.25).contains(&ratio),
            "prediction {predicted:.3e} vs measured {measured:.3e} (ratio {ratio:.2})"
        );
    }
}
