//! The [[7,1,3]] Steane CSS code: stabilizers, syndromes, decoding, and
//! logical-error classification.
//!
//! The code is built from the classical [7,4,3] Hamming code. With
//! qubits indexed 0..6, the three parity checks (both the X-type and
//! Z-type stabilizer generators share these supports, because the
//! Hamming code contains its dual) are:
//!
//! ```text
//! g0 = {3,4,5,6}    g1 = {1,2,5,6}    g2 = {0,2,4,6}
//! ```
//!
//! The columns of this check matrix enumerate 1..7 in binary, so a
//! syndrome *is* the (1-indexed) position of a single faulty qubit —
//! the classic Hamming decoding trick.

/// Number of physical qubits per encoded qubit.
pub const BLOCK: usize = 7;

/// The three parity-check supports as 7-bit masks (qubit i = bit i).
pub const CHECKS: [u8; 3] = [0b111_1000, 0b110_0110, 0b101_0101];

/// Support of the weight-3 logical Z (and logical X) representative
/// used for cat-state verification: qubits {2,4,5}.
pub const LOGICAL_SUPPORT: u8 = 0b011_0100;

/// Two independent weight-3 logical-Z representatives measured by the
/// verification stage (Fig 4 shows one cat-prep/verify unit per check).
/// The second is `LOGICAL_SUPPORT` times the first stabilizer check:
/// qubits {2,3,6}.
pub const VERIFY_SUPPORTS: [u8; 2] = [LOGICAL_SUPPORT, 0b100_1100];

/// The [[7,1,3]] Steane code.
///
/// The struct is stateless; it exists so call sites read naturally and
/// so alternative codes could slot in behind the same shape later.
///
/// # Example
///
/// ```
/// use qods_steane::code::SteaneCode;
///
/// let code = SteaneCode::new();
/// // Any weight-2 error pattern mis-decodes to a logical operator.
/// let e = 0b0000011u8;
/// let residual = e ^ code.decode(e);
/// assert!(code.is_logical(residual));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteaneCode;

/// `syndrome_const(e)` for every 7-bit pattern, so the hot-path lookup
/// is one indexed load (the Monte-Carlo evaluations classify every
/// accepted trial).
const SYNDROMES: [u8; 128] = {
    let mut t = [0u8; 128];
    let mut e = 0usize;
    while e < 128 {
        t[e] = syndrome_const(e as u8);
        e += 1;
    }
    t
};

/// Bit `e` set = pattern `e` decodes to a logical residual
/// ([`SteaneCode::uncorrectable`] as a 128-entry bitset).
const UNCORRECTABLE: u128 = {
    let mut bits = 0u128;
    let mut e = 0usize;
    while e < 128 {
        let s = syndrome_const(e as u8);
        let correction = if s == 0 { 0 } else { 1u8 << (s - 1) };
        let residual = (e as u8) ^ correction;
        if residual.count_ones() % 2 == 1 {
            bits |= 1 << e;
        }
        e += 1;
    }
    bits
};

const fn syndrome_const(error: u8) -> u8 {
    let mut s = 0u8;
    let mut i = 0usize;
    while i < 3 {
        let parity = (error & CHECKS[i]).count_ones() % 2;
        s |= (parity as u8) << (2 - i);
        i += 1;
    }
    s
}

impl SteaneCode {
    /// Creates the code descriptor.
    pub fn new() -> Self {
        SteaneCode
    }

    /// The syndrome of a 7-bit error pattern: three parity bits,
    /// packed so the value equals the 1-indexed qubit position for
    /// single errors (0 means "no error detected").
    #[inline]
    pub fn syndrome(&self, error: u8) -> u8 {
        SYNDROMES[(error & 0x7f) as usize]
    }

    /// The minimum-weight correction for the observed error pattern:
    /// a mask with at most one bit set.
    pub fn decode(&self, error: u8) -> u8 {
        self.correction_for_syndrome(self.syndrome(error))
    }

    /// The correction mask implied by a syndrome value.
    pub fn correction_for_syndrome(&self, syndrome: u8) -> u8 {
        if syndrome == 0 {
            0
        } else {
            1 << (syndrome - 1)
        }
    }

    /// True when `pattern` (a syndrome-zero residual) implements a
    /// logical operator rather than a stabilizer.
    ///
    /// The X-part of the stabilizer group is the even-weight subcode of
    /// the Hamming code; the logical coset is the odd-weight half, so
    /// parity separates them.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `pattern` has a nonzero syndrome, i.e. is not
    /// a codeword at all.
    pub fn is_logical(&self, pattern: u8) -> bool {
        debug_assert_eq!(
            self.syndrome(pattern),
            0,
            "is_logical expects a syndrome-zero residual"
        );
        pattern.count_ones() % 2 == 1
    }

    /// True when the error pattern, after ideal minimum-weight
    /// decoding, leaves a logical operator on the block. This is the
    /// "uncorrectable error" notion used throughout §2. (A bitset
    /// lookup; the table is computed at compile time from the checks.)
    #[inline]
    pub fn uncorrectable(&self, error: u8) -> bool {
        (UNCORRECTABLE >> (error & 0x7f)) & 1 == 1
    }

    /// True when an X/Z error pair on a block is uncorrectable in
    /// either component (each CSS component decodes independently).
    pub fn uncorrectable_xz(&self, x_error: u8, z_error: u8) -> bool {
        self.uncorrectable(x_error) || self.uncorrectable(z_error)
    }

    /// Harm classification for a *delivered encoded-zero ancilla*.
    ///
    /// An encoded zero is harmful when using it in a QEC step can leave
    /// a logical error on the corrected data qubit:
    ///
    /// * An uncorrectable **X**-part is harmful: in the phase-correction
    ///   role the ancilla's X errors deposit wholesale onto the data
    ///   (CX back-action), and a logical-X-class pattern survives the
    ///   data's next decode. This includes the pure logical-X class —
    ///   `X_L |0_L> = |1_L>` is a genuinely different state.
    /// * A **Z**-part with *nonzero syndrome* that decodes to a logical
    ///   residue is harmful (it deposits onto data during bit
    ///   correction and then mis-corrects).
    /// * A **Z**-part in the *logical-Z class* (zero syndrome, odd
    ///   parity) is **harmless**: `Z_L |0_L> = |0_L>` exactly, so the
    ///   delivered state is identical to a clean ancilla. Counting it
    ///   as an error would overstate every preparation circuit's
    ///   failure rate.
    #[inline]
    pub fn ancilla_uncorrectable(&self, x_error: u8, z_error: u8) -> bool {
        if self.uncorrectable(x_error) {
            return true;
        }
        self.syndrome(z_error) != 0 && self.uncorrectable(z_error)
    }

    /// True when a delivered encoded-zero carries *any* non-benign
    /// residual error, correctable or not.
    ///
    /// Benign residuals are: an X-part in the stabilizer group
    /// (syndrome 0, even parity) and a Z-part in the stabilizer group
    /// *or* logical-Z class (`Z_L |0_L> = |0_L>`). Everything else is a
    /// physical deviation from a clean |0_L>; a consumer must spend a
    /// later QEC round cleaning up after it. This is the broader
    /// "delivered dirty" metric, reported next to
    /// [`SteaneCode::ancilla_uncorrectable`] in the Fig 4 reproduction
    /// (the paper's basic-prep rate of 1.8e-3 tracks this notion —
    /// it is close to the circuit's entire fault budget).
    #[inline]
    pub fn ancilla_dirty(&self, x_error: u8, z_error: u8) -> bool {
        let x_benign = self.syndrome(x_error) == 0 && x_error.count_ones().is_multiple_of(2);
        let z_benign = self.syndrome(z_error) == 0;
        !(x_benign && z_benign)
    }
}

#[cfg(test)]
mod lut_tests {
    use super::*;

    /// The compile-time tables must equal the definitional computation
    /// for every 7-bit pattern.
    #[test]
    fn tables_match_definitions() {
        let code = SteaneCode::new();
        for e in 0u8..128 {
            let mut s = 0u8;
            for (i, check) in CHECKS.iter().enumerate() {
                let parity = (e & check).count_ones() % 2;
                s |= (parity as u8) << (2 - i);
            }
            assert_eq!(code.syndrome(e), s, "syndrome({e})");
            let residual = e ^ code.correction_for_syndrome(s);
            assert_eq!(
                code.uncorrectable(e),
                residual.count_ones() % 2 == 1,
                "uncorrectable({e})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checks_pairwise_even_overlap() {
        // CSS condition: X and Z stabilizers share supports, so every
        // pair of checks must overlap evenly for them to commute.
        for (i, &ci) in CHECKS.iter().enumerate() {
            for (j, &cj) in CHECKS.iter().enumerate() {
                let overlap = (ci & cj).count_ones();
                if i != j {
                    assert_eq!(overlap % 2, 0, "checks {i},{j} anticommute");
                } else {
                    assert_eq!(overlap % 2, 0, "check {i} must be even weight");
                }
            }
        }
    }

    #[test]
    fn logical_support_commutes_with_checks_and_is_not_stabilizer() {
        for (i, check) in CHECKS.iter().enumerate() {
            assert_eq!(
                (LOGICAL_SUPPORT & check).count_ones() % 2,
                0,
                "logical rep anticommutes with check {i}"
            );
        }
        let code = SteaneCode::new();
        assert_eq!(code.syndrome(LOGICAL_SUPPORT), 0);
        assert!(code.is_logical(LOGICAL_SUPPORT));
    }

    #[test]
    fn syndrome_identifies_every_single_error() {
        let code = SteaneCode::new();
        for q in 0..7 {
            let e = 1u8 << q;
            assert_eq!(code.syndrome(e), q as u8 + 1, "qubit {q}");
            assert_eq!(code.decode(e), e);
            assert!(!code.uncorrectable(e));
        }
    }

    #[test]
    fn all_weight_two_errors_are_uncorrectable() {
        let code = SteaneCode::new();
        for a in 0..7 {
            for b in (a + 1)..7 {
                let e = (1u8 << a) | (1u8 << b);
                assert!(code.uncorrectable(e), "weight-2 error {e:#09b}");
            }
        }
    }

    #[test]
    fn stabilizers_are_harmless() {
        let code = SteaneCode::new();
        // Every element of the span of the checks decodes to nothing.
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    let e = (CHECKS[0] * a) ^ (CHECKS[1] * b) ^ (CHECKS[2] * c);
                    assert_eq!(code.syndrome(e), 0);
                    assert!(!code.uncorrectable(e), "stabilizer {e:#09b} flagged");
                }
            }
        }
    }

    #[test]
    fn logical_coset_is_odd_weight() {
        let code = SteaneCode::new();
        // Logical X (all ones) times any stabilizer stays logical.
        for a in 0..2u8 {
            for b in 0..2u8 {
                let e = 0b111_1111 ^ (CHECKS[0] * a) ^ (CHECKS[1] * b);
                assert_eq!(code.syndrome(e), 0);
                assert!(code.uncorrectable(e));
            }
        }
    }

    #[test]
    fn verify_supports_are_independent_logical_reps() {
        let code = SteaneCode::new();
        for (k, s) in VERIFY_SUPPORTS.iter().enumerate() {
            assert_eq!(s.count_ones(), 3, "support {k} not weight 3");
            assert_eq!(code.syndrome(*s), 0, "support {k} not a codeword");
            assert!(code.is_logical(*s), "support {k} not logical");
        }
        // Their product must be a (nontrivial) stabilizer, i.e. the two
        // checks are distinct representatives of the same logical class.
        let prod = VERIFY_SUPPORTS[0] ^ VERIFY_SUPPORTS[1];
        assert_ne!(prod, 0);
        assert_eq!(code.syndrome(prod), 0);
        assert!(!code.is_logical(prod));
    }

    #[test]
    fn ancilla_harm_ignores_pure_logical_z() {
        let code = SteaneCode::new();
        // Z_L on |0_L> is the identical state: harmless.
        assert!(!code.ancilla_uncorrectable(0, 0b111_1111));
        assert!(!code.ancilla_uncorrectable(0, LOGICAL_SUPPORT));
        // ...but logical X means the block is |1_L>: harmful.
        assert!(code.ancilla_uncorrectable(LOGICAL_SUPPORT, 0));
        // Weight-2 Z mis-corrects on the data: harmful.
        assert!(code.ancilla_uncorrectable(0, 0b000_0011));
        // Weight-1 anything: fine.
        assert!(!code.ancilla_uncorrectable(0b000_0100, 0b100_0000));
    }

    #[test]
    fn exhaustive_distance_three() {
        // Minimum weight of a logical (syndrome-0, odd-parity) pattern
        // must be exactly 3 — the code distance.
        let code = SteaneCode::new();
        let mut min_w = u32::MAX;
        for e in 1u8..128 {
            if code.syndrome(e) == 0 && code.is_logical(e) {
                min_w = min_w.min(e.count_ones());
            }
        }
        assert_eq!(min_w, 3);
    }
}
