//! Monte-Carlo evaluation of the ancilla preparation circuits —
//! the experiment behind Fig 4 and the §2.3 numbers.
//!
//! Two delivered-quality metrics are reported side by side:
//!
//! * **uncorrectable rate** — the delivered block carries a residual
//!   that can corrupt data logically when the ancilla is consumed
//!   ([`SteaneCode::ancilla_uncorrectable`]); and
//! * **dirty rate** — the delivered block carries *any* non-benign
//!   residual, correctable or not ([`SteaneCode::ancilla_dirty`]).
//!
//! The paper reports a single number per circuit; its basic-prep value
//! (1.8e-3) is close to the circuit's entire fault budget, which
//! matches the dirty metric, while the ordering and the headline
//! "more than an order of magnitude improvement" of verify-and-correct
//! over verify-only are strongest in the uncorrectable metric. See
//! EXPERIMENTS.md for the paper-vs-measured discussion.

use crate::code::SteaneCode;
use crate::executor::OpCounts;
use crate::prep::{run_prep, PrepOutcome, PrepStrategy};
use qods_phys::error_model::ErrorModel;
use qods_phys::montecarlo::{run_trials_parallel, MonteCarloStats, TrialOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The evaluation of one preparation strategy.
#[derive(Debug, Clone, Copy)]
pub struct PrepEvaluation {
    /// Which circuit was evaluated.
    pub strategy: PrepStrategy,
    /// Monte-Carlo statistics: discard rate plus both error rates
    /// (`error_rate()` = uncorrectable, `dirty_rate()` = any residual).
    pub stats: MonteCarloStats,
    /// Physical op census of one (noiseless) attempt, for latency and
    /// area accounting.
    pub ops: OpCounts,
}

impl PrepEvaluation {
    /// Delivered uncorrectable-error rate.
    pub fn error_rate(&self) -> f64 {
        self.stats.error_rate()
    }

    /// Delivered any-residual ("dirty") rate.
    pub fn dirty_rate(&self) -> f64 {
        self.stats.dirty_rate()
    }

    /// Verification failure (discard) rate — §2.3 reports 0.2% for the
    /// verified subunit.
    pub fn discard_rate(&self) -> f64 {
        self.stats.discard_rate()
    }
}

/// Runs the Monte-Carlo evaluation of one strategy.
///
/// `threads = 1` gives a fully deterministic sequential run; any other
/// value is deterministic for a fixed `(seed, threads)` pair.
pub fn evaluate_prep(
    strategy: PrepStrategy,
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> PrepEvaluation {
    let code = SteaneCode::new();
    let stats = run_trials_parallel(trials, seed, threads, |rng| {
        let (outcome, _) = run_prep(strategy, model, rng);
        match outcome {
            PrepOutcome::Discarded => TrialOutcome::Discarded,
            delivered => TrialOutcome::AcceptedDetailed {
                logical_error: delivered.is_uncorrectable(&code),
                dirty: delivered.is_dirty(&code),
            },
        }
    });
    let mut dry = StdRng::seed_from_u64(seed);
    let (_, ops) = run_prep(strategy, ErrorModel::noiseless(), &mut dry);
    PrepEvaluation {
        strategy,
        stats,
        ops,
    }
}

/// Evaluates all four strategies (the full Fig 4 panel).
pub fn evaluate_all(
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Vec<PrepEvaluation> {
    PrepStrategy::ALL
        .iter()
        .map(|&s| evaluate_prep(s, model, trials, seed, threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inflated error rate so the hierarchy resolves with few trials.
    fn fast_model() -> ErrorModel {
        ErrorModel::paper().scaled(10.0)
    }

    #[test]
    fn hierarchy_matches_paper_ordering() {
        // With p_gate = 1e-3 the circuits must reproduce Fig 4's
        // ordering in the uncorrectable metric: v&c << verify-only,
        // verify-only < basic, correct-only not better than verify-only.
        let evals = evaluate_all(fast_model(), 60_000, 1234, 4);
        let get = |s: PrepStrategy| {
            *evals
                .iter()
                .find(|e| e.strategy == s)
                .expect("strategy present")
        };
        let basic = get(PrepStrategy::Basic);
        let verify = get(PrepStrategy::VerifyOnly);
        let correct = get(PrepStrategy::CorrectOnly);
        let vc = get(PrepStrategy::VerifyAndCorrect);
        // Verification alone beats correction alone (§2.3: "Correction
        // alone loses to verification alone in both error and area").
        assert!(
            verify.error_rate() < correct.error_rate(),
            "verify {} !< correct {}",
            verify.error_rate(),
            correct.error_rate()
        );
        // Verify-and-correct is more than an order of magnitude better
        // than verify alone.
        assert!(
            vc.error_rate() * 10.0 < verify.error_rate(),
            "v&c {} not >>10x below verify {}",
            vc.error_rate(),
            verify.error_rate()
        );
        // And in the dirty metric, verified pipelines improve on basic.
        // (Correct-only transfers its partners' residuals onto the
        // delivered block, so it does not — see EXPERIMENTS.md.)
        assert!(vc.dirty_rate() < basic.dirty_rate());
        assert!(verify.dirty_rate() < basic.dirty_rate());
        assert!(basic.error_rate() > 0.0);
    }

    #[test]
    fn discard_rate_is_small_but_nonzero() {
        let eval = evaluate_prep(PrepStrategy::VerifyOnly, fast_model(), 20_000, 9, 4);
        let d = eval.discard_rate();
        // 10x-inflated noise => roughly 10x the paper's 0.2%.
        assert!(d > 0.001, "discard rate {d} suspiciously low");
        assert!(d < 0.2, "discard rate {d} suspiciously high");
    }

    #[test]
    fn basic_never_discards() {
        let eval = evaluate_prep(PrepStrategy::Basic, fast_model(), 2_000, 9, 2);
        assert_eq!(eval.stats.discarded, 0);
    }

    #[test]
    fn dirty_rate_dominates_uncorrectable_rate() {
        for s in PrepStrategy::ALL {
            let e = evaluate_prep(s, fast_model(), 10_000, 77, 4);
            assert!(
                e.dirty_rate() >= e.error_rate(),
                "{:?}: dirty {} < uncorrectable {}",
                s,
                e.dirty_rate(),
                e.error_rate()
            );
        }
    }
}
