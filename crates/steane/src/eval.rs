//! Monte-Carlo evaluation of the ancilla preparation circuits —
//! the experiment behind Fig 4 and the §2.3 numbers.
//!
//! Two delivered-quality metrics are reported side by side:
//!
//! * **uncorrectable rate** — the delivered block carries a residual
//!   that can corrupt data logically when the ancilla is consumed
//!   ([`SteaneCode::ancilla_uncorrectable`]); and
//! * **dirty rate** — the delivered block carries *any* non-benign
//!   residual, correctable or not ([`SteaneCode::ancilla_dirty`]).
//!
//! The paper reports a single number per circuit; its basic-prep value
//! (1.8e-3) is close to the circuit's entire fault budget, which
//! matches the dirty metric, while the ordering and the headline
//! "more than an order of magnitude improvement" of verify-and-correct
//! over verify-only are strongest in the uncorrectable metric. See
//! EXPERIMENTS.md for the paper-vs-measured discussion.

use crate::code::SteaneCode;
use crate::executor::OpCounts;
use crate::prep::{run_prep, run_prep_in, PrepOutcome, PrepStrategy};
use qods_phys::error_model::ErrorModel;
use qods_phys::montecarlo::{run_trials_multi, run_trials_parallel, MonteCarloStats, TrialOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The evaluation of one preparation strategy.
#[derive(Debug, Clone, Copy)]
pub struct PrepEvaluation {
    /// Which circuit was evaluated.
    pub strategy: PrepStrategy,
    /// Monte-Carlo statistics: discard rate plus both error rates
    /// (`error_rate()` = uncorrectable, `dirty_rate()` = any residual).
    pub stats: MonteCarloStats,
    /// Physical op census of one (noiseless) attempt, for latency and
    /// area accounting.
    pub ops: OpCounts,
}

impl PrepEvaluation {
    /// Delivered uncorrectable-error rate.
    pub fn error_rate(&self) -> f64 {
        self.stats.error_rate()
    }

    /// Delivered any-residual ("dirty") rate.
    pub fn dirty_rate(&self) -> f64 {
        self.stats.dirty_rate()
    }

    /// Verification failure (discard) rate — §2.3 reports 0.2% for the
    /// verified subunit.
    pub fn discard_rate(&self) -> f64 {
        self.stats.discard_rate()
    }
}

/// Runs the Monte-Carlo evaluation of one strategy.
///
/// Statistics are bit-identical for a fixed `(trials, seed)` at *any*
/// `threads` value (the runner walks per-chunk RNG streams; see
/// `qods_phys::montecarlo`), and the trial hot path is allocation-free:
/// each worker's [`qods_phys::montecarlo::TrialArena`] frame is reused
/// across its trials.
pub fn evaluate_prep(
    strategy: PrepStrategy,
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> PrepEvaluation {
    // Monomorphize the trial loop per strategy: with `S` a compile-time
    // constant the strategy match inside `run_prep_in` const-folds away,
    // which is worth ~15-20 ns/trial on the Fig 4 panel.
    let stats = match strategy {
        PrepStrategy::Basic => prep_stats::<0>(model, trials, seed, threads),
        PrepStrategy::VerifyOnly => prep_stats::<1>(model, trials, seed, threads),
        PrepStrategy::CorrectOnly => prep_stats::<2>(model, trials, seed, threads),
        PrepStrategy::VerifyAndCorrect => prep_stats::<3>(model, trials, seed, threads),
    };
    let mut dry = StdRng::seed_from_u64(seed);
    let (_, ops) = run_prep(strategy, ErrorModel::noiseless(), &mut dry);
    PrepEvaluation {
        strategy,
        stats,
        ops,
    }
}

/// The Monte-Carlo loop of [`evaluate_prep`] for strategy
/// `PrepStrategy::ALL[S]`.
fn prep_stats<const S: usize>(
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> MonteCarloStats {
    let strategy = PrepStrategy::ALL[S];
    let code = SteaneCode::new();
    run_trials_parallel(trials, seed, threads, |rng, arena| {
        let (outcome, _) = run_prep_in(strategy, model, rng, arena);
        match outcome {
            PrepOutcome::Discarded => TrialOutcome::Discarded,
            delivered => TrialOutcome::AcceptedDetailed {
                logical_error: delivered.is_uncorrectable(&code),
                dirty: delivered.is_dirty(&code),
            },
        }
    })
}

/// Evaluates all four strategies (the full Fig 4 panel).
///
/// All four panels' trial chunks feed **one** shared work-stealing
/// pool ([`run_trials_multi`]), so a multi-core box overlaps the cheap
/// basic panel with the expensive verify-and-correct one — no static
/// split of `threads` between panels, and no panel-level join barrier
/// until everything is drained. Per-strategy statistics are
/// bit-identical to calling [`evaluate_prep`] per strategy, at any
/// thread count.
pub fn evaluate_all(
    model: ErrorModel,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Vec<PrepEvaluation> {
    let strategies = PrepStrategy::ALL;
    let code = SteaneCode::new();
    let jobs: Vec<(u64, u64)> = strategies.iter().map(|_| (trials, seed)).collect();
    let stats = run_trials_multi(&jobs, threads, |i, rng, arena| {
        let (outcome, _) = run_prep_in(strategies[i], model, rng, arena);
        match outcome {
            PrepOutcome::Discarded => TrialOutcome::Discarded,
            delivered => TrialOutcome::AcceptedDetailed {
                logical_error: delivered.is_uncorrectable(&code),
                dirty: delivered.is_dirty(&code),
            },
        }
    });
    strategies
        .iter()
        .zip(stats)
        .map(|(&strategy, stats)| {
            let mut dry = StdRng::seed_from_u64(seed);
            let (_, ops) = run_prep(strategy, ErrorModel::noiseless(), &mut dry);
            PrepEvaluation {
                strategy,
                stats,
                ops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inflated error rate so the hierarchy resolves with few trials.
    fn fast_model() -> ErrorModel {
        ErrorModel::paper().scaled(10.0)
    }

    #[test]
    fn hierarchy_matches_paper_ordering() {
        // With p_gate = 1e-3 the circuits must reproduce Fig 4's
        // ordering in the uncorrectable metric: v&c << verify-only,
        // verify-only < basic, correct-only not better than verify-only.
        let evals = evaluate_all(fast_model(), 60_000, 1234, 4);
        let get = |s: PrepStrategy| {
            *evals
                .iter()
                .find(|e| e.strategy == s)
                .expect("strategy present")
        };
        let basic = get(PrepStrategy::Basic);
        let verify = get(PrepStrategy::VerifyOnly);
        let correct = get(PrepStrategy::CorrectOnly);
        let vc = get(PrepStrategy::VerifyAndCorrect);
        // Verification alone beats correction alone (§2.3: "Correction
        // alone loses to verification alone in both error and area").
        assert!(
            verify.error_rate() < correct.error_rate(),
            "verify {} !< correct {}",
            verify.error_rate(),
            correct.error_rate()
        );
        // Verify-and-correct is more than an order of magnitude better
        // than verify alone.
        assert!(
            vc.error_rate() * 10.0 < verify.error_rate(),
            "v&c {} not >>10x below verify {}",
            vc.error_rate(),
            verify.error_rate()
        );
        // And in the dirty metric, verified pipelines improve on basic.
        // (Correct-only transfers its partners' residuals onto the
        // delivered block, so it does not — see EXPERIMENTS.md.)
        assert!(vc.dirty_rate() < basic.dirty_rate());
        assert!(verify.dirty_rate() < basic.dirty_rate());
        assert!(basic.error_rate() > 0.0);
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        // The panel statistics must not depend on how many workers ran
        // them — neither inside one strategy nor across the panel pool —
        // and the shared-pool panel must equal per-strategy evaluation.
        let a = evaluate_all(fast_model(), 4_000, 3, 1);
        for (e, &s) in a.iter().zip(&PrepStrategy::ALL) {
            let single = evaluate_prep(s, fast_model(), 4_000, 3, 2);
            assert_eq!(e.strategy, s);
            assert_eq!(e.stats, single.stats, "panel vs single for {s:?}");
        }
        for threads in [2, 4, 8] {
            let b = evaluate_all(fast_model(), 4_000, 3, threads);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.strategy, y.strategy);
                assert_eq!(x.stats, y.stats, "threads = {threads}");
            }
        }
    }

    #[test]
    fn discard_rate_is_small_but_nonzero() {
        let eval = evaluate_prep(PrepStrategy::VerifyOnly, fast_model(), 20_000, 9, 4);
        let d = eval.discard_rate();
        // 10x-inflated noise => roughly 10x the paper's 0.2%.
        assert!(d > 0.001, "discard rate {d} suspiciously low");
        assert!(d < 0.2, "discard rate {d} suspiciously high");
    }

    #[test]
    fn basic_never_discards() {
        let eval = evaluate_prep(PrepStrategy::Basic, fast_model(), 2_000, 9, 2);
        assert_eq!(eval.stats.discarded, 0);
    }

    #[test]
    fn dirty_rate_dominates_uncorrectable_rate() {
        for s in PrepStrategy::ALL {
            let e = evaluate_prep(s, fast_model(), 10_000, 77, 4);
            assert!(
                e.dirty_rate() >= e.error_rate(),
                "{:?}: dirty {} < uncorrectable {}",
                s,
                e.dirty_rate(),
                e.error_rate()
            );
        }
    }
}
