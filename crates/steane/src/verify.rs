//! Cat-state verification of an encoded zero (the "Cat Prep" +
//! "Verify" units of Fig 4).
//!
//! Each verification measures one weight-3 logical-Z representative
//! using a 3-qubit cat state: the cat is prepared, one CZ connects each
//! cat qubit to one support qubit of the check, and the cat is measured
//! transversally in the X basis. The parity of the three outcomes is
//! the eigenvalue of the checked operator; `|0_L>` is a +1 eigenstate
//! of every logical-Z representative, so odd parity means an X-type
//! error with odd overlap on the support — the block is discarded.
//!
//! Because anticommutation is a class property, *any* logical-X-class
//! error on the block anticommutes with *any* logical-Z representative,
//! so a verified block can never carry an undetected pure logical bit
//! flip. Weight-2 (pre-logical) X patterns are caught exactly when
//! their overlap with a measured support is odd — hence the value of
//! measuring two independent representatives (Fig 4a shows two
//! cat-prep/verify units feeding the verification of each block).

use crate::cat;
use crate::code::VERIFY_SUPPORTS;
use crate::executor::Executor;
use rand::Rng;

/// Result of verifying one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyResult {
    /// All measured checks had even parity.
    Passed,
    /// Some check flagged; the block must be discarded and recycled.
    Failed,
}

impl VerifyResult {
    /// True when the block passed.
    pub fn passed(self) -> bool {
        self == VerifyResult::Passed
    }
}

/// Measures one weight-3 check (`support` is a 7-bit mask over the
/// block) using the 3 cat qubits given (`aux` end-checks the cat and is
/// recycled). Returns the parity flip; `None` when the cat could not be
/// prepared cleanly (callers discard the attempt).
pub fn measure_check<R: Rng>(
    ex: &mut Executor<'_, R>,
    block: &[usize; 7],
    cat: &[usize; 3],
    aux: usize,
    support: u8,
) -> Option<bool> {
    if !cat::prepare_verified_cat(ex, cat, aux, 3) {
        return None;
    }
    // Cat qubits travel from the cat-prep unit to the block's gate row.
    cat::shuttle_cat(ex, cat, 2, 1);
    let mut pairs = [(0usize, 0usize); 3];
    let mut cat_i = 0;
    for (q, &b) in block.iter().enumerate() {
        if support & (1 << q) != 0 {
            pairs[cat_i] = (cat[cat_i], b);
            cat_i += 1;
        }
    }
    debug_assert_eq!(cat_i, 3, "verification supports are weight 3");
    ex.cz_all(&pairs);
    let flips = ex.measure_x_all(cat);
    Some(flips.count_ones() % 2 == 1)
}

/// Verifies a block against both logical-Z representatives
/// ([`VERIFY_SUPPORTS`]), using `cats[0]` and `cats[1]` as the two
/// 3-qubit cat registers and `aux` for cat end-checks. Cat qubits are
/// measured (hence recycled) by the time this returns.
pub fn verify_block<R: Rng>(
    ex: &mut Executor<'_, R>,
    block: &[usize; 7],
    cats: &[[usize; 3]; 2],
    aux: usize,
) -> VerifyResult {
    for (cat, support) in cats.iter().zip(VERIFY_SUPPORTS) {
        match measure_check(ex, block, cat, aux, support) {
            Some(false) => {}
            _ => return VerifyResult::Failed,
        }
    }
    VerifyResult::Passed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::LOGICAL_SUPPORT;
    use crate::encoder::{encode_zero, EncoderMovement};
    use qods_phys::error_model::ErrorModel;
    use qods_phys::pauli::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BLOCK: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];
    const CATS: [[usize; 3]; 2] = [[7, 8, 9], [10, 11, 12]];
    const AUX: usize = 13;

    fn executor(rng: &mut StdRng) -> Executor<'_, StdRng> {
        Executor::new(14, ErrorModel::noiseless(), rng)
    }

    #[test]
    fn clean_block_passes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        assert!(verify_block(&mut ex, &BLOCK, &CATS, AUX).passed());
    }

    #[test]
    fn logical_x_class_always_caught() {
        // Any logical-X pattern anticommutes with both checks.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        for q in 0..7 {
            if LOGICAL_SUPPORT & (1 << q) != 0 {
                ex.inject(q, Pauli::X);
            }
        }
        assert!(!verify_block(&mut ex, &BLOCK, &CATS, AUX).passed());
    }

    #[test]
    fn odd_overlap_single_x_caught_even_overlap_missed() {
        // X on qubit 2 (in both supports... overlap odd) -> caught.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        ex.inject(2, Pauli::X);
        assert!(!verify_block(&mut ex, &BLOCK, &CATS, AUX).passed());

        // X on qubit 0 (outside both supports) -> missed; a weight-1
        // error is correctable anyway.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        ex.inject(0, Pauli::X);
        assert!(verify_block(&mut ex, &BLOCK, &CATS, AUX).passed());
    }

    #[test]
    fn z_errors_are_invisible() {
        // The Z_L checks commute with all Z errors.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        ex.inject(1, Pauli::Z);
        ex.inject(4, Pauli::Z);
        assert!(verify_block(&mut ex, &BLOCK, &CATS, AUX).passed());
    }

    #[test]
    fn cat_branch_flip_is_benign() {
        // X on the cat root spreads to the whole cat; that is the GHZ
        // stabilizer X^3, which deposits a full logical-Z onto the
        // block (trivial on |0_L>) and does not flip X-basis outcomes.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ex = executor(&mut rng);
        encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
        // Build the check manually with a root fault.
        let cat = CATS[0];
        for &q in &cat {
            ex.prep(q);
        }
        ex.h(cat[0]);
        ex.inject(cat[0], Pauli::X);
        ex.cx(cat[0], cat[1]);
        ex.cx(cat[1], cat[2]);
        let mut cat_i = 0;
        let mut parity = false;
        for (q, &b) in BLOCK.iter().enumerate() {
            if LOGICAL_SUPPORT & (1 << q) != 0 {
                ex.cz(cat[cat_i], b);
                cat_i += 1;
            }
        }
        for &c in &cat {
            parity ^= ex.measure_x(c);
        }
        assert!(!parity, "branch flip must not trigger verification");
        // Deposited Z pattern is the full check support = a logical-Z
        // class operator = harmless on an encoded zero.
        let z = ex.z_mask(&BLOCK);
        assert_eq!(z, LOGICAL_SUPPORT);
        let code = crate::code::SteaneCode::new();
        assert!(!code.ancilla_uncorrectable(ex.x_mask(&BLOCK), z));
    }
}
