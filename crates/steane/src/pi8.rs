//! The encoded pi/8 ancilla gadget (Fig 5) and its four-stage structure
//! (§4.4.2, Table 7).
//!
//! A fault-tolerant encoded pi/8 gate is performed by preparing an
//! ancilla in the encoded pi/8 state and interacting it transversally
//! with the data (Zhou-Leung-Chuang, the paper's [13]). Creating that
//! ancilla (Fig 5b) takes an encoded zero, a 7-qubit cat state, and a
//! series of transversal gates; the paper splits it into four pipeline
//! stages:
//!
//! 1. 7-qubit cat state prepare (7 two-qubit gates including the cat
//!    verification step),
//! 2. transversal CZ/CS/CX plus transversal pi/8 between cat and block,
//! 3. decode (plus store),
//! 4. one-qubit H, measurement, transversal Z conditioned on the
//!    outcome.
//!
//! The Monte-Carlo treatment of this gadget is approximate — the
//! transversal T is non-Clifford and is twirled (see `qods-phys`) — but
//! the op census and stage structure are exact, which is what the
//! factory model (Tables 7-8) consumes. The paper publishes no error
//! rate for the delivered pi/8 ancilla, so nothing quantitative hinges
//! on the twirl.

use crate::cat::prepare_cat;
use crate::encoder::{encode_zero, EncoderMovement};
use crate::executor::{Executor, OpCounts};
use qods_phys::error_model::ErrorModel;
use qods_phys::pauli::Pauli;
use rand::Rng;

/// Residual error masks of a delivered encoded pi/8 ancilla.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pi8Outcome {
    /// X-component residual over the 7-qubit block.
    pub x: u8,
    /// Z-component residual over the 7-qubit block.
    pub z: u8,
}

/// Op census per pipeline stage (the factory model bandwidth-matches
/// stages individually).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pi8StageCounts {
    /// Stage 1: cat prepare + verification.
    pub cat_prep: OpCounts,
    /// Stage 2: transversal two-qubit rounds + transversal T.
    pub transversal: OpCounts,
    /// Stage 3: decode.
    pub decode: OpCounts,
    /// Stage 4: H / measure / conditional transversal Z.
    pub readout: OpCounts,
}

const BLOCK: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];
const CAT: [usize; 7] = [7, 8, 9, 10, 11, 12, 13];
const CAT_VERIFY: usize = 14;

/// Runs the Fig 5b gadget: consumes a (noisy) encoded zero produced
/// in-line and delivers an encoded pi/8 ancilla. Returns the residual
/// error masks and per-stage op counts.
pub fn run_pi8_prep<R: Rng>(model: ErrorModel, rng: &mut R) -> (Pi8Outcome, Pi8StageCounts) {
    let mut ex = Executor::new(15, model, rng);
    let mut stages = Pi8StageCounts::default();

    // Input: encoded zero (counted separately by factories; the zero
    // factory supplies it, so its ops are not part of any stage here).
    encode_zero(&mut ex, &BLOCK, EncoderMovement::default());
    let before = ex.counts();

    // Stage 1: 7-qubit cat prepare, plus one CX + measurement checking
    // the cat's ends against each other (7 two-qubit gates total,
    // matching the stage's symbolic latency in Table 7).
    prepare_cat(&mut ex, &CAT);
    ex.prep(CAT_VERIFY);
    ex.cx(CAT[6], CAT_VERIFY);
    let cat_bad = ex.measure_z(CAT_VERIFY);
    stages.cat_prep = diff(before, ex.counts());
    // A flagged cat would be recycled in the factory; for the error
    // study we simply continue (flag rate is first-order small and the
    // delivered-error metric conditions on acceptance upstream).
    let _ = cat_bad;

    // Stage 2: transversal CZ, CS, CX rounds between cat and block,
    // then the transversal pi/8 on the block. CZ and CX rounds batch;
    // CS and T conjugations twirl (draw per op) and stay per-op.
    let before = ex.counts();
    let mut pairs = [(0usize, 0usize); 7];
    for i in 0..7 {
        pairs[i] = (CAT[i], BLOCK[i]);
    }
    ex.cz_all(&pairs);
    for i in 0..7 {
        ex.cs(CAT[i], BLOCK[i]);
    }
    ex.cx_all(&pairs);
    for &b in &BLOCK {
        ex.t(b);
    }
    stages.transversal = diff(before, ex.counts());

    // Stage 3: decode the cat (reverse CX chain) and store.
    let before = ex.counts();
    let mut chain = [(0usize, 0usize); 6];
    for (k, i) in (0..6).rev().enumerate() {
        chain[k] = (CAT[i], CAT[i + 1]);
    }
    ex.cx_all(&chain);
    stages.decode = diff(before, ex.counts());

    // Stage 4: H on the cat root, measure, conditional transversal Z.
    let before = ex.counts();
    ex.h(CAT[0]);
    let flip = ex.measure_z(CAT[0]);
    // The ideal outcome of this measurement is uniformly random; the
    // transversal-Z branch fires for one of the two outcomes. Applying
    // the correction on the *observed* outcome is part of the ideal
    // protocol (so it uses plain Z gates, which do not disturb the
    // error frame beyond their own fault chance). A corrupted readout
    // (`flip`) makes the applied pattern differ from the ideal one by a
    // transversal Z — a genuine logical-phase deviation on the block.
    let ideal_branch = ex.coin();
    let observed = ideal_branch ^ flip;
    if observed {
        ex.z_all(&BLOCK);
    }
    if flip {
        for &q in &BLOCK {
            ex.inject(q, Pauli::Z);
        }
    }
    stages.readout = diff(before, ex.counts());

    (
        Pi8Outcome {
            x: ex.x_mask(&BLOCK),
            z: ex.z_mask(&BLOCK),
        },
        stages,
    )
}

fn diff(before: OpCounts, after: OpCounts) -> OpCounts {
    OpCounts {
        one_qubit_gates: after.one_qubit_gates - before.one_qubit_gates,
        two_qubit_gates: after.two_qubit_gates - before.two_qubit_gates,
        measurements: after.measurements - before.measurements,
        preps: after.preps - before.preps,
        moves: after.moves - before.moves,
        turns: after.turns - before.turns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stage_two_qubit_counts_match_table7_structure() {
        let mut rng = StdRng::seed_from_u64(51);
        let (_, stages) = run_pi8_prep(ErrorModel::noiseless(), &mut rng);
        // Stage 1: 6 chain CXs + 1 verification CX = 7 (Table 7: 7 t_2q).
        assert_eq!(stages.cat_prep.two_qubit_gates, 7);
        // Stage 2: three transversal rounds of 7.
        assert_eq!(stages.transversal.two_qubit_gates, 21);
        assert_eq!(stages.transversal.one_qubit_gates, 7); // transversal T
                                                           // Stage 3: decode chain.
        assert_eq!(stages.decode.two_qubit_gates, 6);
        // Stage 4: one H + one measurement (+ conditional Z's).
        assert_eq!(stages.readout.measurements, 1);
    }

    #[test]
    fn noiseless_gadget_delivers_clean_block_up_to_branch() {
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (out, _) = run_pi8_prep(ErrorModel::noiseless(), &mut rng);
            assert_eq!(out.x, 0, "seed {seed}");
            assert_eq!(out.z, 0, "seed {seed}");
        }
    }

    #[test]
    fn noisy_gadget_sometimes_errs() {
        let mut dirty = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = ErrorModel::paper().scaled(100.0);
            let (out, _) = run_pi8_prep(model, &mut rng);
            if out.x != 0 || out.z != 0 {
                dirty += 1;
            }
        }
        assert!(dirty > 0, "inflated noise must produce some errors");
    }
}
