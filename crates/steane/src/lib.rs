//! # qods-steane — the [[7,1,3]] Steane code and ancilla preparation
//!
//! This crate implements §2 of "Running a Quantum Circuit at the Speed
//! of Data": the Steane CSS code, its encoding circuit (Fig 3b),
//! cat-state verification and bit/phase correction, the four
//! encoded-zero preparation strategies of Fig 4, the pi/8-ancilla
//! gadget of Fig 5, and the Monte-Carlo evaluation methodology (§2.2)
//! that produces the paper's logical-error-rate hierarchy:
//!
//! | circuit | paper error rate |
//! |---|---|
//! | basic prepare (Fig 3b) | 1.8e-3 |
//! | verify only (Fig 4a) | 3.7e-4 |
//! | correct only (Fig 4b) | 1.1e-3 |
//! | verify and correct (Fig 4c) | 2.9e-5 |
//!
//! plus the 0.2% verification failure rate used for factory throughput
//! derating in §4.4.
//!
//! ## Modeling note (documented substitution)
//!
//! The paper's numbers come from the authors' internal layout tool; we
//! rebuild the circuits from the published descriptions. For the
//! "verify and correct" pipeline, an encoded-zero ancilla is in a
//! *known* state, and §2.3 notes such blocks "may be discarded if
//! necessary". We therefore treat a nonzero syndrome observed during
//! the bit/phase-correction stage of the verify-and-correct pipeline as
//! a discard (the factory recycles failures, Fig 12), which makes the
//! delivered error second-order in the fault rate — reproducing the
//! paper's ~2 orders of magnitude spread between basic and
//! verify-and-correct. "Correct only" (Fig 4b) applies corrections
//! unconditionally, as the paper's weaker result for it suggests.
//!
//! # Example
//!
//! ```
//! use qods_steane::code::SteaneCode;
//!
//! let code = SteaneCode::new();
//! // A single bit flip is always corrected.
//! let e = 0b0000100u8; // X error on qubit 2
//! let c = code.decode(e);
//! assert_eq!(e ^ c, 0);
//! ```

pub mod cat;
pub mod code;
pub mod correct;
pub mod encoder;
pub mod eval;
pub mod executor;
pub mod faults;
pub mod pi8;
pub mod prep;
pub mod qec;
pub mod tableau;
pub mod threshold;
pub mod verify;

pub use code::SteaneCode;
pub use eval::{evaluate_prep, PrepEvaluation};
pub use executor::{Executor, OpCounts};
pub use prep::PrepStrategy;
