//! Bit-flip and phase-flip correction of an encoded block using fresh
//! encoded-zero ancillae (Steane-style error correction, Fig 2).
//!
//! * **Bit correction** of block `A` with ancilla `B`: transversal
//!   `CX(A_i -> B_i)` copies A's X errors onto B; measuring B in the Z
//!   basis yields a Hamming codeword XORed with those errors, whose
//!   syndrome locates a single bit flip on A. B's own Z errors
//!   back-propagate onto A during the CX (the reason ancilla quality
//!   matters).
//! * **Phase correction** of `A` with ancilla `C`: transversal
//!   `CX(C_i -> A_i)`; C picks up A's Z errors, and X-basis measurement
//!   of C reveals their syndrome. C's X errors deposit onto A.
//!
//! Both functions return the measured syndrome and let the caller
//! choose the [`CorrectionPolicy`]: apply the indicated correction
//! (Fig 4b "correct only", and QEC on long-lived data, where discarding
//! is not an option), or treat a nonzero syndrome as a discard signal
//! (the verify-and-correct factory pipeline, where the block is a known
//! state and recycling is cheap — see the crate-level modeling note).

use crate::code::SteaneCode;
use crate::executor::Executor;
use qods_phys::pauli::Pauli;
use rand::Rng;

/// What to do when a correction stage observes a nonzero syndrome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionPolicy {
    /// Apply the minimum-weight correction to the block.
    Apply,
    /// Report only; the caller discards the block (factory recycle).
    ReportOnly,
}

/// Transversal movement charged per correction interaction: the two
/// blocks meet across one crossbar column (per the Fig 13f unit).
const CORRECTION_MOVES: u32 = 4;
const CORRECTION_TURNS: u32 = 2;

/// Bit-corrects block `a` using encoded-zero `b` (which is consumed).
/// Returns the measured syndrome (0 = clean).
pub fn bit_correct<R: Rng>(
    ex: &mut Executor<'_, R>,
    a: &[usize; 7],
    b: &[usize; 7],
    policy: CorrectionPolicy,
) -> u8 {
    let code = SteaneCode::new();
    ex.moves(b[0], CORRECTION_MOVES);
    ex.turns(b[0], CORRECTION_TURNS);
    let mut pairs = [(0usize, 0usize); 7];
    for i in 0..7 {
        pairs[i] = (a[i], b[i]);
    }
    ex.cx_all(&pairs);
    let bits = ex.measure_z_all(b) as u8;
    let syndrome = code.syndrome(bits);
    if policy == CorrectionPolicy::Apply && syndrome != 0 {
        let mask = code.correction_for_syndrome(syndrome);
        let q = mask.trailing_zeros() as usize;
        ex.cond_pauli(a[q], Pauli::X);
    }
    syndrome
}

/// Phase-corrects block `a` using encoded-zero `c` (which is consumed).
/// Returns the measured syndrome (0 = clean).
pub fn phase_correct<R: Rng>(
    ex: &mut Executor<'_, R>,
    a: &[usize; 7],
    c: &[usize; 7],
    policy: CorrectionPolicy,
) -> u8 {
    let code = SteaneCode::new();
    ex.moves(c[0], CORRECTION_MOVES);
    ex.turns(c[0], CORRECTION_TURNS);
    let mut pairs = [(0usize, 0usize); 7];
    for i in 0..7 {
        pairs[i] = (c[i], a[i]);
    }
    ex.cx_all(&pairs);
    let bits = ex.measure_x_all(c) as u8;
    let syndrome = code.syndrome(bits);
    if policy == CorrectionPolicy::Apply && syndrome != 0 {
        let mask = code.correction_for_syndrome(syndrome);
        let q = mask.trailing_zeros() as usize;
        ex.cond_pauli(a[q], Pauli::Z);
    }
    syndrome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_zero, EncoderMovement};
    use qods_phys::error_model::ErrorModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];
    const B: [usize; 7] = [7, 8, 9, 10, 11, 12, 13];

    fn setup(rng: &mut StdRng) -> Executor<'_, StdRng> {
        let mut ex = Executor::new(14, ErrorModel::noiseless(), rng);
        encode_zero(&mut ex, &A, EncoderMovement::default());
        encode_zero(&mut ex, &B, EncoderMovement::default());
        ex
    }

    #[test]
    fn clean_blocks_report_zero_syndrome() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ex = setup(&mut rng);
        assert_eq!(bit_correct(&mut ex, &A, &B, CorrectionPolicy::Apply), 0);
        assert_eq!(ex.x_mask(&A), 0);
        assert_eq!(ex.z_mask(&A), 0);
    }

    #[test]
    fn single_bit_flip_is_located_and_fixed() {
        for q in 0..7 {
            let mut rng = StdRng::seed_from_u64(21);
            let mut ex = setup(&mut rng);
            ex.inject(q, Pauli::X);
            let syn = bit_correct(&mut ex, &A, &B, CorrectionPolicy::Apply);
            assert_eq!(syn, q as u8 + 1);
            assert_eq!(ex.x_mask(&A), 0, "X on {q} not corrected");
        }
    }

    #[test]
    fn single_phase_flip_is_located_and_fixed() {
        for q in 0..7 {
            let mut rng = StdRng::seed_from_u64(22);
            let mut ex = setup(&mut rng);
            ex.inject(q, Pauli::Z);
            let syn = phase_correct(&mut ex, &A, &B, CorrectionPolicy::Apply);
            assert_eq!(syn, q as u8 + 1);
            assert_eq!(ex.z_mask(&A), 0, "Z on {q} not corrected");
        }
    }

    #[test]
    fn report_only_leaves_error_in_place() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut ex = setup(&mut rng);
        ex.inject(3, Pauli::X);
        let syn = bit_correct(&mut ex, &A, &B, CorrectionPolicy::ReportOnly);
        assert_eq!(syn, 4);
        assert_eq!(ex.x_mask(&A), 0b000_1000);
    }

    #[test]
    fn ancilla_z_error_back_propagates_in_bit_correct() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut ex = setup(&mut rng);
        ex.inject(B[2], Pauli::Z);
        let _ = bit_correct(&mut ex, &A, &B, CorrectionPolicy::Apply);
        // B's Z error landed on A (correctable weight-1).
        assert_eq!(ex.z_mask(&A), 0b000_0100);
    }

    #[test]
    fn ancilla_x_error_causes_miscorrection() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut ex = setup(&mut rng);
        ex.inject(B[5], Pauli::X);
        let syn = bit_correct(&mut ex, &A, &B, CorrectionPolicy::Apply);
        assert_eq!(syn, 6);
        // The phantom syndrome injected a (correctable) X onto A.
        assert_eq!(ex.x_mask(&A), 0b010_0000);
    }

    #[test]
    fn weight_two_on_block_miscorrects_to_logical() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut ex = setup(&mut rng);
        ex.inject(0, Pauli::X);
        ex.inject(1, Pauli::X);
        let _ = bit_correct(&mut ex, &A, &B, CorrectionPolicy::Apply);
        let code = SteaneCode::new();
        let x = ex.x_mask(&A);
        assert_eq!(code.syndrome(x), 0, "residual must be a codeword");
        assert!(code.is_logical(x), "weight-2 must become logical");
    }
}
