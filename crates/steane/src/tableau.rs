//! A small sign-free stabilizer tableau, used to verify *structurally*
//! that circuits produce the states they claim (e.g. that the Fig 3b
//! encoder's output is stabilized by exactly the Steane group plus
//! logical Z).
//!
//! Rows are [`PauliString`]s conjugated through Clifford gates with the
//! same rules as the error frame. Signs are not tracked: span equality
//! up to signs is sufficient for the structural checks we perform (the
//! Monte-Carlo machinery never uses this module; it is a test aid and a
//! documentation artifact).

use qods_phys::pauli::PauliString;

/// A set of stabilizer generators over `n` qubits.
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    rows: Vec<PauliString>,
}

impl Tableau {
    /// The stabilizer group of |0>^n: one Z per qubit.
    pub fn zeros(n: usize) -> Self {
        let rows = (0..n)
            .map(|q| PauliString::from_masks(n, 0, 1 << q))
            .collect();
        Tableau { n, rows }
    }

    /// An empty tableau (rows added manually).
    pub fn empty(n: usize) -> Self {
        Tableau {
            n,
            rows: Vec::new(),
        }
    }

    /// Adds a generator row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the tableau's.
    pub fn push(&mut self, row: PauliString) {
        assert_eq!(row.len(), self.n, "row length mismatch");
        self.rows.push(row);
    }

    /// The generator rows.
    pub fn rows(&self) -> &[PauliString] {
        &self.rows
    }

    /// Conjugates every generator through a Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for r in &mut self.rows {
            let x = (r.x >> q) & 1;
            let z = (r.z >> q) & 1;
            r.x = (r.x & !(1 << q)) | (z << q);
            r.z = (r.z & !(1 << q)) | (x << q);
        }
    }

    /// Conjugates through S on `q` (X -> Y).
    pub fn s(&mut self, q: usize) {
        for r in &mut self.rows {
            let x = (r.x >> q) & 1;
            r.z ^= x << q;
        }
    }

    /// Conjugates through CX(control, target).
    pub fn cx(&mut self, c: usize, t: usize) {
        for r in &mut self.rows {
            let xc = (r.x >> c) & 1;
            let zt = (r.z >> t) & 1;
            r.x ^= xc << t;
            r.z ^= zt << c;
        }
    }

    /// Conjugates through CZ(a, b).
    pub fn cz(&mut self, a: usize, b: usize) {
        for r in &mut self.rows {
            let xa = (r.x >> a) & 1;
            let xb = (r.x >> b) & 1;
            r.z ^= xa << b;
            r.z ^= xb << a;
        }
    }

    /// True when the F2 span of this tableau's rows (as 2n-bit
    /// symplectic vectors) equals the span of `other`'s.
    pub fn same_span(&self, other: &Tableau) -> bool {
        assert_eq!(self.n, other.n, "tableau size mismatch");
        let a = reduced(self);
        let b = reduced(other);
        a == b
    }
}

/// Row-reduced echelon basis of the tableau rows as (x|z) vectors.
fn reduced(t: &Tableau) -> Vec<u128> {
    let mut rows: Vec<u128> = t
        .rows
        .iter()
        .map(|r| (u128::from(r.x) << 64) | u128::from(r.z))
        .filter(|&v| v != 0)
        .collect();
    let mut basis: Vec<u128> = Vec::new();
    for mut v in rows.drain(..) {
        for &b in &basis {
            let lead = 127 - b.leading_zeros();
            if (v >> lead) & 1 == 1 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v);
            basis.sort_unstable_by(|x, y| y.cmp(x));
        }
    }
    // Back-substitute for a canonical reduced form.
    let snapshot = basis.clone();
    for (i, row) in basis.iter_mut().enumerate() {
        for (j, &b) in snapshot.iter().enumerate() {
            if i != j {
                let lead = 127 - b.leading_zeros();
                if (*row >> lead) & 1 == 1 && *row != b {
                    *row ^= b;
                }
            }
        }
    }
    basis.sort_unstable_by(|x, y| y.cmp(x));
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CHECKS;
    use crate::encoder::{CONTROLS, CX_ROUNDS};

    #[test]
    fn encoder_produces_steane_stabilizers_plus_logical_z() {
        // Start from |0>^7, apply the Fig 3b circuit to the tableau.
        let mut t = Tableau::zeros(7);
        for &c in &CONTROLS {
            t.h(c);
        }
        for round in &CX_ROUNDS {
            for &(c, tgt) in round {
                t.cx(c, tgt);
            }
        }
        // Expected group: three X-checks, three Z-checks, logical Z.
        let mut expect = Tableau::empty(7);
        for &chk in &CHECKS {
            expect.push(PauliString::from_masks(7, u64::from(chk), 0));
        }
        for &chk in &CHECKS {
            expect.push(PauliString::from_masks(7, 0, u64::from(chk)));
        }
        expect.push(PauliString::from_masks(7, 0, 0b111_1111));
        assert!(t.same_span(&expect), "encoder output group mismatch");
    }

    #[test]
    fn ghz_stabilizers() {
        let mut t = Tableau::zeros(3);
        t.h(0);
        t.cx(0, 1);
        t.cx(1, 2);
        let mut expect = Tableau::empty(3);
        expect.push(PauliString::from_masks(3, 0b111, 0)); // XXX
        expect.push(PauliString::from_masks(3, 0, 0b011)); // Z0 Z1
        expect.push(PauliString::from_masks(3, 0, 0b110)); // Z1 Z2
        assert!(t.same_span(&expect));
    }

    #[test]
    fn span_equality_is_basis_independent() {
        let mut a = Tableau::empty(2);
        a.push(PauliString::from_masks(2, 0b01, 0));
        a.push(PauliString::from_masks(2, 0b10, 0));
        let mut b = Tableau::empty(2);
        b.push(PauliString::from_masks(2, 0b11, 0));
        b.push(PauliString::from_masks(2, 0b01, 0));
        assert!(a.same_span(&b));
        let mut c = Tableau::empty(2);
        c.push(PauliString::from_masks(2, 0b11, 0));
        assert!(!a.same_span(&c));
    }

    #[test]
    fn rotation_rules_are_consistent_with_frame() {
        // H then CX on a Z generator mirrors frame behavior.
        let mut t = Tableau::zeros(2);
        t.h(0); // Z0 -> X0
        t.cx(0, 1); // X0 -> X0 X1
        let mut expect = Tableau::empty(2);
        expect.push(PauliString::from_masks(2, 0b11, 0));
        expect.push(PauliString::from_masks(2, 0, 0b11)); // Z1 -> Z0 Z1
        assert!(t.same_span(&expect));
    }
}
