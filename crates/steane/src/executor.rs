//! Protocol executor: drives a [`PauliFrame`] through a fault-tolerance
//! protocol while tallying physical-operation counts.
//!
//! The ancilla-preparation protocols contain classical feedback
//! (measure, then conditionally correct or discard), so they cannot be
//! expressed as straight-line circuits. Each protocol is instead a Rust
//! function over an [`Executor`], which:
//!
//! * applies each op to the Pauli frame (injecting faults per the
//!   error model),
//! * returns measurement outcome *flips* to the protocol logic, and
//! * counts ops by kind, so the same protocol run yields both
//!   Monte-Carlo statistics and the op census used for latency and
//!   bandwidth accounting (keeping a single source of truth).

use qods_phys::error_model::ErrorModel;
use qods_phys::frame::PauliFrame;
use qods_phys::latency::{LatencyTable, SymbolicLatency};
use qods_phys::montecarlo::TrialArena;
use qods_phys::ops::{Basis, Gate1, Gate2, PhysOp, PhysOpKind};
use qods_phys::pauli::Pauli;
use rand::Rng;

/// Census of physical operations executed by a protocol.
///
/// # Example
///
/// ```
/// use qods_steane::executor::OpCounts;
///
/// let mut c = OpCounts::default();
/// c.two_qubit_gates = 6;
/// c.measurements = 2;
/// assert_eq!(c.total(), 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// One-qubit gates (including conditional Pauli corrections).
    pub one_qubit_gates: u64,
    /// Two-qubit gates.
    pub two_qubit_gates: u64,
    /// Measurements in any basis.
    pub measurements: u64,
    /// Physical |0> preparations.
    pub preps: u64,
    /// Straight macroblock moves.
    pub moves: u64,
    /// Turns.
    pub turns: u64,
}

impl OpCounts {
    /// Total op count.
    pub fn total(&self) -> u64 {
        self.one_qubit_gates
            + self.two_qubit_gates
            + self.measurements
            + self.preps
            + self.moves
            + self.turns
    }

    /// A symbolic latency assuming fully serial execution — an upper
    /// bound used in sanity checks (scheduled latencies come from the
    /// factory models, not from here).
    pub fn serial_latency(&self) -> SymbolicLatency {
        SymbolicLatency {
            n_1q: self.one_qubit_gates as u32,
            n_2q: self.two_qubit_gates as u32,
            n_meas: self.measurements as u32,
            n_prep: self.preps as u32,
            n_move: self.moves as u32,
            n_turn: self.turns as u32,
        }
    }

    fn record(&mut self, kind: PhysOpKind) {
        match kind {
            PhysOpKind::OneQubitGate => self.one_qubit_gates += 1,
            PhysOpKind::TwoQubitGate => self.two_qubit_gates += 1,
            PhysOpKind::Measurement => self.measurements += 1,
            PhysOpKind::ZeroPrepare => self.preps += 1,
            PhysOpKind::StraightMove => self.moves += 1,
            PhysOpKind::Turn => self.turns += 1,
        }
    }
}

/// The executor's frame storage: owned for one-shot use, or borrowed
/// from a [`TrialArena`] so Monte-Carlo trials reuse one allocation.
enum FrameSlot<'r> {
    Owned(PauliFrame),
    Borrowed(&'r mut PauliFrame),
}

impl FrameSlot<'_> {
    #[inline(always)]
    fn get(&self) -> &PauliFrame {
        match self {
            FrameSlot::Owned(f) => f,
            FrameSlot::Borrowed(f) => f,
        }
    }

    #[inline(always)]
    fn get_mut(&mut self) -> &mut PauliFrame {
        match self {
            FrameSlot::Owned(f) => f,
            FrameSlot::Borrowed(f) => f,
        }
    }
}

/// Executes protocol steps against a Pauli frame with fault injection.
pub struct Executor<'r, R: Rng> {
    frame: FrameSlot<'r>,
    rng: &'r mut R,
    counts: OpCounts,
}

impl<'r, R: Rng> Executor<'r, R> {
    /// A new executor over `n` physical qubits, owning its frame.
    pub fn new(n: usize, model: ErrorModel, rng: &'r mut R) -> Self {
        Executor {
            frame: FrameSlot::Owned(PauliFrame::new(n, model)),
            rng,
            counts: OpCounts::default(),
        }
    }

    /// A new executor borrowing (and resetting) the arena's frame —
    /// the allocation-free path every Monte-Carlo trial runs on.
    pub fn in_arena(
        n: usize,
        model: ErrorModel,
        rng: &'r mut R,
        arena: &'r mut TrialArena,
    ) -> Self {
        Executor {
            frame: FrameSlot::Borrowed(arena.frame(n, model)),
            rng,
            counts: OpCounts::default(),
        }
    }

    /// The op census so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Read-only view of the underlying frame (for final-state checks).
    pub fn frame(&self) -> &PauliFrame {
        self.frame.get()
    }

    /// Deterministic fault injection (for directed tests).
    pub fn inject(&mut self, q: usize, p: Pauli) {
        self.frame.get_mut().inject(q, p);
    }

    /// A fair coin from the executor's RNG — used by protocols whose
    /// ideal measurement outcomes are genuinely random (e.g. the pi/8
    /// gadget's teleportation branch).
    pub fn coin(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    #[inline]
    fn apply(&mut self, op: PhysOp) -> Option<bool> {
        self.counts.record(op.kind());
        self.frame.get_mut().apply(&op, self.rng)
    }

    // Single-op helpers route through the frame's batched entry points
    // (single-element runs) rather than the `PhysOp` dispatch: the
    // semantics and RNG stream are identical by the batch contract, and
    // the clean-frame fast path turns each into one countdown check.

    /// Physical |0> preparation.
    #[inline]
    pub fn prep(&mut self, q: usize) {
        self.counts.preps += 1;
        self.frame.get_mut().prep_batch(&[q], self.rng);
    }

    /// Hadamard.
    #[inline]
    pub fn h(&mut self, q: usize) {
        self.counts.one_qubit_gates += 1;
        self.frame.get_mut().gate1_batch(Gate1::H, &[q], self.rng);
    }

    /// Phase gate.
    #[inline]
    pub fn s(&mut self, q: usize) {
        self.counts.one_qubit_gates += 1;
        self.frame.get_mut().gate1_batch(Gate1::S, &[q], self.rng);
    }

    /// Pauli Z as a deliberate circuit gate (frame-transparent).
    #[inline]
    pub fn z(&mut self, q: usize) {
        self.counts.one_qubit_gates += 1;
        self.frame.get_mut().gate1_batch(Gate1::Z, &[q], self.rng);
    }

    /// Pauli X as a deliberate circuit gate (frame-transparent).
    #[inline]
    pub fn x(&mut self, q: usize) {
        self.counts.one_qubit_gates += 1;
        self.frame.get_mut().gate1_batch(Gate1::X, &[q], self.rng);
    }

    /// pi/8 gate (twirled conjugation; stays on the per-op path).
    pub fn t(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::T, q));
    }

    /// CX gate.
    #[inline]
    pub fn cx(&mut self, c: usize, t: usize) {
        self.counts.two_qubit_gates += 1;
        self.frame
            .get_mut()
            .gate2_batch(Gate2::Cx, &[(c, t)], self.rng);
    }

    /// CZ gate.
    #[inline]
    pub fn cz(&mut self, a: usize, b: usize) {
        self.counts.two_qubit_gates += 1;
        self.frame
            .get_mut()
            .gate2_batch(Gate2::Cz, &[(a, b)], self.rng);
    }

    /// CS gate (used in the pi/8 gadget; twirled, per-op path).
    pub fn cs(&mut self, a: usize, b: usize) {
        self.apply(PhysOp::Gate2(Gate2::Cs, a, b));
    }

    /// Z-basis measurement; returns true when the outcome is flipped
    /// relative to ideal execution.
    #[inline]
    pub fn measure_z(&mut self, q: usize) -> bool {
        self.counts.measurements += 1;
        self.frame.get_mut().measure_batch(Basis::Z, &[q], self.rng) & 1 == 1
    }

    /// X-basis measurement flip.
    #[inline]
    pub fn measure_x(&mut self, q: usize) -> bool {
        self.counts.measurements += 1;
        self.frame.get_mut().measure_batch(Basis::X, &[q], self.rng) & 1 == 1
    }

    /// Conditional Pauli correction (costed as a one-qubit gate).
    pub fn cond_pauli(&mut self, q: usize, p: Pauli) {
        self.apply(PhysOp::CondPauli(p, q));
    }

    // Batched ops: identical semantics and RNG stream to issuing the
    // per-op calls in the same order (see `PauliFrame`'s `*_batch`
    // methods), but one fault scan per run instead of one per op —
    // the difference between ~N and ~N·p sampler interactions.

    /// Prepares every qubit in `qubits` (distinct), in order.
    pub fn prep_all(&mut self, qubits: &[usize]) {
        self.counts.preps += qubits.len() as u64;
        self.frame.get_mut().prep_batch(qubits, self.rng);
    }

    /// Hadamard on every qubit in `qubits` (distinct), in order.
    pub fn h_all(&mut self, qubits: &[usize]) {
        self.counts.one_qubit_gates += qubits.len() as u64;
        self.frame.get_mut().gate1_batch(Gate1::H, qubits, self.rng);
    }

    /// Pauli Z (frame-transparent circuit gate) on every qubit, in order.
    pub fn z_all(&mut self, qubits: &[usize]) {
        self.counts.one_qubit_gates += qubits.len() as u64;
        self.frame.get_mut().gate1_batch(Gate1::Z, qubits, self.rng);
    }

    /// CX on every `(control, target)` pair in order (chains allowed).
    pub fn cx_all(&mut self, pairs: &[(usize, usize)]) {
        self.counts.two_qubit_gates += pairs.len() as u64;
        self.frame.get_mut().gate2_batch(Gate2::Cx, pairs, self.rng);
    }

    /// CZ on every pair in order.
    pub fn cz_all(&mut self, pairs: &[(usize, usize)]) {
        self.counts.two_qubit_gates += pairs.len() as u64;
        self.frame.get_mut().gate2_batch(Gate2::Cz, pairs, self.rng);
    }

    /// Z-basis measurement of every qubit in `qubits` (distinct), in
    /// order; bit `i` of the result = flip of `qubits[i]`.
    ///
    /// # Panics
    ///
    /// Panics on more than 64 qubits (the flip mask would overflow);
    /// measure larger registers in 64-qubit batches.
    pub fn measure_z_all(&mut self, qubits: &[usize]) -> u64 {
        self.counts.measurements += qubits.len() as u64;
        self.frame
            .get_mut()
            .measure_batch(Basis::Z, qubits, self.rng)
    }

    /// X-basis measurement of every qubit in `qubits` (distinct).
    ///
    /// # Panics
    ///
    /// Panics on more than 64 qubits (see [`Executor::measure_z_all`]).
    pub fn measure_x_all(&mut self, qubits: &[usize]) -> u64 {
        self.counts.measurements += qubits.len() as u64;
        self.frame
            .get_mut()
            .measure_batch(Basis::X, qubits, self.rng)
    }

    /// `n` straight moves of qubit `q` (fault chance per move).
    pub fn moves(&mut self, q: usize, n: u32) {
        self.moves_multi(&[q], n);
    }

    /// `n` turns of qubit `q`.
    pub fn turns(&mut self, q: usize, n: u32) {
        self.turns_multi(&[q], n);
    }

    /// `n` straight moves of each qubit in `qubits`, qubit by qubit.
    pub fn moves_multi(&mut self, qubits: &[usize], n: u32) {
        self.counts.moves += qubits.len() as u64 * u64::from(n);
        self.frame
            .get_mut()
            .movement_batch(PhysOpKind::StraightMove, qubits, n, self.rng);
    }

    /// `n` turns of each qubit in `qubits`, qubit by qubit.
    pub fn turns_multi(&mut self, qubits: &[usize], n: u32) {
        self.counts.turns += qubits.len() as u64 * u64::from(n);
        self.frame
            .get_mut()
            .movement_batch(PhysOpKind::Turn, qubits, n, self.rng);
    }

    /// X-component error mask over a 7-qubit block given as indices
    /// (a single limb shift for the contiguous blocks the study uses).
    pub fn x_mask(&self, block: &[usize; 7]) -> u8 {
        self.frame.get().x_mask7(block)
    }

    /// Z-component error mask over a 7-qubit block.
    pub fn z_mask(&self, block: &[usize; 7]) -> u8 {
        self.frame.get().z_mask7(block)
    }

    /// Serial latency of everything executed so far (diagnostics).
    pub fn serial_latency_us(&self, table: &LatencyTable) -> f64 {
        self.counts.serial_latency().eval(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_follow_ops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(3, ErrorModel::noiseless(), &mut rng);
        ex.prep(0);
        ex.h(0);
        ex.cx(0, 1);
        ex.cz(1, 2);
        ex.moves(2, 4);
        ex.turns(2, 1);
        let _ = ex.measure_z(1);
        let c = ex.counts();
        assert_eq!(c.preps, 1);
        assert_eq!(c.one_qubit_gates, 1);
        assert_eq!(c.two_qubit_gates, 2);
        assert_eq!(c.moves, 4);
        assert_eq!(c.turns, 1);
        assert_eq!(c.measurements, 1);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn masks_reflect_frame() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        ex.inject(2, Pauli::X);
        ex.inject(5, Pauli::Y);
        let block = [0, 1, 2, 3, 4, 5, 6];
        assert_eq!(ex.x_mask(&block), 0b010_0100);
        assert_eq!(ex.z_mask(&block), 0b010_0000);
    }

    #[test]
    fn arena_executor_matches_owned_executor() {
        // Same seed, same ops: the borrowed-frame path must be
        // behaviorally identical to the owned path.
        let mut arena = TrialArena::new();
        let run = |ex: &mut Executor<'_, StdRng>| {
            ex.prep(0);
            ex.h(0);
            ex.cx(0, 1);
            ex.inject(1, Pauli::Y);
            (
                ex.measure_z(1),
                ex.counts(),
                ex.x_mask(&[0, 1, 2, 3, 4, 5, 6]),
            )
        };
        let mut r1 = StdRng::seed_from_u64(9);
        let mut owned = Executor::new(7, ErrorModel::paper(), &mut r1);
        let a = run(&mut owned);
        for _ in 0..3 {
            let mut r2 = StdRng::seed_from_u64(9);
            arena.reset_sampling();
            let mut borrowed = Executor::in_arena(7, ErrorModel::paper(), &mut r2, &mut arena);
            assert_eq!(a, run(&mut borrowed));
        }
    }

    #[test]
    fn serial_latency_adds_up() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(2, ErrorModel::noiseless(), &mut rng);
        ex.prep(0); // 51
        ex.cx(0, 1); // 10
        let _ = ex.measure_z(1); // 50
        assert_eq!(ex.serial_latency_us(&LatencyTable::ion_trap()), 111.0);
    }
}
