//! Protocol executor: drives a [`PauliFrame`] through a fault-tolerance
//! protocol while tallying physical-operation counts.
//!
//! The ancilla-preparation protocols contain classical feedback
//! (measure, then conditionally correct or discard), so they cannot be
//! expressed as straight-line circuits. Each protocol is instead a Rust
//! function over an [`Executor`], which:
//!
//! * applies each op to the Pauli frame (injecting faults per the
//!   error model),
//! * returns measurement outcome *flips* to the protocol logic, and
//! * counts ops by kind, so the same protocol run yields both
//!   Monte-Carlo statistics and the op census used for latency and
//!   bandwidth accounting (keeping a single source of truth).

use qods_phys::error_model::ErrorModel;
use qods_phys::frame::PauliFrame;
use qods_phys::latency::{LatencyTable, SymbolicLatency};
use qods_phys::ops::{Gate1, Gate2, PhysOp, PhysOpKind};
use qods_phys::pauli::Pauli;
use rand::Rng;

/// Census of physical operations executed by a protocol.
///
/// # Example
///
/// ```
/// use qods_steane::executor::OpCounts;
///
/// let mut c = OpCounts::default();
/// c.two_qubit_gates = 6;
/// c.measurements = 2;
/// assert_eq!(c.total(), 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// One-qubit gates (including conditional Pauli corrections).
    pub one_qubit_gates: u64,
    /// Two-qubit gates.
    pub two_qubit_gates: u64,
    /// Measurements in any basis.
    pub measurements: u64,
    /// Physical |0> preparations.
    pub preps: u64,
    /// Straight macroblock moves.
    pub moves: u64,
    /// Turns.
    pub turns: u64,
}

impl OpCounts {
    /// Total op count.
    pub fn total(&self) -> u64 {
        self.one_qubit_gates
            + self.two_qubit_gates
            + self.measurements
            + self.preps
            + self.moves
            + self.turns
    }

    /// A symbolic latency assuming fully serial execution — an upper
    /// bound used in sanity checks (scheduled latencies come from the
    /// factory models, not from here).
    pub fn serial_latency(&self) -> SymbolicLatency {
        SymbolicLatency {
            n_1q: self.one_qubit_gates as u32,
            n_2q: self.two_qubit_gates as u32,
            n_meas: self.measurements as u32,
            n_prep: self.preps as u32,
            n_move: self.moves as u32,
            n_turn: self.turns as u32,
        }
    }

    fn record(&mut self, kind: PhysOpKind) {
        match kind {
            PhysOpKind::OneQubitGate => self.one_qubit_gates += 1,
            PhysOpKind::TwoQubitGate => self.two_qubit_gates += 1,
            PhysOpKind::Measurement => self.measurements += 1,
            PhysOpKind::ZeroPrepare => self.preps += 1,
            PhysOpKind::StraightMove => self.moves += 1,
            PhysOpKind::Turn => self.turns += 1,
        }
    }
}

/// Executes protocol steps against a Pauli frame with fault injection.
pub struct Executor<'r, R: Rng> {
    frame: PauliFrame,
    rng: &'r mut R,
    counts: OpCounts,
}

impl<'r, R: Rng> Executor<'r, R> {
    /// A new executor over `n` physical qubits.
    pub fn new(n: usize, model: ErrorModel, rng: &'r mut R) -> Self {
        Executor {
            frame: PauliFrame::new(n, model),
            rng,
            counts: OpCounts::default(),
        }
    }

    /// The op census so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Read-only view of the underlying frame (for final-state checks).
    pub fn frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// Deterministic fault injection (for directed tests).
    pub fn inject(&mut self, q: usize, p: Pauli) {
        self.frame.inject(q, p);
    }

    /// A fair coin from the executor's RNG — used by protocols whose
    /// ideal measurement outcomes are genuinely random (e.g. the pi/8
    /// gadget's teleportation branch).
    pub fn coin(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    fn apply(&mut self, op: PhysOp) -> Option<bool> {
        self.counts.record(op.kind());
        self.frame.apply(&op, self.rng)
    }

    /// Physical |0> preparation.
    pub fn prep(&mut self, q: usize) {
        self.apply(PhysOp::Prep(q));
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::H, q));
    }

    /// Phase gate.
    pub fn s(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::S, q));
    }

    /// Pauli Z as a deliberate circuit gate (frame-transparent).
    pub fn z(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::Z, q));
    }

    /// Pauli X as a deliberate circuit gate (frame-transparent).
    pub fn x(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::X, q));
    }

    /// pi/8 gate.
    pub fn t(&mut self, q: usize) {
        self.apply(PhysOp::Gate1(Gate1::T, q));
    }

    /// CX gate.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.apply(PhysOp::Gate2(Gate2::Cx, c, t));
    }

    /// CZ gate.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.apply(PhysOp::Gate2(Gate2::Cz, a, b));
    }

    /// CS gate (used in the pi/8 gadget).
    pub fn cs(&mut self, a: usize, b: usize) {
        self.apply(PhysOp::Gate2(Gate2::Cs, a, b));
    }

    /// Z-basis measurement; returns true when the outcome is flipped
    /// relative to ideal execution.
    pub fn measure_z(&mut self, q: usize) -> bool {
        self.apply(PhysOp::measure_z(q))
            .expect("measurement returns")
    }

    /// X-basis measurement flip.
    pub fn measure_x(&mut self, q: usize) -> bool {
        self.apply(PhysOp::measure_x(q))
            .expect("measurement returns")
    }

    /// Conditional Pauli correction (costed as a one-qubit gate).
    pub fn cond_pauli(&mut self, q: usize, p: Pauli) {
        self.apply(PhysOp::CondPauli(p, q));
    }

    /// `n` straight moves of qubit `q` (fault chance per move).
    pub fn moves(&mut self, q: usize, n: u32) {
        for _ in 0..n {
            self.apply(PhysOp::Move(q));
        }
    }

    /// `n` turns of qubit `q`.
    pub fn turns(&mut self, q: usize, n: u32) {
        for _ in 0..n {
            self.apply(PhysOp::TurnOp(q));
        }
    }

    /// X-component error mask over a 7-qubit block given as indices.
    pub fn x_mask(&self, block: &[usize; 7]) -> u8 {
        let mut m = 0u8;
        for (i, &q) in block.iter().enumerate() {
            if self.frame.error_at(q).has_x() {
                m |= 1 << i;
            }
        }
        m
    }

    /// Z-component error mask over a 7-qubit block.
    pub fn z_mask(&self, block: &[usize; 7]) -> u8 {
        let mut m = 0u8;
        for (i, &q) in block.iter().enumerate() {
            if self.frame.error_at(q).has_z() {
                m |= 1 << i;
            }
        }
        m
    }

    /// Serial latency of everything executed so far (diagnostics).
    pub fn serial_latency_us(&self, table: &LatencyTable) -> f64 {
        self.counts.serial_latency().eval(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_follow_ops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(3, ErrorModel::noiseless(), &mut rng);
        ex.prep(0);
        ex.h(0);
        ex.cx(0, 1);
        ex.cz(1, 2);
        ex.moves(2, 4);
        ex.turns(2, 1);
        let _ = ex.measure_z(1);
        let c = ex.counts();
        assert_eq!(c.preps, 1);
        assert_eq!(c.one_qubit_gates, 1);
        assert_eq!(c.two_qubit_gates, 2);
        assert_eq!(c.moves, 4);
        assert_eq!(c.turns, 1);
        assert_eq!(c.measurements, 1);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn masks_reflect_frame() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(7, ErrorModel::noiseless(), &mut rng);
        ex.inject(2, Pauli::X);
        ex.inject(5, Pauli::Y);
        let block = [0, 1, 2, 3, 4, 5, 6];
        assert_eq!(ex.x_mask(&block), 0b010_0100);
        assert_eq!(ex.z_mask(&block), 0b010_0000);
    }

    #[test]
    fn serial_latency_adds_up() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ex = Executor::new(2, ErrorModel::noiseless(), &mut rng);
        ex.prep(0); // 51
        ex.cx(0, 1); // 10
        let _ = ex.measure_z(1); // 50
        assert_eq!(ex.serial_latency_us(&LatencyTable::ion_trap()), 111.0);
    }
}
