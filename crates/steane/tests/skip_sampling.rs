//! Statistical agreement of geometric skip-sampling with exact per-op
//! Bernoulli sampling, measured end to end through the Fig 4
//! Monte-Carlo evaluation at three error-rate decades.
//!
//! The two samplers draw from different RNG streams, so their estimates
//! are independent; agreement is asserted within the combined 95%
//! confidence half-widths (all seeds fixed — the test is
//! deterministic).

use qods_phys::error_model::{ErrorModel, FaultSampling};
use qods_steane::eval::evaluate_prep;
use qods_steane::prep::PrepStrategy;

fn agree(label: &str, a: f64, b: f64, ci: f64) {
    assert!(
        (a - b).abs() <= ci,
        "{label}: exact {a:.4e} vs skip {b:.4e} beyond ci {ci:.4e}"
    );
}

/// Error, dirty, and discard rates agree between samplers across three
/// decades of physical error rate (1e-4, 1e-3, 1e-2 gate error).
#[test]
fn skip_matches_exact_across_three_decades() {
    // More trials at lower rates so every decade resolves its rate.
    let cases = [(1.0, 600_000u64), (10.0, 150_000), (100.0, 40_000)];
    for (scale, trials) in cases {
        let base = ErrorModel::paper().scaled(scale);
        let exact = evaluate_prep(
            PrepStrategy::Basic,
            base.with_sampling(FaultSampling::Exact),
            trials,
            11,
            2,
        );
        let skip = evaluate_prep(
            PrepStrategy::Basic,
            base.with_sampling(FaultSampling::Skip),
            trials,
            1213,
            2,
        );
        assert!(
            exact.stats.logical_errors > 0,
            "scale {scale}: exact sampler resolved no errors; grow trials"
        );
        assert!(skip.stats.logical_errors > 0, "scale {scale}: skip");
        let ci = exact.stats.error_rate_ci95() + skip.stats.error_rate_ci95();
        agree(
            &format!("scale {scale} uncorrectable"),
            exact.error_rate(),
            skip.error_rate(),
            ci,
        );
        // The dirty metric has ~6x the statistics of the uncorrectable
        // one; compare with its own binomial ci.
        let ci_dirty = {
            let half = |p: f64, n: u64| 1.96 * (p * (1.0 - p) / n as f64).sqrt();
            half(exact.dirty_rate(), exact.stats.accepted)
                + half(skip.dirty_rate(), skip.stats.accepted)
        };
        agree(
            &format!("scale {scale} dirty"),
            exact.dirty_rate(),
            skip.dirty_rate(),
            ci_dirty,
        );
    }
}

/// Discard rates (verification rejections) agree between samplers —
/// the metric most sensitive to where faults land inside a trial.
#[test]
fn skip_matches_exact_discard_rates() {
    for (scale, trials) in [(10.0, 150_000u64), (100.0, 40_000)] {
        let base = ErrorModel::paper().scaled(scale);
        let exact = evaluate_prep(
            PrepStrategy::VerifyOnly,
            base.with_sampling(FaultSampling::Exact),
            trials,
            21,
            2,
        );
        let skip = evaluate_prep(
            PrepStrategy::VerifyOnly,
            base.with_sampling(FaultSampling::Skip),
            trials,
            2223,
            2,
        );
        assert!(exact.stats.discarded > 0, "scale {scale}: no discards");
        let ci = exact.stats.discard_rate_ci95() + skip.stats.discard_rate_ci95();
        agree(
            &format!("scale {scale} discard"),
            exact.discard_rate(),
            skip.discard_rate(),
            ci,
        );
    }
}

/// `Auto` resolves to the skip sampler at the paper's rates and to the
/// exact sampler deep in the high-noise regime, and tracks whichever it
/// picked exactly (same seed, same stream).
#[test]
fn auto_mode_matches_its_resolved_sampler() {
    let low = ErrorModel::paper();
    let auto = evaluate_prep(PrepStrategy::Basic, low, 50_000, 5, 2);
    let skip = evaluate_prep(
        PrepStrategy::Basic,
        low.with_sampling(FaultSampling::Skip),
        50_000,
        5,
        2,
    );
    assert_eq!(auto.stats, skip.stats, "auto must be skip at paper rates");

    let high = ErrorModel::paper().scaled(3000.0); // p_gate = 0.3
    let auto = evaluate_prep(PrepStrategy::Basic, high, 20_000, 5, 2);
    let exact = evaluate_prep(
        PrepStrategy::Basic,
        high.with_sampling(FaultSampling::Exact),
        20_000,
        5,
        2,
    );
    assert_eq!(auto.stats, exact.stats, "auto must be exact at p=0.3");
}
