//! Diagnostic probe: prints both delivered-quality metrics for each
//! preparation strategy at an inflated error rate (for cheap stats) and
//! at the paper's rate.
use qods_phys::error_model::ErrorModel;
use qods_steane::eval::evaluate_all;

fn main() {
    for (label, model, trials) in [
        (
            "10x paper noise",
            ErrorModel::paper().scaled(10.0),
            200_000u64,
        ),
        ("paper noise (1x)", ErrorModel::paper(), 2_000_000u64),
    ] {
        println!("== {label} ==");
        for e in evaluate_all(model, trials, 1234, 8) {
            println!(
                "{:<20} uncorrectable={:.3e} dirty={:.3e} discard={:.4} paper={:.1e}",
                e.strategy.name(),
                e.error_rate(),
                e.dirty_rate(),
                e.discard_rate(),
                e.strategy.paper_error_rate()
            );
        }
    }
}
