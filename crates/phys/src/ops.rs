//! The physical operation set of the ion-trap technology abstraction.
//!
//! The paper abstracts trapped-ion hardware into a handful of primitive
//! operations (§4.1): one-qubit gates, two-qubit gates, measurement,
//! zero-state preparation, straight channel moves, and turns. Every
//! latency, error, and layout calculation in the study is phrased in
//! terms of these primitives.

use crate::pauli::Pauli;

/// The kind of a physical operation, independent of which qubits it
/// touches. Used to look up latencies ([`crate::latency::LatencyTable`])
/// and error probabilities ([`crate::error_model::ErrorModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysOpKind {
    /// Any one-qubit unitary (H, X, Y, Z, S, T, small rotations...).
    OneQubitGate,
    /// Any two-qubit unitary (CX, CZ, CS...).
    TwoQubitGate,
    /// Projective measurement (basis recorded on the op itself).
    Measurement,
    /// Preparation of a fresh physical |0> state.
    ZeroPrepare,
    /// Ballistic movement across one macroblock.
    StraightMove,
    /// Movement around a corner (much slower than a straight move).
    Turn,
}

/// One-qubit gate flavors tracked by the Pauli-frame simulator.
///
/// Only the Clifford-frame action matters for error propagation, so the
/// non-Clifford `T` is listed explicitly and handled by stochastic
/// twirling in [`crate::frame::PauliFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate1 {
    /// Identity / idle slot (still occupies a gate location).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard: exchanges X and Z errors.
    H,
    /// Phase gate S: maps X errors to Y errors.
    S,
    /// Inverse phase gate.
    Sdg,
    /// pi/8 gate (T). Non-Clifford; error propagation is twirled.
    T,
    /// Inverse pi/8 gate.
    Tdg,
}

/// Two-qubit gate flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate2 {
    /// Controlled-X: X propagates control->target, Z target->control.
    Cx,
    /// Controlled-Z: X on either qubit deposits Z on the other.
    Cz,
    /// Controlled-S, used in the pi/8-ancilla gadget (Fig 5b). Treated
    /// as CZ for Pauli-frame propagation purposes (documented
    /// approximation: its non-Clifford part only matters at second
    /// order in the error rate).
    Cs,
}

/// Measurement bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basis {
    /// Computational (Z) basis: outcomes flipped by X-component errors.
    Z,
    /// Hadamard (X) basis: outcomes flipped by Z-component errors.
    X,
}

/// A concrete physical operation applied to specific physical qubits.
///
/// # Example
///
/// ```
/// use qods_phys::ops::{PhysOp, PhysOpKind};
///
/// let op = PhysOp::cx(2, 5);
/// assert_eq!(op.kind(), PhysOpKind::TwoQubitGate);
/// assert_eq!(op.qubits(), vec![2, 5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysOp {
    /// One-qubit gate on a qubit.
    Gate1(Gate1, usize),
    /// Two-qubit gate on (control, target).
    Gate2(Gate2, usize, usize),
    /// Measurement of a qubit in a basis.
    Measure(Basis, usize),
    /// Fresh |0> preparation.
    Prep(usize),
    /// One straight macroblock move of a qubit.
    Move(usize),
    /// One turn of a qubit.
    TurnOp(usize),
    /// A deterministic Pauli applied conditionally on earlier
    /// measurement outcomes (classical feedback); `usize` is the qubit,
    /// the controlling outcomes are wired by the executing circuit.
    /// Modeled as a one-qubit gate for latency/error purposes.
    CondPauli(Pauli, usize),
}

impl PhysOp {
    /// Convenience constructor for a CX gate.
    pub fn cx(control: usize, target: usize) -> Self {
        PhysOp::Gate2(Gate2::Cx, control, target)
    }

    /// Convenience constructor for a CZ gate.
    pub fn cz(a: usize, b: usize) -> Self {
        PhysOp::Gate2(Gate2::Cz, a, b)
    }

    /// Convenience constructor for a Hadamard.
    pub fn h(q: usize) -> Self {
        PhysOp::Gate1(Gate1::H, q)
    }

    /// Convenience constructor for a Z-basis measurement.
    pub fn measure_z(q: usize) -> Self {
        PhysOp::Measure(Basis::Z, q)
    }

    /// Convenience constructor for an X-basis measurement.
    pub fn measure_x(q: usize) -> Self {
        PhysOp::Measure(Basis::X, q)
    }

    /// The operation's kind, for latency and error lookups.
    pub fn kind(&self) -> PhysOpKind {
        match self {
            PhysOp::Gate1(..) | PhysOp::CondPauli(..) => PhysOpKind::OneQubitGate,
            PhysOp::Gate2(..) => PhysOpKind::TwoQubitGate,
            PhysOp::Measure(..) => PhysOpKind::Measurement,
            PhysOp::Prep(_) => PhysOpKind::ZeroPrepare,
            PhysOp::Move(_) => PhysOpKind::StraightMove,
            PhysOp::TurnOp(_) => PhysOpKind::Turn,
        }
    }

    /// The physical qubits the operation touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            PhysOp::Gate1(_, q)
            | PhysOp::Measure(_, q)
            | PhysOp::Prep(q)
            | PhysOp::Move(q)
            | PhysOp::TurnOp(q)
            | PhysOp::CondPauli(_, q) => vec![q],
            PhysOp::Gate2(_, a, b) => vec![a, b],
        }
    }

    /// True for operations that can suffer faults (all of them, in the
    /// paper's model — including moves, measurements, and preps).
    pub fn is_faulty_location(&self) -> bool {
        true
    }
}

/// A straight-line physical circuit: operations in program order.
///
/// The Pauli-frame simulator executes these in order; there is no
/// control flow other than [`PhysOp::CondPauli`], whose condition is
/// resolved by the caller (circuits in `qods-steane` wire measurement
/// outcomes to corrections themselves).
#[derive(Debug, Clone, Default)]
pub struct PhysCircuit {
    /// Number of physical qubits referenced.
    pub n_qubits: usize,
    /// Operations in execution order.
    pub ops: Vec<PhysOp>,
}

impl PhysCircuit {
    /// An empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        PhysCircuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the op references a qubit outside the circuit.
    pub fn push(&mut self, op: PhysOp) {
        for q in op.qubits() {
            assert!(
                q < self.n_qubits,
                "op {op:?} references qubit {q} >= {}",
                self.n_qubits
            );
        }
        self.ops.push(op);
    }

    /// Counts operations of a given kind.
    pub fn count(&self, kind: PhysOpKind) -> usize {
        self.ops.iter().filter(|o| o.kind() == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_classified() {
        assert_eq!(PhysOp::h(0).kind(), PhysOpKind::OneQubitGate);
        assert_eq!(PhysOp::cx(0, 1).kind(), PhysOpKind::TwoQubitGate);
        assert_eq!(PhysOp::measure_z(0).kind(), PhysOpKind::Measurement);
        assert_eq!(PhysOp::Prep(0).kind(), PhysOpKind::ZeroPrepare);
        assert_eq!(PhysOp::Move(0).kind(), PhysOpKind::StraightMove);
        assert_eq!(PhysOp::TurnOp(0).kind(), PhysOpKind::Turn);
    }

    #[test]
    fn circuit_counts_ops() {
        let mut c = PhysCircuit::new(3);
        c.push(PhysOp::Prep(0));
        c.push(PhysOp::h(0));
        c.push(PhysOp::cx(0, 1));
        c.push(PhysOp::cx(0, 2));
        c.push(PhysOp::measure_z(2));
        assert_eq!(c.count(PhysOpKind::TwoQubitGate), 2);
        assert_eq!(c.count(PhysOpKind::Measurement), 1);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn out_of_range_op_panics() {
        let mut c = PhysCircuit::new(1);
        c.push(PhysOp::cx(0, 1));
    }
}
