//! A small Monte-Carlo harness: seeded, optionally multi-threaded
//! trial runners with acceptance/error bookkeeping.
//!
//! The paper evaluates every ancilla-preparation circuit by Monte-Carlo
//! simulation (§2.2). Circuits with verification can *discard* a trial
//! (the block fails verification and is recycled), so the harness
//! distinguishes discarded trials from accepted ones, and counts logical
//! errors only among accepted trials — matching how the paper separately
//! reports error rates (per delivered ancilla) and the verification
//! failure rate (0.2%).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The circuit delivered its product; `logical_error` records
    /// whether the delivered state carries an uncorrectable error.
    Accepted {
        /// True when the delivered state is logically corrupted.
        logical_error: bool,
    },
    /// Like [`TrialOutcome::Accepted`], with a secondary "any residual
    /// error at all" flag for experiments that report both metrics.
    AcceptedDetailed {
        /// True when the delivered state is logically corrupted.
        logical_error: bool,
        /// True when the delivered state carries *any* non-benign
        /// residual (including correctable ones).
        dirty: bool,
    },
    /// Verification rejected the product; nothing was delivered.
    Discarded,
}

/// Aggregated statistics over many trials.
///
/// # Example
///
/// ```
/// use qods_phys::montecarlo::{run_trials, TrialOutcome};
///
/// // A fake experiment that errors 10% of the time and discards 50%.
/// let stats = run_trials(10_000, 42, |rng| {
///     use rand::Rng;
///     if rng.gen_bool(0.5) {
///         TrialOutcome::Discarded
///     } else {
///         TrialOutcome::Accepted { logical_error: rng.gen_bool(0.1) }
///     }
/// });
/// assert!((stats.discard_rate() - 0.5).abs() < 0.05);
/// assert!((stats.error_rate() - 0.1).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonteCarloStats {
    /// Total trials attempted.
    pub trials: u64,
    /// Trials rejected by verification.
    pub discarded: u64,
    /// Trials that delivered a product.
    pub accepted: u64,
    /// Accepted trials whose product carried a logical error.
    pub logical_errors: u64,
    /// Accepted trials whose product carried any non-benign residual
    /// (only populated by [`TrialOutcome::AcceptedDetailed`]).
    pub dirty_errors: u64,
}

impl MonteCarloStats {
    /// Merges statistics from another run (used by the parallel runner).
    pub fn merge(&mut self, other: &MonteCarloStats) {
        self.trials += other.trials;
        self.discarded += other.discarded;
        self.accepted += other.accepted;
        self.logical_errors += other.logical_errors;
        self.dirty_errors += other.dirty_errors;
    }

    /// Any-residual-error rate among accepted products (0 when the
    /// experiment did not report the detailed flag).
    pub fn dirty_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.dirty_errors as f64 / self.accepted as f64
        }
    }

    /// Logical error rate among *accepted* (delivered) products.
    /// Returns 0 when nothing was accepted.
    pub fn error_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.accepted as f64
        }
    }

    /// Fraction of trials rejected by verification.
    pub fn discard_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.discarded as f64 / self.trials as f64
        }
    }

    /// A 95% confidence half-width for the error rate (normal
    /// approximation); useful for asserting Monte-Carlo agreement.
    pub fn error_rate_ci95(&self) -> f64 {
        if self.accepted == 0 {
            return f64::INFINITY;
        }
        let p = self.error_rate();
        1.96 * (p * (1.0 - p) / self.accepted as f64).sqrt()
    }

    fn record(&mut self, outcome: TrialOutcome) {
        self.trials += 1;
        match outcome {
            TrialOutcome::Discarded => self.discarded += 1,
            TrialOutcome::Accepted { logical_error } => {
                self.accepted += 1;
                if logical_error {
                    self.logical_errors += 1;
                }
            }
            TrialOutcome::AcceptedDetailed {
                logical_error,
                dirty,
            } => {
                self.accepted += 1;
                if logical_error {
                    self.logical_errors += 1;
                }
                if dirty {
                    self.dirty_errors += 1;
                }
            }
        }
    }
}

/// Runs `n` seeded trials sequentially.
pub fn run_trials<F>(n: u64, seed: u64, mut trial: F) -> MonteCarloStats
where
    F: FnMut(&mut StdRng) -> TrialOutcome,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = MonteCarloStats::default();
    for _ in 0..n {
        stats.record(trial(&mut rng));
    }
    stats
}

/// Runs `n` seeded trials across `threads` OS threads. Each thread gets
/// a distinct seed derived from `seed`, so results are reproducible for
/// a fixed `(seed, threads)` pair.
pub fn run_trials_parallel<F>(n: u64, seed: u64, threads: usize, trial: F) -> MonteCarloStats
where
    F: Fn(&mut StdRng) -> TrialOutcome + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = MonteCarloStats::default();
        for _ in 0..n {
            stats.record(trial(&mut rng));
        }
        return stats;
    }
    let per = n / threads as u64;
    let extra = n % threads as u64;
    let mut total = MonteCarloStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let quota = per + u64::from((t as u64) < extra);
            let trial = &trial;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1)),
                );
                let mut stats = MonteCarloStats::default();
                for _ in 0..quota {
                    stats.record(trial(&mut rng));
                }
                stats
            }));
        }
        for h in handles {
            total.merge(&h.join().expect("monte-carlo worker panicked"));
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stats_bookkeeping() {
        let stats = run_trials(1000, 1, |rng| {
            if rng.gen_bool(0.25) {
                TrialOutcome::Discarded
            } else {
                TrialOutcome::Accepted {
                    logical_error: rng.gen_bool(0.5),
                }
            }
        });
        assert_eq!(stats.trials, 1000);
        assert_eq!(stats.accepted + stats.discarded, 1000);
        assert!((stats.discard_rate() - 0.25).abs() < 0.06);
        assert!((stats.error_rate() - 0.5).abs() < 0.06);
    }

    #[test]
    fn parallel_matches_totals() {
        let stats = run_trials_parallel(10_000, 9, 4, |rng| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.01),
        });
        assert_eq!(stats.trials, 10_000);
        assert_eq!(stats.accepted, 10_000);
        assert!((stats.error_rate() - 0.01).abs() < 0.005);
    }

    #[test]
    fn parallel_is_reproducible() {
        let f = |rng: &mut StdRng| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.3),
        };
        let a = run_trials_parallel(5000, 77, 3, f);
        let b = run_trials_parallel(5000, 77, 3, f);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = MonteCarloStats::default();
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s.discard_rate(), 0.0);
        assert!(s.error_rate_ci95().is_infinite());
    }
}
