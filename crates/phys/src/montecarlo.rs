//! A Monte-Carlo harness: seeded, optionally multi-threaded trial
//! runners with acceptance/error bookkeeping and allocation-free
//! per-trial state.
//!
//! The paper evaluates every ancilla-preparation circuit by Monte-Carlo
//! simulation (§2.2). Circuits with verification can *discard* a trial
//! (the block fails verification and is recycled), so the harness
//! distinguishes discarded trials from accepted ones, and counts logical
//! errors only among accepted trials — matching how the paper separately
//! reports error rates (per delivered ancilla) and the verification
//! failure rate (0.2%).
//!
//! ## Allocation-free trials
//!
//! Every trial closure receives a [`TrialArena`] alongside its RNG: a
//! bundle of reusable buffers (Pauli frame, measurement-flip vector,
//! limb scratch) that the hot path borrows instead of allocating. A
//! steady-state trial performs zero heap allocations.
//!
//! ## Work scheduling and determinism
//!
//! Trials are processed in fixed-size chunks ([`TRIAL_CHUNK`]); each
//! chunk seeds its own RNG from `(seed, chunk index)`. The parallel
//! runner hands chunks to the workspace's shared worker pool
//! ([`qods_pool::WorkQueue`] + [`qods_pool::run_workers`] — chunked
//! work-stealing), so discard-heavy or otherwise unbalanced trial
//! loads cannot idle a thread the way the old static per-thread quota
//! split could. Because the statistics of a chunk
//! depend only on its index — never on which worker ran it — results
//! are bit-identical for a fixed `(trials, seed)` across *any* thread
//! count, including the sequential runner. (This is stronger than the
//! old engine's per-`(seed, threads)` contract; the stream itself
//! differs from the old engine by design — see DESIGN.md.)

use crate::error_model::ErrorModel;
use crate::frame::PauliFrame;
use qods_pool::WorkQueue;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trials per scheduling chunk. Large enough that the atomic cursor and
/// per-chunk RNG seeding are noise (a chunk is ~10^5–10^6 ops), small
/// enough that typical trial counts split into many more chunks than
/// cores, which is what lets stealing balance discard-heavy loads.
pub const TRIAL_CHUNK: u64 = 1024;

/// Reusable per-trial buffers: a Pauli frame, a measurement-flip
/// vector, and generic limb scratch. One arena lives per worker thread
/// and is lent to every trial it runs, so steady-state trials allocate
/// nothing.
///
/// # Example
///
/// ```
/// use qods_phys::error_model::ErrorModel;
/// use qods_phys::montecarlo::TrialArena;
/// use qods_phys::ops::PhysOp;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut arena = TrialArena::new();
/// let mut rng = StdRng::seed_from_u64(7);
/// let (frame, flips) = arena.frame_and_flips(3, ErrorModel::paper());
/// frame.run(&[PhysOp::Prep(0), PhysOp::measure_z(0)], &mut rng, flips);
/// assert_eq!(flips.len(), 1);
/// ```
#[derive(Debug)]
pub struct TrialArena {
    frame: PauliFrame,
    flips: Vec<bool>,
    scratch: Vec<u64>,
}

impl TrialArena {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        TrialArena {
            frame: PauliFrame::new(0, ErrorModel::noiseless()),
            flips: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The arena's Pauli frame, reset for a fresh trial over `n` qubits
    /// under `model` (reusing the existing allocation). The fault
    /// sampler's geometric countdown carries across trials — exact by
    /// memorylessness; the runners isolate it per chunk via
    /// [`TrialArena::reset_sampling`].
    pub fn frame(&mut self, n: usize, model: ErrorModel) -> &mut PauliFrame {
        self.frame.reset(n, model);
        &mut self.frame
    }

    /// Starts a fresh fault-sampling stream (called by the trial
    /// runners at chunk boundaries so a chunk's results are a pure
    /// function of its seed, wherever the arena ran before).
    pub fn reset_sampling(&mut self) {
        self.frame.reset_sampling();
    }

    /// The reset frame plus the reusable measurement-flip buffer, split
    /// so both can be borrowed at once (e.g. for
    /// [`PauliFrame::run`]'s out-parameter).
    pub fn frame_and_flips(
        &mut self,
        n: usize,
        model: ErrorModel,
    ) -> (&mut PauliFrame, &mut Vec<bool>) {
        self.frame.reset(n, model);
        (&mut self.frame, &mut self.flips)
    }

    /// Reusable limb scratch, cleared and zero-filled to `limbs` words.
    pub fn scratch(&mut self, limbs: usize) -> &mut Vec<u64> {
        self.scratch.clear();
        self.scratch.resize(limbs, 0);
        &mut self.scratch
    }
}

impl Default for TrialArena {
    fn default() -> Self {
        TrialArena::new()
    }
}

/// Outcome of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The circuit delivered its product; `logical_error` records
    /// whether the delivered state carries an uncorrectable error.
    Accepted {
        /// True when the delivered state is logically corrupted.
        logical_error: bool,
    },
    /// Like [`TrialOutcome::Accepted`], with a secondary "any residual
    /// error at all" flag for experiments that report both metrics.
    AcceptedDetailed {
        /// True when the delivered state is logically corrupted.
        logical_error: bool,
        /// True when the delivered state carries *any* non-benign
        /// residual (including correctable ones).
        dirty: bool,
    },
    /// Verification rejected the product; nothing was delivered.
    Discarded,
}

/// Aggregated statistics over many trials.
///
/// # Example
///
/// ```
/// use qods_phys::montecarlo::{run_trials, TrialOutcome};
///
/// // A fake experiment that errors 10% of the time and discards 50%.
/// let stats = run_trials(10_000, 42, |rng, _arena| {
///     use rand::Rng;
///     if rng.gen_bool(0.5) {
///         TrialOutcome::Discarded
///     } else {
///         TrialOutcome::Accepted { logical_error: rng.gen_bool(0.1) }
///     }
/// });
/// assert!((stats.discard_rate() - 0.5).abs() < 0.05);
/// assert!((stats.error_rate() - 0.1).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonteCarloStats {
    /// Total trials attempted.
    pub trials: u64,
    /// Trials rejected by verification.
    pub discarded: u64,
    /// Trials that delivered a product.
    pub accepted: u64,
    /// Accepted trials whose product carried a logical error.
    pub logical_errors: u64,
    /// Accepted trials whose product carried any non-benign residual
    /// (only populated by [`TrialOutcome::AcceptedDetailed`]).
    pub dirty_errors: u64,
}

impl MonteCarloStats {
    /// Merges statistics from another run (used by the parallel runner;
    /// counts are sums, so merge order never matters).
    pub fn merge(&mut self, other: &MonteCarloStats) {
        self.trials += other.trials;
        self.discarded += other.discarded;
        self.accepted += other.accepted;
        self.logical_errors += other.logical_errors;
        self.dirty_errors += other.dirty_errors;
    }

    /// Any-residual-error rate among accepted products (0 when the
    /// experiment did not report the detailed flag).
    pub fn dirty_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.dirty_errors as f64 / self.accepted as f64
        }
    }

    /// Logical error rate among *accepted* (delivered) products.
    /// Returns 0 when nothing was accepted.
    pub fn error_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.accepted as f64
        }
    }

    /// Fraction of trials rejected by verification.
    pub fn discard_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.discarded as f64 / self.trials as f64
        }
    }

    /// A 95% confidence half-width for the error rate (normal
    /// approximation); useful for asserting Monte-Carlo agreement.
    pub fn error_rate_ci95(&self) -> f64 {
        if self.accepted == 0 {
            return f64::INFINITY;
        }
        let p = self.error_rate();
        1.96 * (p * (1.0 - p) / self.accepted as f64).sqrt()
    }

    /// A 95% confidence half-width for the discard rate.
    pub fn discard_rate_ci95(&self) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let p = self.discard_rate();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    fn record(&mut self, outcome: TrialOutcome) {
        self.trials += 1;
        match outcome {
            TrialOutcome::Discarded => self.discarded += 1,
            TrialOutcome::Accepted { logical_error } => {
                self.accepted += 1;
                if logical_error {
                    self.logical_errors += 1;
                }
            }
            TrialOutcome::AcceptedDetailed {
                logical_error,
                dirty,
            } => {
                self.accepted += 1;
                if logical_error {
                    self.logical_errors += 1;
                }
                if dirty {
                    self.dirty_errors += 1;
                }
            }
        }
    }
}

/// The RNG seed owned by chunk `c` of a run seeded with `seed`.
/// Splitmix-style spreading; `StdRng::seed_from_u64` mixes further.
#[inline]
fn chunk_seed(seed: u64, c: u64) -> u64 {
    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c.wrapping_add(1)))
}

/// Runs the trials of chunk `c` (global trial indices
/// `[c * TRIAL_CHUNK, min(n, (c + 1) * TRIAL_CHUNK))`) into `stats`.
fn run_chunk<F>(n: u64, seed: u64, c: u64, trial: &mut F, arena: &mut TrialArena) -> MonteCarloStats
where
    F: FnMut(&mut StdRng, &mut TrialArena) -> TrialOutcome,
{
    // The chunk boundary is the engine's only cancellation point: a
    // deadline hit unwinds *between* chunks, so partial statistics
    // are never observed and the bit-identical-at-any-thread-count
    // contract survives cancellation. The `mc.chunk` fault site rides
    // the same boundary (chaos tests inject delays to force deadline
    // expiry, and panics to exercise the pool's unwind guard).
    if let Some(action) = qods_fault::check_sleeping(qods_fault::site::MC_CHUNK) {
        if action == qods_fault::FaultAction::Panic {
            // qods-lint: allow(P1) -- fault-injection site: this panic IS the injected fault the chaos tests exercise
            panic!("injected fault: mc chunk {c} panicked");
        }
    }
    qods_pool::check_deadline();
    let lo = c * TRIAL_CHUNK;
    let hi = n.min(lo + TRIAL_CHUNK);
    let mut rng = StdRng::seed_from_u64(chunk_seed(seed, c));
    arena.reset_sampling();
    let mut stats = MonteCarloStats::default();
    for _ in lo..hi {
        stats.record(trial(&mut rng, arena));
    }
    stats
}

/// Runs `n` seeded trials sequentially. Identical statistics to
/// [`run_trials_parallel`] at any thread count (both walk the same
/// per-chunk RNG streams).
pub fn run_trials<F>(n: u64, seed: u64, mut trial: F) -> MonteCarloStats
where
    F: FnMut(&mut StdRng, &mut TrialArena) -> TrialOutcome,
{
    let mut arena = TrialArena::new();
    let mut total = MonteCarloStats::default();
    for c in 0..n.div_ceil(TRIAL_CHUNK) {
        total.merge(&run_chunk(n, seed, c, &mut trial, &mut arena));
    }
    total
}

/// Runs `n` seeded trials across `threads` OS threads with chunked
/// work-stealing: workers drain `TRIAL_CHUNK`-sized chunks from an
/// atomic cursor, so a worker that lands on expensive (e.g.
/// discard-and-retry-heavy) trials simply claims fewer chunks instead
/// of gating the join. Results are bit-identical to [`run_trials`] for
/// the same `(n, seed)`, whatever `threads` is.
pub fn run_trials_parallel<F>(n: u64, seed: u64, threads: usize, trial: F) -> MonteCarloStats
where
    F: Fn(&mut StdRng, &mut TrialArena) -> TrialOutcome + Sync,
{
    run_trials_multi(&[(n, seed)], threads, |_, rng, arena| trial(rng, arena))
        .pop()
        .expect("one stream in, one stats out")
}

/// Runs several independent trial streams — `jobs[i] = (n_i, seed_i)`,
/// trial closures told their stream index — through **one** shared
/// work-stealing pool. All streams' chunks feed a single atomic
/// cursor, so a long stream overlaps a short one instead of the pool
/// being statically split between them. Stream `i`'s statistics are
/// bit-identical to `run_trials(n_i, seed_i, ...)` at any thread
/// count.
pub fn run_trials_multi<F>(jobs: &[(u64, u64)], threads: usize, trial: F) -> Vec<MonteCarloStats>
where
    F: Fn(usize, &mut StdRng, &mut TrialArena) -> TrialOutcome + Sync,
{
    // Global chunk index space: stream 0's chunks first, then stream
    // 1's, ... mapped back through the prefix sums.
    let chunk_counts: Vec<u64> = jobs.iter().map(|&(n, _)| n.div_ceil(TRIAL_CHUNK)).collect();
    let total_chunks: u64 = chunk_counts.iter().sum();
    let locate = |g: u64| -> (usize, u64) {
        let mut base = 0u64;
        for (i, &c) in chunk_counts.iter().enumerate() {
            if g < base + c {
                return (i, g - base);
            }
            base += c;
        }
        // qods-lint: allow(P1) -- proven invariant: callers draw g from 0..total_chunks, the sum of chunk_counts
        unreachable!("global chunk index out of range")
    };
    let threads = (threads.max(1) as u64).min(total_chunks.max(1)) as usize;
    if threads <= 1 {
        let mut arena = TrialArena::new();
        let mut totals = vec![MonteCarloStats::default(); jobs.len()];
        for g in 0..total_chunks {
            let (i, c) = locate(g);
            let (n, seed) = jobs[i];
            let mut f = |rng: &mut StdRng, arena: &mut TrialArena| trial(i, rng, arena);
            totals[i].merge(&run_chunk(n, seed, c, &mut f, &mut arena));
        }
        return totals;
    }
    let queue = WorkQueue::new(total_chunks);
    let workers = qods_pool::run_workers(threads, |_| {
        let mut arena = TrialArena::new();
        let mut stats = vec![MonteCarloStats::default(); jobs.len()];
        while let Some(g) = queue.claim() {
            let (i, c) = locate(g);
            let (n, seed) = jobs[i];
            let mut f = |rng: &mut StdRng, arena: &mut TrialArena| trial(i, rng, arena);
            stats[i].merge(&run_chunk(n, seed, c, &mut f, &mut arena));
        }
        stats
    });
    let mut totals = vec![MonteCarloStats::default(); jobs.len()];
    for worker in &workers {
        for (t, w) in totals.iter_mut().zip(worker) {
            t.merge(w);
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stats_bookkeeping() {
        let stats = run_trials(1000, 1, |rng, _| {
            if rng.gen_bool(0.25) {
                TrialOutcome::Discarded
            } else {
                TrialOutcome::Accepted {
                    logical_error: rng.gen_bool(0.5),
                }
            }
        });
        assert_eq!(stats.trials, 1000);
        assert_eq!(stats.accepted + stats.discarded, 1000);
        assert!((stats.discard_rate() - 0.25).abs() < 0.06);
        assert!((stats.error_rate() - 0.5).abs() < 0.06);
    }

    #[test]
    fn deadlines_cancel_cleanly_and_leave_determinism_intact() {
        let trial = |rng: &mut StdRng, _: &mut TrialArena| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.01),
        };
        // Baseline with no deadline at all.
        let baseline = run_trials(10_000, 7, trial);
        // A far deadline changes nothing, bit for bit, at any thread
        // count: the cancellation point is pure control flow.
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        for threads in [1, 4] {
            let under_deadline = qods_pool::with_deadline(Some(far), || {
                run_trials_parallel(10_000, 7, threads, trial)
            });
            assert_eq!(under_deadline, baseline, "threads = {threads}");
        }
        // An expired deadline unwinds with the sentinel before any
        // chunk runs — nothing partial escapes.
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = qods_pool::with_deadline(Some(past), || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_trials(10_000, 7, trial)
            }))
        })
        .expect_err("expired deadline must cancel the run");
        assert!(
            err.downcast_ref::<qods_pool::DeadlineHit>().is_some(),
            "cancellation unwinds with the deadline sentinel"
        );
        // And the engine is unpoisoned: the same run succeeds after.
        assert_eq!(run_trials(10_000, 7, trial), baseline);
    }

    #[test]
    fn parallel_matches_totals() {
        let stats = run_trials_parallel(10_000, 9, 4, |rng, _| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.01),
        });
        assert_eq!(stats.trials, 10_000);
        assert_eq!(stats.accepted, 10_000);
        assert!((stats.error_rate() - 0.01).abs() < 0.005);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let f = |rng: &mut StdRng, _: &mut TrialArena| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.3),
        };
        let sequential = run_trials(5000, 77, f);
        for threads in [1, 2, 3, 4, 7] {
            let parallel = run_trials_parallel(5000, 77, threads, f);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_is_reproducible() {
        let f = |rng: &mut StdRng, _: &mut TrialArena| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.3),
        };
        let a = run_trials_parallel(5000, 77, 3, f);
        let b = run_trials_parallel(5000, 77, 3, f);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_stream_pool_matches_single_stream_runs() {
        // Each stream through the shared pool must equal its own
        // standalone run, at any thread count, even with uneven sizes.
        let jobs = [(3 * TRIAL_CHUNK + 7, 5u64), (100, 9), (TRIAL_CHUNK, 5)];
        let trial = |i: usize, rng: &mut StdRng, _: &mut TrialArena| TrialOutcome::Accepted {
            logical_error: rng.gen_bool(0.1 * (i + 1) as f64),
        };
        let expected: Vec<MonteCarloStats> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(n, seed))| run_trials(n, seed, |rng, a| trial(i, rng, a)))
            .collect();
        for threads in [1, 2, 5] {
            let got = run_trials_multi(&jobs, threads, trial);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_tail_chunk_is_counted_once() {
        // n deliberately not a multiple of TRIAL_CHUNK.
        let n = 2 * TRIAL_CHUNK + 137;
        let stats = run_trials_parallel(n, 5, 4, |_, _| TrialOutcome::Accepted {
            logical_error: false,
        });
        assert_eq!(stats.trials, n);
        assert_eq!(stats.accepted, n);
    }

    #[test]
    fn arena_buffers_are_reused_across_trials() {
        use crate::ops::PhysOp;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let reallocs = AtomicUsize::new(0);
        let mut last_ptr: *const u64 = std::ptr::null();
        let _ = run_trials(3000, 11, |rng, arena| {
            let (frame, flips) = arena.frame_and_flips(28, ErrorModel::paper());
            frame.run(
                &[PhysOp::Prep(0), PhysOp::cx(0, 1), PhysOp::measure_z(1)],
                rng,
                flips,
            );
            let logical_error = flips[0];
            let ptr = arena.scratch(1).as_ptr();
            if !last_ptr.is_null() && ptr != last_ptr {
                reallocs.fetch_add(1, Ordering::Relaxed);
            }
            last_ptr = ptr;
            TrialOutcome::Accepted { logical_error }
        });
        // The scratch buffer settles after its first growth and must
        // then stay put for the entire run.
        assert!(reallocs.load(Ordering::Relaxed) <= 1);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = MonteCarloStats::default();
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s.discard_rate(), 0.0);
        assert!(s.error_rate_ci95().is_infinite());
        assert!(s.discard_rate_ci95().is_infinite());
    }
}
