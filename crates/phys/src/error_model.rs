//! Per-operation independent error probabilities.
//!
//! §2.2 of the paper: "We assume an independent error probability for
//! each gate and movement operation. The gate error rate is 1e-4 and the
//! error per movement op is 1e-6." Gates here include measurement and
//! preparation; turns are movement.

use crate::ops::PhysOpKind;

/// Error probabilities per physical operation.
///
/// # Example
///
/// ```
/// use qods_phys::error_model::ErrorModel;
/// use qods_phys::ops::PhysOpKind;
///
/// let m = ErrorModel::paper();
/// assert_eq!(m.p_of(PhysOpKind::TwoQubitGate), 1e-4);
/// assert_eq!(m.p_of(PhysOpKind::StraightMove), 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability of a fault at any gate-type op (1q, 2q, measure, prep).
    pub p_gate: f64,
    /// Probability of a fault at any movement op (straight move, turn).
    pub p_move: f64,
}

impl ErrorModel {
    /// The paper's values: gate 1e-4, movement 1e-6.
    pub fn paper() -> Self {
        ErrorModel {
            p_gate: 1e-4,
            p_move: 1e-6,
        }
    }

    /// A noiseless model, for functional testing of circuits.
    pub fn noiseless() -> Self {
        ErrorModel {
            p_gate: 0.0,
            p_move: 0.0,
        }
    }

    /// A uniformly scaled copy (for threshold-style sweeps).
    pub fn scaled(&self, factor: f64) -> Self {
        ErrorModel {
            p_gate: self.p_gate * factor,
            p_move: self.p_move * factor,
        }
    }

    /// Fault probability for an op kind.
    pub fn p_of(&self, kind: PhysOpKind) -> f64 {
        match kind {
            PhysOpKind::OneQubitGate
            | PhysOpKind::TwoQubitGate
            | PhysOpKind::Measurement
            | PhysOpKind::ZeroPrepare => self.p_gate,
            PhysOpKind::StraightMove | PhysOpKind::Turn => self.p_move,
        }
    }
}

impl Default for ErrorModel {
    /// Defaults to the paper's error rates.
    fn default() -> Self {
        ErrorModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates() {
        let m = ErrorModel::paper();
        assert_eq!(m.p_of(PhysOpKind::OneQubitGate), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::Measurement), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::ZeroPrepare), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::Turn), 1e-6);
    }

    #[test]
    fn scaling() {
        let m = ErrorModel::paper().scaled(10.0);
        assert!((m.p_gate - 1e-3).abs() < 1e-15);
        assert!((m.p_move - 1e-5).abs() < 1e-15);
    }
}
