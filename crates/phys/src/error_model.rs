//! Per-operation independent error probabilities, and the fault
//! sampler that turns them into a stream of fault decisions.
//!
//! §2.2 of the paper: "We assume an independent error probability for
//! each gate and movement operation. The gate error rate is 1e-4 and the
//! error per movement op is 1e-6." Gates here include measurement and
//! preparation; turns are movement.
//!
//! ## Geometric skip-sampling
//!
//! At the paper's rates a Bernoulli draw per physical op wastes
//! ~10^4–10^6 RNG calls per actual fault. [`FaultSampler`] instead
//! draws the *gap* to the next fault candidate from a geometric
//! distribution at the dominating rate `p_max = max(p_gate, p_move)`
//! and counts ops down for free; when the countdown strikes an op whose
//! own rate `p_k` is below `p_max`, the candidate is *thinned* —
//! accepted with probability `p_k / p_max` — which reproduces exact
//! independent per-op Bernoulli faults (both constructions make every
//! op fault independently with probability `p_k`; the geometric gap is
//! just the run-length encoding of the Bernoulli stream at rate
//! `p_max`). Noiseless stretches therefore cost zero RNG calls.
//!
//! Above [`SKIP_MAX_P`] the gap draw (one `ln` plus one thinning draw
//! roughly every `1/p_max` ops) stops paying for itself against a plain
//! Bernoulli per op, so [`FaultSampling::Auto`] falls back to exact
//! per-op sampling there. See DESIGN.md for the crossover derivation.

use crate::ops::PhysOpKind;
use rand::Rng;

/// Error-rate regime above which geometric skip-sampling stops paying
/// and [`FaultSampling::Auto`] resolves to exact per-op draws.
///
/// The skip path costs one logarithm per candidate plus one thinning
/// draw, amortized over `1/p_max` ops; the exact path costs one uniform
/// draw per op. With a `ln` costing a handful of uniform draws, the
/// crossover sits around `p_max ~ 0.1`; 0.05 keeps a safety margin so
/// Auto never picks the slower path.
pub const SKIP_MAX_P: f64 = 0.05;

/// How fault locations are sampled from the per-op rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSampling {
    /// Geometric skip-sampling below [`SKIP_MAX_P`], exact above it.
    #[default]
    Auto,
    /// One Bernoulli draw per op, unconditionally (the pre-skip-sampler
    /// engine behavior; retained for differential testing).
    Exact,
    /// Geometric skip-sampling regardless of rate (for testing the
    /// skip path in regimes Auto would not pick it).
    Skip,
}

/// Error probabilities per physical operation.
///
/// # Example
///
/// ```
/// use qods_phys::error_model::ErrorModel;
/// use qods_phys::ops::PhysOpKind;
///
/// let m = ErrorModel::paper();
/// assert_eq!(m.p_of(PhysOpKind::TwoQubitGate), 1e-4);
/// assert_eq!(m.p_of(PhysOpKind::StraightMove), 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability of a fault at any gate-type op (1q, 2q, measure, prep).
    pub p_gate: f64,
    /// Probability of a fault at any movement op (straight move, turn).
    pub p_move: f64,
    /// Fault-location sampling strategy (statistically equivalent
    /// choices; they differ in RNG stream and speed only).
    pub sampling: FaultSampling,
}

impl ErrorModel {
    /// The paper's values: gate 1e-4, movement 1e-6.
    pub fn paper() -> Self {
        ErrorModel {
            p_gate: 1e-4,
            p_move: 1e-6,
            sampling: FaultSampling::Auto,
        }
    }

    /// A noiseless model, for functional testing of circuits.
    pub fn noiseless() -> Self {
        ErrorModel {
            p_gate: 0.0,
            p_move: 0.0,
            sampling: FaultSampling::Auto,
        }
    }

    /// A uniformly scaled copy (for threshold-style sweeps).
    pub fn scaled(&self, factor: f64) -> Self {
        ErrorModel {
            p_gate: self.p_gate * factor,
            p_move: self.p_move * factor,
            sampling: self.sampling,
        }
    }

    /// A copy with the given fault-location sampling strategy.
    pub fn with_sampling(&self, sampling: FaultSampling) -> Self {
        ErrorModel { sampling, ..*self }
    }

    /// Fault probability for an op kind.
    pub fn p_of(&self, kind: PhysOpKind) -> f64 {
        match kind {
            PhysOpKind::OneQubitGate
            | PhysOpKind::TwoQubitGate
            | PhysOpKind::Measurement
            | PhysOpKind::ZeroPrepare => self.p_gate,
            PhysOpKind::StraightMove | PhysOpKind::Turn => self.p_move,
        }
    }

    /// The dominating per-op rate (the geometric gap is drawn at this
    /// rate; slower op kinds are thinned down from it).
    pub fn p_max(&self) -> f64 {
        self.p_gate.max(self.p_move)
    }
}

impl Default for ErrorModel {
    /// Defaults to the paper's error rates.
    fn default() -> Self {
        ErrorModel::paper()
    }
}

/// Sentinel for "no gap drawn yet"; lazily replaced by a real draw at
/// the first op so that resetting the sampler costs no RNG call. A
/// legitimate draw this large would require `p_max < ~1e-17`, far below
/// anything the study sweeps, and colliding with it merely costs one
/// redraw.
const GAP_UNDRAWN: u64 = u64::MAX;

/// Resolved sampling mode (Auto collapsed against the actual rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All rates zero: never fault, never draw.
    Noiseless,
    /// Bernoulli draw per op.
    Exact,
    /// Geometric gap at `p_max`, thinned per op kind.
    Skip,
}

/// Stateful fault-location sampler for one [`ErrorModel`].
///
/// Statistically equivalent to an independent Bernoulli draw per op
/// under every [`FaultSampling`] choice; the skip mode merely
/// run-length-encodes the fault stream. The RNG streams of the modes
/// differ by design.
///
/// # Example
///
/// ```
/// use qods_phys::error_model::{ErrorModel, FaultSampler};
/// use qods_phys::ops::PhysOpKind;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut s = FaultSampler::new(ErrorModel::paper());
/// let faults = (0..10_000)
///     .filter(|_| s.fault_at(PhysOpKind::TwoQubitGate, &mut rng))
///     .count();
/// assert!(faults < 20); // ~1 expected at p = 1e-4
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    model: ErrorModel,
    mode: Mode,
    /// Dominating rate the gap is drawn at (skip mode).
    p_max: f64,
    /// Precomputed `ln(1 - p_max)` (skip mode; strictly negative).
    ln_1m_p: f64,
    /// Fault-free ops remaining before the next candidate (skip mode).
    gap: u64,
}

impl FaultSampler {
    /// A sampler for `model`, resolving [`FaultSampling::Auto`] against
    /// the model's rates.
    pub fn new(model: ErrorModel) -> Self {
        let p_max = model.p_max();
        let mode = if p_max <= 0.0 {
            Mode::Noiseless
        } else {
            match model.sampling {
                FaultSampling::Exact => Mode::Exact,
                FaultSampling::Skip => Mode::Skip,
                FaultSampling::Auto => {
                    if p_max <= SKIP_MAX_P {
                        Mode::Skip
                    } else {
                        Mode::Exact
                    }
                }
            }
        };
        FaultSampler {
            model,
            mode,
            p_max,
            ln_1m_p: if mode == Mode::Skip {
                (1.0 - p_max).ln()
            } else {
                0.0
            },
            gap: GAP_UNDRAWN,
        }
    }

    /// The model this sampler draws from.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Forgets any in-flight gap so the next decision starts a fresh
    /// geometric draw. Called at trial boundaries to make each trial a
    /// pure function of its RNG state (the geometric distribution is
    /// memoryless, so this does not change the fault statistics).
    pub fn reset(&mut self) {
        self.gap = GAP_UNDRAWN;
    }

    /// Fast path: consumes `count` consecutive ops as fault-free with
    /// zero RNG draws when that is already decided — the model is
    /// noiseless, or the in-flight geometric gap covers the whole run.
    /// Returns false when a real scan is needed.
    #[inline(always)]
    pub(crate) fn covers(&mut self, count: u64) -> bool {
        match self.mode {
            Mode::Noiseless => true,
            Mode::Skip => {
                if self.gap != GAP_UNDRAWN && self.gap >= count {
                    self.gap -= count;
                    true
                } else {
                    false
                }
            }
            Mode::Exact => false,
        }
    }

    /// Decides whether the op of kind `kind` that is being executed
    /// right now suffers a fault.
    #[inline]
    pub fn fault_at<R: Rng + ?Sized>(&mut self, kind: PhysOpKind, rng: &mut R) -> bool {
        if self.covers(1) {
            return false;
        }
        self.next_fault_within_slow(kind, 1, rng).is_some()
    }

    /// Advances the sampler across `count` consecutive ops of one kind
    /// and returns the offset (in `0..count`) of the first op that
    /// faults, or `None` when the whole run is fault-free. After
    /// `Some(off)` the sampler stands just past op `off`; scan the rest
    /// of the run by calling again with `count - off - 1`.
    ///
    /// The RNG stream is *identical* to calling [`FaultSampler::fault_at`]
    /// once per op, in every mode — batching is purely a speed choice.
    /// In skip mode a fault-free run costs one countdown subtraction
    /// and zero RNG draws.
    #[inline]
    pub fn next_fault_within<R: Rng + ?Sized>(
        &mut self,
        kind: PhysOpKind,
        count: u64,
        rng: &mut R,
    ) -> Option<u64> {
        if self.covers(count) {
            return None;
        }
        self.next_fault_within_slow(kind, count, rng)
    }

    fn next_fault_within_slow<R: Rng + ?Sized>(
        &mut self,
        kind: PhysOpKind,
        count: u64,
        rng: &mut R,
    ) -> Option<u64> {
        if count == 0 {
            // A zero-op run consumes nothing (and must not force a gap
            // draw, or empty batches would perturb the stream).
            return None;
        }
        match self.mode {
            Mode::Noiseless => None,
            Mode::Exact => {
                let p = self.model.p_of(kind);
                if p <= 0.0 {
                    return None;
                }
                (0..count).find(|_| rng.gen_bool(p))
            }
            Mode::Skip => {
                let mut consumed = 0u64;
                loop {
                    if self.gap == GAP_UNDRAWN {
                        self.gap = self.draw_gap(rng);
                    }
                    let remaining = count - consumed;
                    if self.gap >= remaining {
                        self.gap -= remaining;
                        return None;
                    }
                    let off = consumed + self.gap;
                    self.gap = self.draw_gap(rng);
                    let p = self.model.p_of(kind);
                    // Thinning: the candidate was drawn at rate p_max;
                    // an op kind with rate p keeps it with probability
                    // p / p_max.
                    if p >= self.p_max || (p > 0.0 && rng.gen_bool(p / self.p_max)) {
                        return Some(off);
                    }
                    consumed = off + 1;
                }
            }
        }
    }

    /// Number of fault-free ops before the next candidate:
    /// `K ~ Geometric(p_max)`, `P(K = k) = (1 - p_max)^k p_max`, via
    /// inversion `K = floor(ln(U) / ln(1 - p_max))` with `U` uniform in
    /// `(0, 1]`.
    fn draw_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = 1.0 - rng.gen_range(0.0..1.0f64); // (0, 1]
        let k = u.ln() / self.ln_1m_p;
        if k >= GAP_UNDRAWN as f64 {
            // Saturate; the sentinel collision just forces a redraw.
            GAP_UNDRAWN - 1
        } else {
            k as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_rates() {
        let m = ErrorModel::paper();
        assert_eq!(m.p_of(PhysOpKind::OneQubitGate), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::Measurement), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::ZeroPrepare), 1e-4);
        assert_eq!(m.p_of(PhysOpKind::Turn), 1e-6);
        assert_eq!(m.p_max(), 1e-4);
    }

    #[test]
    fn scaling() {
        let m = ErrorModel::paper().scaled(10.0);
        assert!((m.p_gate - 1e-3).abs() < 1e-15);
        assert!((m.p_move - 1e-5).abs() < 1e-15);
        assert_eq!(m.sampling, FaultSampling::Auto);
    }

    #[test]
    fn auto_resolves_by_rate() {
        let low = FaultSampler::new(ErrorModel::paper());
        assert_eq!(low.mode, Mode::Skip);
        let high = FaultSampler::new(ErrorModel::paper().scaled(3000.0));
        assert_eq!(high.mode, Mode::Exact);
        let off = FaultSampler::new(ErrorModel::noiseless());
        assert_eq!(off.mode, Mode::Noiseless);
    }

    #[test]
    fn forced_modes_override_auto() {
        let m = ErrorModel::paper();
        assert_eq!(
            FaultSampler::new(m.with_sampling(FaultSampling::Exact)).mode,
            Mode::Exact
        );
        assert_eq!(
            FaultSampler::new(m.scaled(3000.0).with_sampling(FaultSampling::Skip)).mode,
            Mode::Skip
        );
    }

    #[test]
    fn noiseless_never_draws() {
        struct Panic;
        impl Rng for Panic {
            fn next_u64(&mut self) -> u64 {
                panic!("noiseless sampler must not touch the RNG")
            }
        }
        let mut s = FaultSampler::new(ErrorModel::noiseless());
        let mut rng = Panic;
        for _ in 0..1000 {
            assert!(!s.fault_at(PhysOpKind::TwoQubitGate, &mut rng));
        }
    }

    /// Skip-sampled fault rates match the exact rates per op kind.
    #[test]
    fn skip_matches_exact_rates() {
        let model = ErrorModel {
            p_gate: 0.01,
            p_move: 0.002,
            sampling: FaultSampling::Auto,
        };
        for sampling in [FaultSampling::Exact, FaultSampling::Skip] {
            let mut s = FaultSampler::new(model.with_sampling(sampling));
            let mut rng = StdRng::seed_from_u64(99);
            let n = 400_000;
            let mut gate_faults = 0u64;
            let mut move_faults = 0u64;
            for i in 0..n {
                // Interleave kinds so thinning is exercised.
                if i % 2 == 0 {
                    if s.fault_at(PhysOpKind::TwoQubitGate, &mut rng) {
                        gate_faults += 1;
                    }
                } else if s.fault_at(PhysOpKind::StraightMove, &mut rng) {
                    move_faults += 1;
                }
            }
            let gate_rate = gate_faults as f64 / (n / 2) as f64;
            let move_rate = move_faults as f64 / (n / 2) as f64;
            assert!(
                (gate_rate - 0.01).abs() < 0.0015,
                "{sampling:?}: gate rate {gate_rate}"
            );
            assert!(
                (move_rate - 0.002).abs() < 0.0007,
                "{sampling:?}: move rate {move_rate}"
            );
        }
    }

    /// In skip mode, fault-free stretches cost zero RNG draws.
    #[test]
    fn skip_draws_are_rare() {
        struct Counting {
            inner: StdRng,
            draws: u64,
        }
        impl Rng for Counting {
            fn next_u64(&mut self) -> u64 {
                self.draws += 1;
                self.inner.next_u64()
            }
        }
        let mut rng = Counting {
            inner: StdRng::seed_from_u64(5),
            draws: 0,
        };
        let mut s = FaultSampler::new(ErrorModel::paper());
        let n = 100_000u64;
        for _ in 0..n {
            s.fault_at(PhysOpKind::TwoQubitGate, &mut rng);
        }
        // ~p_max * n candidates, each costing a gap redraw + thinning
        // draw (plus the initial lazy draw): tens, not 100k.
        assert!(rng.draws < 200, "skip mode made {} draws", rng.draws);
    }

    /// Scanning in batches consumes the exact same RNG stream and
    /// reports the exact same fault locations as one call per op.
    #[test]
    fn batch_scan_matches_per_op_stream() {
        for sampling in [FaultSampling::Exact, FaultSampling::Skip] {
            let model = ErrorModel {
                p_gate: 0.02,
                p_move: 0.0,
                sampling,
            };
            let n = 10_000u64;
            let mut s1 = FaultSampler::new(model);
            let mut r1 = StdRng::seed_from_u64(3);
            let per_op: Vec<u64> = (0..n)
                .filter(|_| s1.fault_at(PhysOpKind::TwoQubitGate, &mut r1))
                .collect();
            let mut s2 = FaultSampler::new(model);
            let mut r2 = StdRng::seed_from_u64(3);
            let mut batched = Vec::new();
            let mut base = 0u64;
            let mut sizes = [1u64, 3, 7, 64].iter().cycle();
            while base < n {
                let size = (*sizes.next().unwrap()).min(n - base);
                let mut local = 0u64;
                while let Some(off) =
                    s2.next_fault_within(PhysOpKind::TwoQubitGate, size - local, &mut r2)
                {
                    batched.push(base + local + off);
                    local += off + 1;
                }
                base += size;
            }
            assert!(!per_op.is_empty(), "{sampling:?}: test needs some faults");
            assert_eq!(per_op, batched, "{sampling:?}: fault positions differ");
            assert_eq!(
                r1.next_u64(),
                r2.next_u64(),
                "{sampling:?}: RNG streams diverged"
            );
        }
    }

    #[test]
    fn reset_redraws_lazily() {
        let mut s = FaultSampler::new(ErrorModel::paper());
        let mut rng = StdRng::seed_from_u64(7);
        let _ = s.fault_at(PhysOpKind::OneQubitGate, &mut rng);
        assert_ne!(s.gap, GAP_UNDRAWN);
        s.reset();
        assert_eq!(s.gap, GAP_UNDRAWN);
    }
}
