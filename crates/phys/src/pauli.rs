//! Pauli operators and Pauli strings over many qubits.
//!
//! Error tracking in the speed-of-data study is entirely Pauli-based:
//! every fault is a Pauli operator, and Clifford circuits map Pauli
//! errors to Pauli errors. We therefore only ever need the symplectic
//! (X-bit, Z-bit) representation; global phases are irrelevant for
//! error-rate accounting and are not tracked.

use std::fmt;

/// A single-qubit Pauli operator (phase-free).
///
/// `Y` is represented as "both an X and a Z component", consistent with
/// the symplectic representation used by [`PauliString`].
///
/// # Example
///
/// ```
/// use qods_phys::pauli::Pauli;
///
/// assert_eq!(Pauli::X * Pauli::Z, Pauli::Y);
/// assert!(Pauli::X.anticommutes_with(Pauli::Z));
/// assert!(!Pauli::X.anticommutes_with(Pauli::X));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip (product of X and Z, phase ignored).
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All non-identity Paulis, used for uniform error sampling.
    pub const NON_IDENTITY: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the (x, z) symplectic component bits.
    #[inline]
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its (x, z) symplectic component bits.
    #[inline]
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// True when `self` and `other` anticommute.
    #[inline]
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.bits();
        let (x2, z2) = other.bits();
        (x1 & z2) ^ (z1 & x2)
    }

    /// True for any operator with an X component (flips measured bits).
    #[inline]
    pub fn has_x(self) -> bool {
        self.bits().0
    }

    /// True for any operator with a Z component (flips phases).
    #[inline]
    pub fn has_z(self) -> bool {
        self.bits().1
    }
}

impl std::ops::Mul for Pauli {
    type Output = Pauli;

    /// Phase-free Pauli product: `X * Z = Y`, `X * X = I`, etc.
    fn mul(self, rhs: Pauli) -> Pauli {
        let (x1, z1) = self.bits();
        let (x2, z2) = rhs.bits();
        Pauli::from_bits(x1 ^ x2, z1 ^ z2)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A multi-qubit Pauli operator in symplectic (bit-mask) form.
///
/// Supports up to 64 qubits, which is ample: the largest block the study
/// tracks at the physical level is a Steane-encoded qubit plus cat-state
/// and correction ancillae (a few tens of physical qubits).
///
/// # Example
///
/// ```
/// use qods_phys::pauli::{Pauli, PauliString};
///
/// let mut e = PauliString::identity(7);
/// e.mul_assign_at(0, Pauli::X);
/// e.mul_assign_at(3, Pauli::Y);
/// assert_eq!(e.weight(), 2);
/// assert_eq!(e.at(3), Pauli::Y);
/// assert_eq!(e.to_string(), "XIIYIII");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PauliString {
    n: u32,
    /// Bit i set = X component on qubit i.
    pub x: u64,
    /// Bit i set = Z component on qubit i.
    pub z: u64,
}

impl PauliString {
    /// The identity on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn identity(n: usize) -> Self {
        assert!(n <= 64, "PauliString supports at most 64 qubits, got {n}");
        PauliString {
            n: n as u32,
            x: 0,
            z: 0,
        }
    }

    /// Builds a string from raw X/Z masks.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or if a mask has bits at or above `n`.
    pub fn from_masks(n: usize, x: u64, z: u64) -> Self {
        assert!(n <= 64, "PauliString supports at most 64 qubits, got {n}");
        let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert_eq!(x & !valid, 0, "x mask has bits beyond qubit count");
        assert_eq!(z & !valid, 0, "z mask has bits beyond qubit count");
        PauliString { n: n as u32, x, z }
    }

    /// Number of qubits this string is defined over.
    #[inline]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when defined over zero qubits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The Pauli acting on qubit `q`.
    #[inline]
    pub fn at(&self, q: usize) -> Pauli {
        debug_assert!(q < self.len());
        Pauli::from_bits((self.x >> q) & 1 == 1, (self.z >> q) & 1 == 1)
    }

    /// Multiplies (XORs) `p` into position `q`.
    #[inline]
    pub fn mul_assign_at(&mut self, q: usize, p: Pauli) {
        debug_assert!(q < self.len());
        let (px, pz) = p.bits();
        self.x ^= (px as u64) << q;
        self.z ^= (pz as u64) << q;
    }

    /// Number of qubits acted on non-trivially.
    #[inline]
    pub fn weight(&self) -> u32 {
        (self.x | self.z).count_ones()
    }

    /// Weight of the X component alone (counts X and Y positions).
    #[inline]
    pub fn x_weight(&self) -> u32 {
        self.x.count_ones()
    }

    /// Weight of the Z component alone (counts Z and Y positions).
    #[inline]
    pub fn z_weight(&self) -> u32 {
        self.z.count_ones()
    }

    /// True when the string is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// Phase-free product of two strings over the same qubit count.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn product(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.n, other.n, "length mismatch in Pauli product");
        PauliString {
            n: self.n,
            x: self.x ^ other.x,
            z: self.z ^ other.z,
        }
    }

    /// True when `self` and `other` commute as operators.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let cross = (self.x & other.z).count_ones() + (self.z & other.x).count_ones();
        cross.is_multiple_of(2)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.len() {
            write!(f, "{}", self.at(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_products_form_klein_group() {
        for &a in &[Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            assert_eq!(a * a, Pauli::I);
            assert_eq!(a * Pauli::I, a);
        }
        assert_eq!(Pauli::X * Pauli::Y, Pauli::Z);
        assert_eq!(Pauli::Y * Pauli::Z, Pauli::X);
    }

    #[test]
    fn anticommutation_table() {
        assert!(Pauli::X.anticommutes_with(Pauli::Y));
        assert!(Pauli::Y.anticommutes_with(Pauli::Z));
        assert!(!Pauli::I.anticommutes_with(Pauli::X));
        assert!(!Pauli::Z.anticommutes_with(Pauli::Z));
    }

    #[test]
    fn string_weight_and_display() {
        let mut s = PauliString::identity(4);
        assert!(s.is_identity());
        s.mul_assign_at(1, Pauli::Z);
        s.mul_assign_at(2, Pauli::X);
        s.mul_assign_at(2, Pauli::Z); // X * Z = Y
        assert_eq!(s.to_string(), "IZYI");
        assert_eq!(s.weight(), 2);
        assert_eq!(s.x_weight(), 1);
        assert_eq!(s.z_weight(), 2);
    }

    #[test]
    fn string_commutation_matches_crossing_parity() {
        let xx = PauliString::from_masks(2, 0b11, 0b00);
        let zz = PauliString::from_masks(2, 0b00, 0b11);
        let zi = PauliString::from_masks(2, 0b00, 0b01);
        assert!(xx.commutes_with(&zz)); // two crossings -> commute
        assert!(!xx.commutes_with(&zi)); // one crossing -> anticommute
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_qubits_panics() {
        let _ = PauliString::identity(65);
    }

    #[test]
    fn product_is_componentwise_xor() {
        let a = PauliString::from_masks(3, 0b101, 0b001);
        let b = PauliString::from_masks(3, 0b100, 0b011);
        let p = a.product(&b);
        assert_eq!(p.x, 0b001);
        assert_eq!(p.z, 0b010);
    }
}
