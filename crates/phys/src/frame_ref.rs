//! Boolean reference implementation of the Pauli frame.
//!
//! This is the executable specification the word-packed
//! [`crate::frame::PauliFrame`] is tested against: one `bool` per X/Z
//! component, straight-line conjugation rules transcribed from §2.2,
//! no limb packing, no clean-frame short-circuit. It consumes the RNG
//! in exactly the same order as the packed frame (conjugation twirl
//! draws, then the fault-location decision, then the fault Pauli
//! choice), so for a fixed seed the two implementations must produce
//! bit-identical error states, measurement flips, and fault counts —
//! the property suite in `crates/phys/tests/frame_equivalence.rs`
//! asserts exactly that under random op sequences and directed
//! injections.
//!
//! It is deliberately kept simple rather than fast; production code
//! should always use [`crate::frame::PauliFrame`].

use crate::error_model::{ErrorModel, FaultSampler};
use crate::ops::{Basis, Gate1, Gate2, PhysOp, PhysOpKind};
use crate::pauli::{Pauli, PauliString};
use rand::Rng;

/// Reference (one-`bool`-per-component) Pauli frame.
#[derive(Debug, Clone)]
pub struct RefPauliFrame {
    x: Vec<bool>,
    z: Vec<bool>,
    sampler: FaultSampler,
    faults_injected: u64,
}

impl RefPauliFrame {
    /// A clean frame over `n` qubits with the given error model.
    pub fn new(n: usize, model: ErrorModel) -> Self {
        RefPauliFrame {
            x: vec![false; n],
            z: vec![false; n],
            sampler: FaultSampler::new(model),
            faults_injected: 0,
        }
    }

    /// Number of qubits tracked.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when tracking zero qubits.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of stochastic faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The current error on qubit `q`.
    pub fn error_at(&self, q: usize) -> Pauli {
        Pauli::from_bits(self.x[q], self.z[q])
    }

    /// Deterministically multiplies an error into qubit `q`.
    pub fn inject(&mut self, q: usize, p: Pauli) {
        let (px, pz) = p.bits();
        self.x[q] ^= px;
        self.z[q] ^= pz;
    }

    /// Extracts the error pattern restricted to `qubits`.
    pub fn extract(&self, qubits: &[usize]) -> PauliString {
        let mut s = PauliString::identity(qubits.len());
        for (i, &q) in qubits.iter().enumerate() {
            s.mul_assign_at(i, self.error_at(q));
        }
        s
    }

    /// Applies one physical operation (see
    /// [`crate::frame::PauliFrame::apply`] for the contract).
    pub fn apply<R: Rng + ?Sized>(&mut self, op: &PhysOp, rng: &mut R) -> Option<bool> {
        match *op {
            PhysOp::Gate1(g, q) => self.conjugate_gate1(g, q, rng),
            PhysOp::Gate2(g, a, b) => self.conjugate_gate2(g, a, b, rng),
            PhysOp::CondPauli(p, q) => self.inject(q, p),
            PhysOp::Prep(q) => {
                self.x[q] = false;
                self.z[q] = false;
            }
            PhysOp::Measure(..) | PhysOp::Move(_) | PhysOp::TurnOp(_) => {}
        }

        match *op {
            PhysOp::Measure(basis, q) => {
                let mut flip = match basis {
                    Basis::Z => self.x[q],
                    Basis::X => self.z[q],
                };
                if self.sampler.fault_at(PhysOpKind::Measurement, rng) {
                    flip = !flip;
                    self.faults_injected += 1;
                }
                self.x[q] = false;
                self.z[q] = false;
                Some(flip)
            }
            PhysOp::Prep(q) => {
                if self.sampler.fault_at(PhysOpKind::ZeroPrepare, rng) {
                    self.x[q] = true;
                    self.faults_injected += 1;
                }
                None
            }
            PhysOp::Gate1(_, q) | PhysOp::CondPauli(_, q) => {
                if self.sampler.fault_at(PhysOpKind::OneQubitGate, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::Gate2(_, a, b) => {
                if self.sampler.fault_at(PhysOpKind::TwoQubitGate, rng) {
                    self.inject_random_2q(a, b, rng);
                }
                None
            }
            PhysOp::Move(q) => {
                if self.sampler.fault_at(PhysOpKind::StraightMove, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::TurnOp(q) => {
                if self.sampler.fault_at(PhysOpKind::Turn, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
        }
    }

    /// Runs a straight-line circuit, writing measurement flips into
    /// `flips` (cleared first).
    pub fn run<R: Rng + ?Sized>(&mut self, ops: &[PhysOp], rng: &mut R, flips: &mut Vec<bool>) {
        flips.clear();
        for op in ops {
            if let Some(f) = self.apply(op, rng) {
                flips.push(f);
            }
        }
    }

    fn conjugate_gate1<R: Rng + ?Sized>(&mut self, g: Gate1, q: usize, rng: &mut R) {
        match g {
            Gate1::I | Gate1::X | Gate1::Y | Gate1::Z => {}
            Gate1::H => std::mem::swap(&mut self.x[q], &mut self.z[q]),
            Gate1::S | Gate1::Sdg => self.z[q] ^= self.x[q],
            Gate1::T | Gate1::Tdg => {
                if self.x[q] && rng.gen_bool(0.5) {
                    self.z[q] = !self.z[q];
                }
            }
        }
    }

    fn conjugate_gate2<R: Rng + ?Sized>(&mut self, g: Gate2, a: usize, b: usize, rng: &mut R) {
        match g {
            Gate2::Cx => {
                self.x[b] ^= self.x[a];
                self.z[a] ^= self.z[b];
            }
            Gate2::Cz => {
                self.z[b] ^= self.x[a];
                self.z[a] ^= self.x[b];
            }
            Gate2::Cs => {
                self.z[b] ^= self.x[a];
                self.z[a] ^= self.x[b];
                if self.x[a] && rng.gen_bool(0.5) {
                    self.z[a] = !self.z[a];
                }
                if self.x[b] && rng.gen_bool(0.5) {
                    self.z[b] = !self.z[b];
                }
            }
        }
    }

    fn inject_random_1q<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        let p = Pauli::NON_IDENTITY[rng.gen_range(0..3)];
        self.inject(q, p);
        self.faults_injected += 1;
    }

    fn inject_random_2q<R: Rng + ?Sized>(&mut self, a: usize, b: usize, rng: &mut R) {
        let k = rng.gen_range(1..16u8);
        let pa = match k / 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let pb = match k % 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        self.inject(a, pa);
        self.inject(b, pb);
        self.faults_injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_frame_propagates_like_the_spec() {
        let mut r = StdRng::seed_from_u64(1);
        let mut f = RefPauliFrame::new(2, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.inject(1, Pauli::Z);
        f.apply(&PhysOp::cx(0, 1), &mut r);
        assert_eq!(f.error_at(0), Pauli::Y);
        assert_eq!(f.error_at(1), Pauli::Y);
        let flip = f.apply(&PhysOp::measure_z(1), &mut r).unwrap();
        assert!(flip);
        assert_eq!(f.error_at(1), Pauli::I);
    }
}
