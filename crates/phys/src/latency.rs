//! The ion-trap latency model (Tables 1 and 4 of the paper) and a
//! symbolic-latency vector used to reproduce the symbolic columns of
//! Tables 5 and 7.
//!
//! All latencies are in microseconds, matching the paper.

use crate::ops::{PhysOp, PhysOpKind};
use std::fmt;

/// Latencies for each physical operation kind, in microseconds.
///
/// [`LatencyTable::ion_trap`] returns the paper's values:
///
/// | op | symbol | us |
/// |----|--------|----|
/// | one-qubit gate | `t_1q` | 1 |
/// | two-qubit gate | `t_2q` | 10 |
/// | measurement | `t_meas` | 50 |
/// | zero prepare | `t_prep` | 51 |
/// | straight move | `t_move` | 1 |
/// | turn | `t_turn` | 10 |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTable {
    /// One-qubit gate latency (`t_1q`).
    pub t_1q: f64,
    /// Two-qubit gate latency (`t_2q`).
    pub t_2q: f64,
    /// Measurement latency (`t_meas`).
    pub t_meas: f64,
    /// Physical zero-preparation latency (`t_prep`).
    pub t_prep: f64,
    /// Straight move across one macroblock (`t_move`).
    pub t_move: f64,
    /// Turn latency (`t_turn`).
    pub t_turn: f64,
}

impl LatencyTable {
    /// The paper's ion-trap latency values (Tables 1 and 4).
    pub fn ion_trap() -> Self {
        LatencyTable {
            t_1q: 1.0,
            t_2q: 10.0,
            t_meas: 50.0,
            t_prep: 51.0,
            t_move: 1.0,
            t_turn: 10.0,
        }
    }

    /// Latency of a given op kind.
    pub fn of_kind(&self, kind: PhysOpKind) -> f64 {
        match kind {
            PhysOpKind::OneQubitGate => self.t_1q,
            PhysOpKind::TwoQubitGate => self.t_2q,
            PhysOpKind::Measurement => self.t_meas,
            PhysOpKind::ZeroPrepare => self.t_prep,
            PhysOpKind::StraightMove => self.t_move,
            PhysOpKind::Turn => self.t_turn,
        }
    }

    /// Latency of a concrete physical op.
    pub fn of(&self, op: &PhysOp) -> f64 {
        self.of_kind(op.kind())
    }
}

impl Default for LatencyTable {
    /// Defaults to the paper's ion-trap values.
    fn default() -> Self {
        LatencyTable::ion_trap()
    }
}

/// A latency expressed symbolically as integer multiples of the six
/// physical-op latencies, e.g. `t_prep + t_1q + 2 t_turn + t_move`.
///
/// The paper reports functional-unit latencies in this form (Tables 5
/// and 7) before substituting ion-trap values; we do the same so the
/// reproduction can print both columns.
///
/// # Example
///
/// ```
/// use qods_phys::latency::{LatencyTable, SymbolicLatency};
///
/// // Zero Prep functional unit (Table 5): t_prep + t_1q + 2 t_turn + t_move.
/// let lat = SymbolicLatency::new().prep(1).one_q(1).turn(2).mov(1);
/// assert_eq!(lat.eval(&LatencyTable::ion_trap()), 73.0);
/// assert_eq!(lat.to_string(), "t_prep + t_1q + 2 t_turn + t_move");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymbolicLatency {
    /// Coefficient of `t_1q`.
    pub n_1q: u32,
    /// Coefficient of `t_2q`.
    pub n_2q: u32,
    /// Coefficient of `t_meas`.
    pub n_meas: u32,
    /// Coefficient of `t_prep`.
    pub n_prep: u32,
    /// Coefficient of `t_move`.
    pub n_move: u32,
    /// Coefficient of `t_turn`.
    pub n_turn: u32,
}

impl SymbolicLatency {
    /// The zero latency.
    pub fn new() -> Self {
        SymbolicLatency::default()
    }

    /// Adds `n` one-qubit gates.
    pub fn one_q(mut self, n: u32) -> Self {
        self.n_1q += n;
        self
    }

    /// Adds `n` two-qubit gates.
    pub fn two_q(mut self, n: u32) -> Self {
        self.n_2q += n;
        self
    }

    /// Adds `n` measurements.
    pub fn meas(mut self, n: u32) -> Self {
        self.n_meas += n;
        self
    }

    /// Adds `n` zero preparations.
    pub fn prep(mut self, n: u32) -> Self {
        self.n_prep += n;
        self
    }

    /// Adds `n` straight moves.
    pub fn mov(mut self, n: u32) -> Self {
        self.n_move += n;
        self
    }

    /// Adds `n` turns.
    pub fn turn(mut self, n: u32) -> Self {
        self.n_turn += n;
        self
    }

    /// Sums two symbolic latencies (sequential composition).
    pub fn plus(self, other: SymbolicLatency) -> Self {
        SymbolicLatency {
            n_1q: self.n_1q + other.n_1q,
            n_2q: self.n_2q + other.n_2q,
            n_meas: self.n_meas + other.n_meas,
            n_prep: self.n_prep + other.n_prep,
            n_move: self.n_move + other.n_move,
            n_turn: self.n_turn + other.n_turn,
        }
    }

    /// Evaluates against a latency table, in microseconds.
    pub fn eval(&self, t: &LatencyTable) -> f64 {
        f64::from(self.n_1q) * t.t_1q
            + f64::from(self.n_2q) * t.t_2q
            + f64::from(self.n_meas) * t.t_meas
            + f64::from(self.n_prep) * t.t_prep
            + f64::from(self.n_move) * t.t_move
            + f64::from(self.n_turn) * t.t_turn
    }
}

impl fmt::Display for SymbolicLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: [(u32, &str); 6] = [
            (self.n_prep, "t_prep"),
            (self.n_meas, "t_meas"),
            (self.n_2q, "t_2q"),
            (self.n_1q, "t_1q"),
            (self.n_turn, "t_turn"),
            (self.n_move, "t_move"),
        ];
        let mut first = true;
        for (n, name) in terms {
            if n == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            if n == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{n} {name}")?;
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ion_trap_values_match_tables_1_and_4() {
        let t = LatencyTable::ion_trap();
        assert_eq!(t.t_1q, 1.0);
        assert_eq!(t.t_2q, 10.0);
        assert_eq!(t.t_meas, 50.0);
        assert_eq!(t.t_prep, 51.0);
        assert_eq!(t.t_move, 1.0);
        assert_eq!(t.t_turn, 10.0);
    }

    #[test]
    fn simple_factory_latency_formula() {
        // §4.3: t_prep + 2 t_meas + 6 t_2q + 2 t_1q + 8 t_turn + 30 t_move = 323 us.
        let lat = SymbolicLatency::new()
            .prep(1)
            .meas(2)
            .two_q(6)
            .one_q(2)
            .turn(8)
            .mov(30);
        assert_eq!(lat.eval(&LatencyTable::ion_trap()), 323.0);
    }

    #[test]
    fn table5_unit_latencies() {
        let t = LatencyTable::ion_trap();
        // CX Stage: 3 t_2q + 6 t_turn + 5 t_move = 95.
        assert_eq!(
            SymbolicLatency::new().two_q(3).turn(6).mov(5).eval(&t),
            95.0
        );
        // Cat State Prep: 2 t_2q + 4 t_turn + 2 t_move = 62.
        assert_eq!(
            SymbolicLatency::new().two_q(2).turn(4).mov(2).eval(&t),
            62.0
        );
        // Verification: t_meas + t_2q + 2 t_turn + 2 t_move = 82.
        assert_eq!(
            SymbolicLatency::new()
                .meas(1)
                .two_q(1)
                .turn(2)
                .mov(2)
                .eval(&t),
            82.0
        );
        // B/P Correction: t_meas + 2 t_2q + 6 t_turn + 8 t_move = 138.
        assert_eq!(
            SymbolicLatency::new()
                .meas(1)
                .two_q(2)
                .turn(6)
                .mov(8)
                .eval(&t),
            138.0
        );
    }

    #[test]
    fn display_formats_terms_in_paper_order() {
        let lat = SymbolicLatency::new().meas(1).two_q(2).turn(6).mov(8);
        assert_eq!(lat.to_string(), "t_meas + 2 t_2q + 6 t_turn + 8 t_move");
        assert_eq!(SymbolicLatency::new().to_string(), "0");
    }

    #[test]
    fn plus_composes() {
        let a = SymbolicLatency::new().two_q(1);
        let b = SymbolicLatency::new().two_q(2).meas(1);
        let c = a.plus(b);
        assert_eq!(c.n_2q, 3);
        assert_eq!(c.n_meas, 1);
    }
}
