//! Pauli-frame Monte-Carlo simulation of physical circuits.
//!
//! The simulator tracks, for every physical qubit, the X and Z
//! components of the accumulated Pauli *error* relative to the ideal
//! circuit execution. Faults are injected stochastically per operation
//! (§2.2 of the paper) and propagated through Clifford conjugation; in
//! particular two-qubit gates propagate bit and phase flips between
//! qubits, the effect the paper calls out explicitly.
//!
//! Measurements report whether the accumulated error *flips* the ideal
//! outcome. Callers (the Steane-code circuits in `qods-steane`) combine
//! these flips into syndromes; the ideal-state contribution of any
//! stabilizer measurement is zero by construction, so error bits are all
//! that is needed.
//!
//! ## Representation
//!
//! The X and Z components are stored as word-packed symplectic bitmasks
//! (`u64` limbs, bit `i` of limb `i / 64` = qubit `i`), matching the
//! encoding [`PauliString`] uses. Conjugation rules are single-bit
//! swap-and-xor operations on the limbs; block mask reads
//! ([`PauliFrame::x_mask7`]) and frame clears are whole-limb operations.
//! A `dirty` flag short-circuits conjugation entirely while the frame is
//! identically zero — at the paper's error rates most trials never leave
//! that state, so an op costs one countdown decrement and nothing else.
//! The boolean reference implementation this replaced is retained as
//! [`crate::frame_ref::RefPauliFrame`] and a property suite asserts
//! exact equivalence (same RNG stream, same states).
//!
//! ## Fault sampling
//!
//! Fault locations come from a [`FaultSampler`]: geometric skip-sampling
//! at the paper's rates (zero RNG draws on fault-free stretches), exact
//! per-op Bernoulli above the crossover — see
//! [`crate::error_model`] for the derivation.
//!
//! ## Non-Clifford gates
//!
//! `T` is not Clifford, so an X-component error does not map to a Pauli
//! under conjugation. We apply the standard stochastic twirl: an X or Y
//! error propagates through `T` unchanged or picks up an extra Z with
//! probability 1/2. This is exact for the twirled (Pauli) channel and
//! accurate to first order in the error rate for the untwirled one.
//! The same applies to controlled-S on its non-Clifford component.

use crate::error_model::{ErrorModel, FaultSampler};
use crate::ops::{Basis, Gate1, Gate2, PhysOp, PhysOpKind};
use crate::pauli::{Pauli, PauliString};
use rand::Rng;

#[inline(always)]
fn bit(v: &[u64], q: usize) -> bool {
    (v[q >> 6] >> (q & 63)) & 1 == 1
}

#[inline(always)]
fn xor_bit(v: &mut [u64], q: usize, b: bool) {
    v[q >> 6] ^= (b as u64) << (q & 63);
}

#[inline(always)]
fn set_bit(v: &mut [u64], q: usize) {
    v[q >> 6] |= 1 << (q & 63);
}

#[inline(always)]
fn clear_bit(v: &mut [u64], q: usize) {
    v[q >> 6] &= !(1 << (q & 63));
}

/// Pauli-frame state of a register of physical qubits.
///
/// # Example
///
/// ```
/// use qods_phys::frame::PauliFrame;
/// use qods_phys::error_model::ErrorModel;
/// use qods_phys::ops::PhysOp;
/// use qods_phys::pauli::Pauli;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut f = PauliFrame::new(2, ErrorModel::noiseless());
/// f.inject(0, Pauli::X);
/// f.apply(&PhysOp::cx(0, 1), &mut rng);
/// // CX propagates the bit flip from control to target.
/// assert_eq!(f.error_at(1), Pauli::X);
/// ```
#[derive(Debug, Clone)]
pub struct PauliFrame {
    n: usize,
    /// Bit `q & 63` of limb `q >> 6` set = X component on qubit `q`.
    x: Vec<u64>,
    /// Z components, same packing.
    z: Vec<u64>,
    sampler: FaultSampler,
    faults_injected: u64,
    /// False only when every limb is provably zero; conjugation of a
    /// clean frame is the identity and is skipped wholesale.
    dirty: bool,
}

impl PauliFrame {
    /// A clean frame over `n` qubits with the given error model.
    pub fn new(n: usize, model: ErrorModel) -> Self {
        let limbs = n.div_ceil(64);
        PauliFrame {
            n,
            x: vec![0; limbs],
            z: vec![0; limbs],
            sampler: FaultSampler::new(model),
            faults_injected: 0,
            dirty: false,
        }
    }

    /// Re-initializes the frame in place for a fresh trial: `n` qubits,
    /// all-zero error, fault counter cleared. Reuses the limb
    /// allocations (and the sampler itself when `model` is unchanged),
    /// so a reused frame allocates only on growth.
    ///
    /// The sampler's in-flight geometric gap deliberately *survives*
    /// the reset when the model is unchanged: the geometric
    /// distribution is memoryless, so continuing the countdown across
    /// trials is statistically exact and saves one logarithm per trial.
    /// Call [`PauliFrame::reset_sampling`] where stream isolation
    /// matters (the Monte-Carlo runners do, at chunk boundaries).
    pub fn reset(&mut self, n: usize, model: ErrorModel) {
        let limbs = n.div_ceil(64);
        if limbs == self.x.len() {
            if self.dirty {
                self.x.fill(0);
                self.z.fill(0);
            }
        } else {
            self.x.clear();
            self.x.resize(limbs, 0);
            self.z.clear();
            self.z.resize(limbs, 0);
        }
        self.n = n;
        self.faults_injected = 0;
        self.dirty = false;
        if self.sampler.model() != model {
            self.sampler = FaultSampler::new(model);
        }
    }

    /// Forgets the sampler's in-flight gap so the next fault decision
    /// starts a fresh geometric draw (see [`FaultSampler::reset`]).
    pub fn reset_sampling(&mut self) {
        self.sampler.reset();
    }

    /// Number of qubits tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when tracking zero qubits.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The error model faults are drawn from.
    pub fn model(&self) -> ErrorModel {
        self.sampler.model()
    }

    /// Number of stochastic faults injected so far (diagnostics).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// True when no qubit carries any error component.
    pub fn is_clean(&self) -> bool {
        !self.dirty
    }

    /// The current error on qubit `q`.
    #[inline]
    pub fn error_at(&self, q: usize) -> Pauli {
        debug_assert!(q < self.n);
        Pauli::from_bits(bit(&self.x, q), bit(&self.z, q))
    }

    /// Deterministically multiplies an error into qubit `q` (used by
    /// tests and by deliberate fault-injection experiments).
    #[inline]
    pub fn inject(&mut self, q: usize, p: Pauli) {
        debug_assert!(q < self.n);
        let (px, pz) = p.bits();
        xor_bit(&mut self.x, q, px);
        xor_bit(&mut self.z, q, pz);
        self.dirty |= px | pz;
    }

    /// Extracts the error pattern restricted to `qubits`, as a
    /// [`PauliString`] indexed in the order given.
    pub fn extract(&self, qubits: &[usize]) -> PauliString {
        let mut s = PauliString::identity(qubits.len());
        for (i, &q) in qubits.iter().enumerate() {
            s.mul_assign_at(i, self.error_at(q));
        }
        s
    }

    /// X-component mask over a 7-qubit block (bit `i` = `block[i]`
    /// carries an X or Y error). Contiguous single-limb blocks — the
    /// layout every Steane block in the study uses — read as one shift.
    #[inline]
    pub fn x_mask7(&self, block: &[usize; 7]) -> u8 {
        if !self.dirty {
            return 0;
        }
        Self::mask7_of(&self.x, block)
    }

    /// Z-component mask over a 7-qubit block (see [`PauliFrame::x_mask7`]).
    #[inline]
    pub fn z_mask7(&self, block: &[usize; 7]) -> u8 {
        if !self.dirty {
            return 0;
        }
        Self::mask7_of(&self.z, block)
    }

    fn mask7_of(bits: &[u64], block: &[usize; 7]) -> u8 {
        let q0 = block[0];
        let contiguous = block.iter().enumerate().all(|(i, &q)| q == q0 + i);
        if contiguous && (q0 >> 6) == ((q0 + 6) >> 6) {
            ((bits[q0 >> 6] >> (q0 & 63)) & 0x7f) as u8
        } else {
            let mut m = 0u8;
            for (i, &q) in block.iter().enumerate() {
                m |= (bit(bits, q) as u8) << i;
            }
            m
        }
    }

    /// Recomputes the dirty flag after bits were cleared.
    #[inline]
    fn refresh_dirty(&mut self) {
        self.dirty = self
            .x
            .iter()
            .chain(self.z.iter())
            .fold(0u64, |acc, &w| acc | w)
            != 0;
    }

    /// Applies one physical operation: ideal Clifford conjugation of the
    /// existing frame, then stochastic fault injection per the error
    /// model. Returns `Some(flip)` for measurements, where `flip` is
    /// true when the recorded outcome differs from the ideal one.
    #[inline]
    pub fn apply<R: Rng + ?Sized>(&mut self, op: &PhysOp, rng: &mut R) -> Option<bool> {
        match *op {
            PhysOp::Gate1(g, q) => {
                if self.dirty {
                    self.conjugate_gate1(g, q, rng);
                }
                if self.sampler.fault_at(PhysOpKind::OneQubitGate, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::Gate2(g, a, b) => {
                if self.dirty {
                    self.conjugate_gate2(g, a, b, rng);
                }
                if self.sampler.fault_at(PhysOpKind::TwoQubitGate, rng) {
                    self.inject_random_2q(a, b, rng);
                }
                None
            }
            PhysOp::CondPauli(p, q) => {
                // In the ideal (fault-free) execution every syndrome is
                // zero and no correction fires, so an applied correction
                // is a deliberate deviation from the ideal circuit: it
                // multiplies into the frame, cancelling tracked errors.
                self.inject(q, p);
                if self.sampler.fault_at(PhysOpKind::OneQubitGate, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::Prep(q) => {
                // Fresh |0>: prior errors are erased.
                if self.dirty {
                    clear_bit(&mut self.x, q);
                    clear_bit(&mut self.z, q);
                    self.refresh_dirty();
                }
                if self.sampler.fault_at(PhysOpKind::ZeroPrepare, rng) {
                    // A faulty |0> preparation yields the flipped state.
                    set_bit(&mut self.x, q);
                    self.dirty = true;
                    self.faults_injected += 1;
                }
                None
            }
            PhysOp::Measure(basis, q) => {
                let mut flip = self.dirty
                    && match basis {
                        Basis::Z => bit(&self.x, q),
                        Basis::X => bit(&self.z, q),
                    };
                if self.sampler.fault_at(PhysOpKind::Measurement, rng) {
                    // Faulty measurement misreports the outcome.
                    flip = !flip;
                    self.faults_injected += 1;
                }
                // The ion is consumed / re-prepared after measurement;
                // clear its frame so recycled qubits start clean.
                if self.dirty {
                    clear_bit(&mut self.x, q);
                    clear_bit(&mut self.z, q);
                    self.refresh_dirty();
                }
                Some(flip)
            }
            PhysOp::Move(q) => {
                if self.sampler.fault_at(PhysOpKind::StraightMove, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::TurnOp(q) => {
                if self.sampler.fault_at(PhysOpKind::Turn, rng) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
        }
    }

    /// Runs a straight-line circuit, writing measurement flips in
    /// program order into `flips` (which is cleared first and reused —
    /// no allocation once its capacity covers the circuit). Only valid
    /// for circuits without classical feedback; feedback circuits drive
    /// [`PauliFrame::apply`] manually.
    pub fn run<R: Rng + ?Sized>(&mut self, ops: &[PhysOp], rng: &mut R, flips: &mut Vec<bool>) {
        flips.clear();
        for op in ops {
            if let Some(f) = self.apply(op, rng) {
                flips.push(f);
            }
        }
    }

    /// Prepares every qubit in `qubits` (distinct indices), identical
    /// in semantics and RNG stream to applying [`PhysOp::Prep`] per
    /// qubit in order, but costing one sampler scan for the whole run.
    /// On a clean frame with the countdown covering the run this is a
    /// single subtraction.
    #[inline]
    pub fn prep_batch<R: Rng + ?Sized>(&mut self, qubits: &[usize], rng: &mut R) {
        if !self.dirty && self.sampler.covers(qubits.len() as u64) {
            return;
        }
        self.prep_batch_slow(qubits, rng);
    }

    fn prep_batch_slow<R: Rng + ?Sized>(&mut self, qubits: &[usize], rng: &mut R) {
        if self.dirty {
            for &q in qubits {
                clear_bit(&mut self.x, q);
                clear_bit(&mut self.z, q);
            }
            self.refresh_dirty();
        }
        let n = qubits.len() as u64;
        let mut done = 0u64;
        while let Some(off) = self
            .sampler
            .next_fault_within(PhysOpKind::ZeroPrepare, n - done, rng)
        {
            let idx = done + off;
            set_bit(&mut self.x, qubits[idx as usize]);
            self.dirty = true;
            self.faults_injected += 1;
            done = idx + 1;
        }
    }

    /// Applies the same twirl-free one-qubit gate to each qubit in
    /// order (distinct indices), batching the fault scan. Identical RNG
    /// stream to per-op application.
    ///
    /// # Panics
    ///
    /// Panics (debug) on `T`/`Tdg`, whose stochastic twirl draws during
    /// conjugation and therefore cannot be batched.
    #[inline]
    pub fn gate1_batch<R: Rng + ?Sized>(&mut self, g: Gate1, qubits: &[usize], rng: &mut R) {
        debug_assert!(
            !matches!(g, Gate1::T | Gate1::Tdg),
            "T conjugation twirls; apply it per op"
        );
        if !self.dirty && self.sampler.covers(qubits.len() as u64) {
            return;
        }
        self.gate1_batch_slow(g, qubits, rng);
    }

    fn gate1_batch_slow<R: Rng + ?Sized>(&mut self, g: Gate1, qubits: &[usize], rng: &mut R) {
        let n = qubits.len() as u64;
        let mut done = 0u64;
        loop {
            let next = self
                .sampler
                .next_fault_within(PhysOpKind::OneQubitGate, n - done, rng);
            let upto = next.map_or(n, |off| done + off + 1);
            if self.dirty {
                for &q in &qubits[done as usize..upto as usize] {
                    self.conjugate_gate1_pure(g, q);
                }
            }
            match next {
                None => return,
                Some(off) => {
                    self.inject_random_1q(qubits[(done + off) as usize], rng);
                    done += off + 1;
                }
            }
        }
    }

    /// Applies the same twirl-free two-qubit gate to each `(a, b)` pair
    /// in order (pairs may chain or overlap), batching the fault scan.
    /// Identical RNG stream to per-op application.
    ///
    /// # Panics
    ///
    /// Panics (debug) on `Cs` (its conjugation twirls).
    #[inline]
    pub fn gate2_batch<R: Rng + ?Sized>(
        &mut self,
        g: Gate2,
        pairs: &[(usize, usize)],
        rng: &mut R,
    ) {
        debug_assert!(
            !matches!(g, Gate2::Cs),
            "CS conjugation twirls; apply it per op"
        );
        if !self.dirty && self.sampler.covers(pairs.len() as u64) {
            return;
        }
        self.gate2_batch_slow(g, pairs, rng);
    }

    fn gate2_batch_slow<R: Rng + ?Sized>(
        &mut self,
        g: Gate2,
        pairs: &[(usize, usize)],
        rng: &mut R,
    ) {
        let n = pairs.len() as u64;
        let mut done = 0u64;
        loop {
            let next = self
                .sampler
                .next_fault_within(PhysOpKind::TwoQubitGate, n - done, rng);
            let upto = next.map_or(n, |off| done + off + 1);
            if self.dirty {
                for &(a, b) in &pairs[done as usize..upto as usize] {
                    self.conjugate_gate2_pure(g, a, b);
                }
            }
            match next {
                None => return,
                Some(off) => {
                    let (a, b) = pairs[(done + off) as usize];
                    self.inject_random_2q(a, b, rng);
                    done += off + 1;
                }
            }
        }
    }

    /// Measures every qubit in `qubits` (distinct indices) in `basis`,
    /// returning the flip outcomes as a mask (bit `i` = `qubits[i]`).
    /// Identical semantics and RNG stream to per-op measurement.
    ///
    /// # Panics
    ///
    /// Panics on more than 64 qubits (the mask could not hold the
    /// outcomes); measure larger registers in 64-qubit batches.
    #[inline]
    pub fn measure_batch<R: Rng + ?Sized>(
        &mut self,
        basis: Basis,
        qubits: &[usize],
        rng: &mut R,
    ) -> u64 {
        assert!(
            qubits.len() <= 64,
            "measure_batch mask holds at most 64 outcomes, got {}",
            qubits.len()
        );
        if !self.dirty && self.sampler.covers(qubits.len() as u64) {
            return 0;
        }
        self.measure_batch_slow(basis, qubits, rng)
    }

    fn measure_batch_slow<R: Rng + ?Sized>(
        &mut self,
        basis: Basis,
        qubits: &[usize],
        rng: &mut R,
    ) -> u64 {
        let mut flips = 0u64;
        if self.dirty {
            let bits = match basis {
                Basis::Z => &self.x,
                Basis::X => &self.z,
            };
            for (i, &q) in qubits.iter().enumerate() {
                flips |= (bit(bits, q) as u64) << i;
            }
        }
        let n = qubits.len() as u64;
        let mut done = 0u64;
        while let Some(off) = self
            .sampler
            .next_fault_within(PhysOpKind::Measurement, n - done, rng)
        {
            let idx = done + off;
            flips ^= 1 << idx; // faulty measurement misreports
            self.faults_injected += 1;
            done = idx + 1;
        }
        if self.dirty {
            for &q in qubits {
                clear_bit(&mut self.x, q);
                clear_bit(&mut self.z, q);
            }
            self.refresh_dirty();
        }
        flips
    }

    /// Applies `per_each` movement ops of `kind` (straight move or
    /// turn) to each qubit in order (`qubits[0]` × `per_each`, then
    /// `qubits[1]` × `per_each`, ...), batching the fault scan.
    /// Identical RNG stream to per-op application in that order.
    #[inline]
    pub fn movement_batch<R: Rng + ?Sized>(
        &mut self,
        kind: PhysOpKind,
        qubits: &[usize],
        per_each: u32,
        rng: &mut R,
    ) {
        debug_assert!(matches!(kind, PhysOpKind::StraightMove | PhysOpKind::Turn));
        let n = qubits.len() as u64 * per_each as u64;
        if self.sampler.covers(n) {
            return;
        }
        self.movement_batch_slow(kind, qubits, per_each, rng);
    }

    fn movement_batch_slow<R: Rng + ?Sized>(
        &mut self,
        kind: PhysOpKind,
        qubits: &[usize],
        per_each: u32,
        rng: &mut R,
    ) {
        if per_each == 0 {
            return;
        }
        let n = qubits.len() as u64 * per_each as u64;
        let mut done = 0u64;
        while let Some(off) = self.sampler.next_fault_within(kind, n - done, rng) {
            let idx = done + off;
            let q = qubits[(idx / per_each as u64) as usize];
            self.inject_random_1q(q, rng);
            done = idx + 1;
        }
    }

    #[inline]
    fn conjugate_gate1_pure(&mut self, g: Gate1, q: usize) {
        match g {
            Gate1::I | Gate1::X | Gate1::Y | Gate1::Z => {}
            Gate1::H => {
                let bx = bit(&self.x, q);
                let bz = bit(&self.z, q);
                xor_bit(&mut self.x, q, bx ^ bz);
                xor_bit(&mut self.z, q, bx ^ bz);
            }
            Gate1::S | Gate1::Sdg => {
                let bx = bit(&self.x, q);
                xor_bit(&mut self.z, q, bx);
            }
            // qods-lint: allow(P1) -- proven invariant: the batch path filters non-Clifford gates before dispatch
            Gate1::T | Gate1::Tdg => unreachable!("twirled gates are never batched"),
        }
    }

    #[inline]
    fn conjugate_gate2_pure(&mut self, g: Gate2, a: usize, b: usize) {
        match g {
            Gate2::Cx => {
                let xa = bit(&self.x, a);
                xor_bit(&mut self.x, b, xa);
                let zb = bit(&self.z, b);
                xor_bit(&mut self.z, a, zb);
            }
            Gate2::Cz => {
                let xa = bit(&self.x, a);
                let xb = bit(&self.x, b);
                xor_bit(&mut self.z, b, xa);
                xor_bit(&mut self.z, a, xb);
            }
            // qods-lint: allow(P1) -- proven invariant: the batch path filters non-Clifford gates before dispatch
            Gate2::Cs => unreachable!("twirled gates are never batched"),
        }
    }

    #[inline]
    fn conjugate_gate1<R: Rng + ?Sized>(&mut self, g: Gate1, q: usize, rng: &mut R) {
        match g {
            Gate1::T | Gate1::Tdg => {
                // Stochastic twirl of the non-Clifford conjugation:
                // X -> (X ± Y)/sqrt(2) becomes X or Y with prob 1/2.
                if bit(&self.x, q) && rng.gen_bool(0.5) {
                    xor_bit(&mut self.z, q, true);
                }
            }
            g => self.conjugate_gate1_pure(g, q),
        }
    }

    #[inline]
    fn conjugate_gate2<R: Rng + ?Sized>(&mut self, g: Gate2, a: usize, b: usize, rng: &mut R) {
        match g {
            Gate2::Cs => {
                // Clifford part acts like CZ on X errors; the residual
                // non-Clifford part is twirled like T.
                let xa = bit(&self.x, a);
                let xb = bit(&self.x, b);
                xor_bit(&mut self.z, b, xa);
                xor_bit(&mut self.z, a, xb);
                if xa && rng.gen_bool(0.5) {
                    xor_bit(&mut self.z, a, true);
                }
                if xb && rng.gen_bool(0.5) {
                    xor_bit(&mut self.z, b, true);
                }
            }
            g => self.conjugate_gate2_pure(g, a, b),
        }
    }

    #[inline]
    fn inject_random_1q<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        let p = Pauli::NON_IDENTITY[rng.gen_range(0..3)];
        self.inject(q, p);
        self.faults_injected += 1;
    }

    #[inline]
    fn inject_random_2q<R: Rng + ?Sized>(&mut self, a: usize, b: usize, rng: &mut R) {
        // Uniform over the 15 non-identity two-qubit Paulis.
        let k = rng.gen_range(1..16u8);
        let pa = match k / 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let pb = match k % 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        self.inject(a, pa);
        self.inject(b, pb);
        self.faults_injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn cx_propagates_x_forward_and_z_backward() {
        let mut r = rng();
        let mut f = PauliFrame::new(2, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.inject(1, Pauli::Z);
        f.apply(&PhysOp::cx(0, 1), &mut r);
        assert_eq!(f.error_at(0), Pauli::Y); // X plus back-propagated Z
        assert_eq!(f.error_at(1), Pauli::Y); // Z plus forward-propagated X
    }

    #[test]
    fn h_exchanges_x_and_z() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::h(0), &mut r);
        assert_eq!(f.error_at(0), Pauli::Z);
    }

    #[test]
    fn s_maps_x_to_y() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::Gate1(Gate1::S, 0), &mut r);
        assert_eq!(f.error_at(0), Pauli::Y);
    }

    #[test]
    fn cz_deposits_z_across() {
        let mut r = rng();
        let mut f = PauliFrame::new(2, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::cz(0, 1), &mut r);
        assert_eq!(f.error_at(0), Pauli::X);
        assert_eq!(f.error_at(1), Pauli::Z);
    }

    #[test]
    fn measurement_reports_error_flip_and_consumes() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        let flip = f.apply(&PhysOp::measure_z(0), &mut r).unwrap();
        assert!(flip);
        assert_eq!(f.error_at(0), Pauli::I); // consumed
                                             // Z error does not flip a Z-basis outcome.
        f.inject(0, Pauli::Z);
        let flip = f.apply(&PhysOp::measure_z(0), &mut r).unwrap();
        assert!(!flip);
    }

    #[test]
    fn x_basis_measurement_sees_z_errors() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::Z);
        let flip = f.apply(&PhysOp::measure_x(0), &mut r).unwrap();
        assert!(flip);
    }

    #[test]
    fn prep_erases_history() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::Y);
        f.apply(&PhysOp::Prep(0), &mut r);
        assert_eq!(f.error_at(0), Pauli::I);
    }

    #[test]
    fn noiseless_run_never_injects() {
        let mut r = rng();
        let mut f = PauliFrame::new(3, ErrorModel::noiseless());
        let ops = vec![
            PhysOp::Prep(0),
            PhysOp::h(0),
            PhysOp::cx(0, 1),
            PhysOp::cx(1, 2),
            PhysOp::measure_z(2),
        ];
        let mut flips = Vec::new();
        f.run(&ops, &mut r, &mut flips);
        assert_eq!(flips, vec![false]);
        assert_eq!(f.faults_injected(), 0);
    }

    #[test]
    fn run_reuses_the_flips_buffer() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        let ops = vec![PhysOp::Prep(0), PhysOp::measure_z(0)];
        let mut flips = Vec::with_capacity(8);
        f.run(&ops, &mut r, &mut flips);
        assert_eq!(flips, vec![false]);
        let ptr = flips.as_ptr();
        f.run(&ops, &mut r, &mut flips);
        assert_eq!(flips, vec![false]);
        assert_eq!(ptr, flips.as_ptr(), "buffer must not reallocate");
    }

    #[test]
    fn noisy_run_injects_at_expected_rate() {
        // 10k two-qubit gates at p=0.01 should see ~100 faults.
        let mut r = rng();
        let model = ErrorModel {
            p_gate: 0.01,
            p_move: 0.0,
            ..ErrorModel::noiseless()
        };
        let mut f = PauliFrame::new(2, model);
        for _ in 0..10_000 {
            f.apply(&PhysOp::cx(0, 1), &mut r);
        }
        let n = f.faults_injected();
        assert!((50..200).contains(&n), "fault count {n} out of range");
    }

    #[test]
    fn extract_orders_by_request() {
        let mut f = PauliFrame::new(4, ErrorModel::noiseless());
        f.inject(2, Pauli::X);
        f.inject(3, Pauli::Z);
        let s = f.extract(&[3, 2]);
        assert_eq!(s.to_string(), "ZX");
    }

    #[test]
    fn frames_span_multiple_limbs() {
        let mut r = rng();
        let mut f = PauliFrame::new(130, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.inject(63, Pauli::X);
        f.inject(64, Pauli::Z);
        f.inject(129, Pauli::Y);
        assert_eq!(f.error_at(63), Pauli::X);
        assert_eq!(f.error_at(64), Pauli::Z);
        assert_eq!(f.error_at(129), Pauli::Y);
        // CX across the limb boundary propagates as usual.
        f.apply(&PhysOp::cx(63, 64), &mut r);
        assert_eq!(f.error_at(64), Pauli::Y); // Z plus propagated X
        assert_eq!(f.error_at(63), Pauli::Y); // X plus back-propagated Z
    }

    #[test]
    fn mask7_fast_and_slow_paths_agree() {
        // Straddle the limb boundary: block [60..67) forces the slow
        // path, block [0..7) takes the single-shift path.
        let mut f = PauliFrame::new(70, ErrorModel::noiseless());
        for &q in &[0, 3, 6, 60, 62, 66] {
            f.inject(q, Pauli::X);
        }
        f.inject(61, Pauli::Z);
        assert_eq!(f.x_mask7(&[0, 1, 2, 3, 4, 5, 6]), 0b100_1001);
        assert_eq!(f.x_mask7(&[60, 61, 62, 63, 64, 65, 66]), 0b100_0101);
        assert_eq!(f.z_mask7(&[60, 61, 62, 63, 64, 65, 66]), 0b000_0010);
        // Permuted (non-contiguous) blocks read per-bit.
        assert_eq!(f.x_mask7(&[6, 5, 4, 3, 2, 1, 0]), 0b100_1001);
    }

    /// Batched ops are defined to consume the identical RNG stream as
    /// per-op application; states, flips, and fault counts must match
    /// bit for bit under both sampling modes.
    #[test]
    fn batched_ops_match_per_op_stream() {
        use crate::error_model::FaultSampling;
        for sampling in [FaultSampling::Exact, FaultSampling::Skip] {
            // Inflated rates so faults land inside batches often.
            let model = ErrorModel {
                p_gate: 0.04,
                p_move: 0.01,
                sampling,
            };
            let qubits = [0usize, 1, 2, 3, 4, 5, 6];
            let hs = [0usize, 1, 3];
            let cxs = [(0usize, 2usize), (1, 5), (3, 6), (2, 4)]; // includes a chain
            for seed in 0..200 {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut a = PauliFrame::new(7, model);
                a.prep_batch(&qubits, &mut r1);
                a.gate1_batch(Gate1::H, &hs, &mut r1);
                a.gate2_batch(Gate2::Cx, &cxs, &mut r1);
                a.movement_batch(PhysOpKind::StraightMove, &[0, 1], 3, &mut r1);
                a.movement_batch(PhysOpKind::Turn, &[2], 2, &mut r1);
                let flips_a = a.measure_batch(Basis::Z, &[4, 5, 6], &mut r1);

                let mut r2 = StdRng::seed_from_u64(seed);
                let mut b = PauliFrame::new(7, model);
                for &q in &qubits {
                    b.apply(&PhysOp::Prep(q), &mut r2);
                }
                for &q in &hs {
                    b.apply(&PhysOp::h(q), &mut r2);
                }
                for &(c, t) in &cxs {
                    b.apply(&PhysOp::cx(c, t), &mut r2);
                }
                for &q in &[0usize, 0, 0, 1, 1, 1] {
                    b.apply(&PhysOp::Move(q), &mut r2);
                }
                for _ in 0..2 {
                    b.apply(&PhysOp::TurnOp(2), &mut r2);
                }
                let mut flips_b = 0u64;
                for (i, &q) in [4usize, 5, 6].iter().enumerate() {
                    if b.apply(&PhysOp::measure_z(q), &mut r2).unwrap() {
                        flips_b |= 1 << i;
                    }
                }

                assert_eq!(flips_a, flips_b, "{sampling:?} seed {seed}: flips");
                assert_eq!(
                    a.extract(&[0, 1, 2, 3, 4, 5, 6]),
                    b.extract(&[0, 1, 2, 3, 4, 5, 6]),
                    "{sampling:?} seed {seed}: state"
                );
                assert_eq!(
                    a.faults_injected(),
                    b.faults_injected(),
                    "{sampling:?} seed {seed}: fault count"
                );
                use rand::Rng as _;
                assert_eq!(
                    r1.next_u64(),
                    r2.next_u64(),
                    "{sampling:?} seed {seed}: RNG streams diverged"
                );
            }
        }
    }

    #[test]
    fn reset_clears_state_and_reuses_capacity() {
        let mut r = rng();
        let mut f = PauliFrame::new(28, ErrorModel::paper());
        f.inject(5, Pauli::Y);
        f.apply(&PhysOp::cx(5, 6), &mut r);
        assert!(!f.is_clean());
        f.reset(28, ErrorModel::paper());
        assert!(f.is_clean());
        assert_eq!(f.faults_injected(), 0);
        for q in 0..28 {
            assert_eq!(f.error_at(q), Pauli::I);
        }
        // Shrinking and growing both work.
        f.reset(7, ErrorModel::noiseless());
        assert_eq!(f.len(), 7);
        f.reset(130, ErrorModel::paper());
        assert_eq!(f.len(), 130);
        assert_eq!(f.error_at(129), Pauli::I);
    }

    #[test]
    fn clean_frame_skips_conjugation_but_tracks_dirt() {
        let mut r = rng();
        let mut f = PauliFrame::new(2, ErrorModel::noiseless());
        assert!(f.is_clean());
        f.apply(&PhysOp::h(0), &mut r);
        f.apply(&PhysOp::cx(0, 1), &mut r);
        assert!(f.is_clean());
        f.inject(0, Pauli::X);
        assert!(!f.is_clean());
        // Measuring the only dirty qubit restores cleanliness.
        let _ = f.apply(&PhysOp::measure_z(0), &mut r);
        assert!(f.is_clean());
    }
}
