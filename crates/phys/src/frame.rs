//! Pauli-frame Monte-Carlo simulation of physical circuits.
//!
//! The simulator tracks, for every physical qubit, the X and Z
//! components of the accumulated Pauli *error* relative to the ideal
//! circuit execution. Faults are injected stochastically per operation
//! (§2.2 of the paper) and propagated through Clifford conjugation; in
//! particular two-qubit gates propagate bit and phase flips between
//! qubits, the effect the paper calls out explicitly.
//!
//! Measurements report whether the accumulated error *flips* the ideal
//! outcome. Callers (the Steane-code circuits in `qods-steane`) combine
//! these flips into syndromes; the ideal-state contribution of any
//! stabilizer measurement is zero by construction, so error bits are all
//! that is needed.
//!
//! ## Non-Clifford gates
//!
//! `T` is not Clifford, so an X-component error does not map to a Pauli
//! under conjugation. We apply the standard stochastic twirl: an X or Y
//! error propagates through `T` unchanged or picks up an extra Z with
//! probability 1/2. This is exact for the twirled (Pauli) channel and
//! accurate to first order in the error rate for the untwirled one.
//! The same applies to controlled-S on its non-Clifford component.

use crate::error_model::ErrorModel;
use crate::ops::{Basis, Gate1, Gate2, PhysOp};
use crate::pauli::{Pauli, PauliString};
use rand::Rng;

/// Pauli-frame state of a register of physical qubits.
///
/// # Example
///
/// ```
/// use qods_phys::frame::PauliFrame;
/// use qods_phys::error_model::ErrorModel;
/// use qods_phys::ops::PhysOp;
/// use qods_phys::pauli::Pauli;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut f = PauliFrame::new(2, ErrorModel::noiseless());
/// f.inject(0, Pauli::X);
/// f.apply(&PhysOp::cx(0, 1), &mut rng);
/// // CX propagates the bit flip from control to target.
/// assert_eq!(f.error_at(1), Pauli::X);
/// ```
#[derive(Debug, Clone)]
pub struct PauliFrame {
    x: Vec<bool>,
    z: Vec<bool>,
    model: ErrorModel,
    faults_injected: u64,
}

impl PauliFrame {
    /// A clean frame over `n` qubits with the given error model.
    pub fn new(n: usize, model: ErrorModel) -> Self {
        PauliFrame {
            x: vec![false; n],
            z: vec![false; n],
            model,
            faults_injected: 0,
        }
    }

    /// Number of qubits tracked.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when tracking zero qubits.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of stochastic faults injected so far (diagnostics).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The current error on qubit `q`.
    pub fn error_at(&self, q: usize) -> Pauli {
        Pauli::from_bits(self.x[q], self.z[q])
    }

    /// Deterministically multiplies an error into qubit `q` (used by
    /// tests and by deliberate fault-injection experiments).
    pub fn inject(&mut self, q: usize, p: Pauli) {
        let (px, pz) = p.bits();
        self.x[q] ^= px;
        self.z[q] ^= pz;
    }

    /// Extracts the error pattern restricted to `qubits`, as a
    /// [`PauliString`] indexed in the order given.
    pub fn extract(&self, qubits: &[usize]) -> PauliString {
        let mut s = PauliString::identity(qubits.len());
        for (i, &q) in qubits.iter().enumerate() {
            s.mul_assign_at(i, self.error_at(q));
        }
        s
    }

    /// Applies one physical operation: ideal Clifford conjugation of the
    /// existing frame, then stochastic fault injection per the error
    /// model. Returns `Some(flip)` for measurements, where `flip` is
    /// true when the recorded outcome differs from the ideal one.
    pub fn apply<R: Rng + ?Sized>(&mut self, op: &PhysOp, rng: &mut R) -> Option<bool> {
        // 1. Ideal conjugation of the accumulated error through the op.
        match *op {
            PhysOp::Gate1(g, q) => self.conjugate_gate1(g, q, rng),
            PhysOp::Gate2(g, a, b) => self.conjugate_gate2(g, a, b, rng),
            PhysOp::CondPauli(p, q) => {
                // In the ideal (fault-free) execution every syndrome is
                // zero and no correction fires, so an applied correction
                // is a deliberate deviation from the ideal circuit: it
                // multiplies into the frame, cancelling tracked errors.
                self.inject(q, p);
            }
            PhysOp::Prep(q) => {
                // Fresh |0>: prior errors are erased.
                self.x[q] = false;
                self.z[q] = false;
            }
            PhysOp::Measure(..) | PhysOp::Move(_) | PhysOp::TurnOp(_) => {}
        }

        // 2. Fault injection + measurement readout.
        match *op {
            PhysOp::Measure(basis, q) => {
                let mut flip = match basis {
                    Basis::Z => self.x[q],
                    Basis::X => self.z[q],
                };
                if rng.gen_bool(self.model.p_gate) {
                    // Faulty measurement misreports the outcome.
                    flip = !flip;
                    self.faults_injected += 1;
                }
                // The ion is consumed / re-prepared after measurement;
                // clear its frame so recycled qubits start clean.
                self.x[q] = false;
                self.z[q] = false;
                Some(flip)
            }
            PhysOp::Prep(q) => {
                if rng.gen_bool(self.model.p_gate) {
                    // A faulty |0> preparation yields the flipped state.
                    self.x[q] = true;
                    self.faults_injected += 1;
                }
                None
            }
            PhysOp::Gate1(_, q) | PhysOp::CondPauli(_, q) => {
                if rng.gen_bool(self.model.p_gate) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
            PhysOp::Gate2(_, a, b) => {
                if rng.gen_bool(self.model.p_gate) {
                    self.inject_random_2q(a, b, rng);
                }
                None
            }
            PhysOp::Move(q) | PhysOp::TurnOp(q) => {
                if rng.gen_bool(self.model.p_move) {
                    self.inject_random_1q(q, rng);
                }
                None
            }
        }
    }

    /// Runs a straight-line circuit, returning measurement flips in
    /// program order. Only valid for circuits without classical
    /// feedback; feedback circuits drive [`PauliFrame::apply`] manually.
    pub fn run<R: Rng + ?Sized>(&mut self, ops: &[PhysOp], rng: &mut R) -> Vec<bool> {
        let mut flips = Vec::new();
        for op in ops {
            if let Some(f) = self.apply(op, rng) {
                flips.push(f);
            }
        }
        flips
    }

    fn conjugate_gate1<R: Rng + ?Sized>(&mut self, g: Gate1, q: usize, rng: &mut R) {
        match g {
            Gate1::I | Gate1::X | Gate1::Y | Gate1::Z => {}
            Gate1::H => std::mem::swap(&mut self.x[q], &mut self.z[q]),
            Gate1::S | Gate1::Sdg => self.z[q] ^= self.x[q],
            Gate1::T | Gate1::Tdg => {
                // Stochastic twirl of the non-Clifford conjugation:
                // X -> (X ± Y)/sqrt(2) becomes X or Y with prob 1/2.
                if self.x[q] && rng.gen_bool(0.5) {
                    self.z[q] = !self.z[q];
                }
            }
        }
    }

    fn conjugate_gate2<R: Rng + ?Sized>(&mut self, g: Gate2, a: usize, b: usize, rng: &mut R) {
        match g {
            Gate2::Cx => {
                // X propagates control -> target, Z target -> control.
                self.x[b] ^= self.x[a];
                self.z[a] ^= self.z[b];
            }
            Gate2::Cz => {
                // X on either qubit deposits Z on the other.
                self.z[b] ^= self.x[a];
                self.z[a] ^= self.x[b];
            }
            Gate2::Cs => {
                // Clifford part acts like CZ on X errors; the residual
                // non-Clifford part is twirled like T.
                self.z[b] ^= self.x[a];
                self.z[a] ^= self.x[b];
                if self.x[a] && rng.gen_bool(0.5) {
                    self.z[a] = !self.z[a];
                }
                if self.x[b] && rng.gen_bool(0.5) {
                    self.z[b] = !self.z[b];
                }
            }
        }
    }

    fn inject_random_1q<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        let p = Pauli::NON_IDENTITY[rng.gen_range(0..3)];
        self.inject(q, p);
        self.faults_injected += 1;
    }

    fn inject_random_2q<R: Rng + ?Sized>(&mut self, a: usize, b: usize, rng: &mut R) {
        // Uniform over the 15 non-identity two-qubit Paulis.
        let k = rng.gen_range(1..16u8);
        let pa = match k / 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let pb = match k % 4 {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        self.inject(a, pa);
        self.inject(b, pb);
        self.faults_injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn cx_propagates_x_forward_and_z_backward() {
        let mut r = rng();
        let mut f = PauliFrame::new(2, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.inject(1, Pauli::Z);
        f.apply(&PhysOp::cx(0, 1), &mut r);
        assert_eq!(f.error_at(0), Pauli::Y); // X plus back-propagated Z
        assert_eq!(f.error_at(1), Pauli::Y); // Z plus forward-propagated X
    }

    #[test]
    fn h_exchanges_x_and_z() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::h(0), &mut r);
        assert_eq!(f.error_at(0), Pauli::Z);
    }

    #[test]
    fn s_maps_x_to_y() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::Gate1(Gate1::S, 0), &mut r);
        assert_eq!(f.error_at(0), Pauli::Y);
    }

    #[test]
    fn cz_deposits_z_across() {
        let mut r = rng();
        let mut f = PauliFrame::new(2, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        f.apply(&PhysOp::cz(0, 1), &mut r);
        assert_eq!(f.error_at(0), Pauli::X);
        assert_eq!(f.error_at(1), Pauli::Z);
    }

    #[test]
    fn measurement_reports_error_flip_and_consumes() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::X);
        let flip = f.apply(&PhysOp::measure_z(0), &mut r).unwrap();
        assert!(flip);
        assert_eq!(f.error_at(0), Pauli::I); // consumed
                                             // Z error does not flip a Z-basis outcome.
        f.inject(0, Pauli::Z);
        let flip = f.apply(&PhysOp::measure_z(0), &mut r).unwrap();
        assert!(!flip);
    }

    #[test]
    fn x_basis_measurement_sees_z_errors() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::Z);
        let flip = f.apply(&PhysOp::measure_x(0), &mut r).unwrap();
        assert!(flip);
    }

    #[test]
    fn prep_erases_history() {
        let mut r = rng();
        let mut f = PauliFrame::new(1, ErrorModel::noiseless());
        f.inject(0, Pauli::Y);
        f.apply(&PhysOp::Prep(0), &mut r);
        assert_eq!(f.error_at(0), Pauli::I);
    }

    #[test]
    fn noiseless_run_never_injects() {
        let mut r = rng();
        let mut f = PauliFrame::new(3, ErrorModel::noiseless());
        let ops = vec![
            PhysOp::Prep(0),
            PhysOp::h(0),
            PhysOp::cx(0, 1),
            PhysOp::cx(1, 2),
            PhysOp::measure_z(2),
        ];
        let flips = f.run(&ops, &mut r);
        assert_eq!(flips, vec![false]);
        assert_eq!(f.faults_injected(), 0);
    }

    #[test]
    fn noisy_run_injects_at_expected_rate() {
        // 10k two-qubit gates at p=0.01 should see ~100 faults.
        let mut r = rng();
        let model = ErrorModel {
            p_gate: 0.01,
            p_move: 0.0,
        };
        let mut f = PauliFrame::new(2, model);
        for _ in 0..10_000 {
            f.apply(&PhysOp::cx(0, 1), &mut r);
        }
        let n = f.faults_injected();
        assert!((50..200).contains(&n), "fault count {n} out of range");
    }

    #[test]
    fn extract_orders_by_request() {
        let mut f = PauliFrame::new(4, ErrorModel::noiseless());
        f.inject(2, Pauli::X);
        f.inject(3, Pauli::Z);
        let s = f.extract(&[3, 2]);
        assert_eq!(s.to_string(), "ZX");
    }
}
