//! # qods-phys — physical substrate for the speed-of-data study
//!
//! This crate models the *physical* layer of the paper "Running a Quantum
//! Circuit at the Speed of Data" (Isailovic et al., ISCA 2008):
//!
//! * [`pauli`] — single- and multi-qubit Pauli algebra used for error
//!   tracking (bit flips, phase flips, and their propagation).
//! * [`ops`] — the physical operation set of the ion-trap technology
//!   abstraction (one-/two-qubit gates, measurement, preparation,
//!   straight moves and turns).
//! * [`latency`] — the ion-trap latency model of Tables 1 and 4, plus a
//!   symbolic-latency vector type used to print the paper's symbolic
//!   formulas (Tables 5 and 7) and evaluate them numerically.
//! * [`error_model`] — per-operation independent error probabilities
//!   (gate error 1e-4, movement error 1e-6 in the paper).
//! * [`frame`] — a Pauli-frame simulator over word-packed symplectic
//!   bitmasks: errors are injected stochastically per operation
//!   (geometric skip-sampling at low rates) and propagated through
//!   Clifford conjugation, exactly the style of Monte-Carlo evaluation
//!   the paper performs on its ancilla-preparation circuits.
//! * [`frame_ref`] — the boolean reference frame the packed simulator
//!   is differentially tested against.
//! * [`montecarlo`] — a harness for running many seeded trials
//!   (allocation-free via [`montecarlo::TrialArena`], chunked
//!   work-stealing in parallel) and aggregating acceptance/error
//!   statistics.
//!
//! # Example
//!
//! ```
//! use qods_phys::latency::LatencyTable;
//! use qods_phys::ops::PhysOp;
//!
//! let lat = LatencyTable::ion_trap();
//! // A two-qubit gate costs 10 us in the paper's ion-trap model.
//! assert_eq!(lat.of(&PhysOp::cx(0, 1)), 10.0);
//! ```

pub mod error_model;
pub mod frame;
pub mod frame_ref;
pub mod latency;
pub mod montecarlo;
pub mod ops;
pub mod pauli;

pub use error_model::{ErrorModel, FaultSampler, FaultSampling};
pub use frame::PauliFrame;
pub use latency::{LatencyTable, SymbolicLatency};
pub use montecarlo::TrialArena;
pub use ops::{PhysOp, PhysOpKind};
pub use pauli::{Pauli, PauliString};
