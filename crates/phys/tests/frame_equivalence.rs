//! Differential suite: the word-packed [`PauliFrame`] against the
//! retained boolean reference implementation [`RefPauliFrame`], and the
//! batched frame ops against per-op application.
//!
//! The two frame implementations are *defined* to consume the RNG in
//! the same order, so under any fixed seed they must agree bit for bit
//! on error states, measurement flips, and fault counts — across random
//! op sequences, directed Pauli injections, and every sampling mode.

use proptest::prelude::*;
use qods_phys::error_model::{ErrorModel, FaultSampling};
use qods_phys::frame::PauliFrame;
use qods_phys::frame_ref::RefPauliFrame;
use qods_phys::ops::{Basis, Gate1, Gate2, PhysOp};
use qods_phys::pauli::Pauli;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 9;

/// Decodes one sampled tuple into a physical op over `N` qubits,
/// covering every op variant including the twirled gates.
fn decode_op(kind: u8, a: usize, b: usize) -> PhysOp {
    let a = a % N;
    let b = b % N;
    let b = if a == b { (a + 1) % N } else { b };
    match kind % 12 {
        0 => PhysOp::Prep(a),
        1 => PhysOp::h(a),
        2 => PhysOp::Gate1(Gate1::S, a),
        3 => PhysOp::Gate1(Gate1::T, a),
        4 => PhysOp::cx(a, b),
        5 => PhysOp::cz(a, b),
        6 => PhysOp::Gate2(Gate2::Cs, a, b),
        7 => PhysOp::measure_z(a),
        8 => PhysOp::measure_x(a),
        9 => PhysOp::Move(a),
        10 => PhysOp::TurnOp(a),
        _ => PhysOp::CondPauli(Pauli::NON_IDENTITY[kind as usize % 3], a),
    }
}

fn model_for(mode: FaultSampling) -> ErrorModel {
    // Rates inflated far beyond the paper's so that op sequences of a
    // few dozen steps regularly fault (both kinds exercise thinning).
    ErrorModel {
        p_gate: 0.07,
        p_move: 0.02,
        sampling: mode,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Packed and reference frames stay bit-identical through random
    /// noisy op sequences, in both sampling modes.
    #[test]
    fn packed_matches_reference(
        ops in proptest::collection::vec((0u8..12, 0usize..N, 0usize..N), 1..60),
        seed in 0u64..1_000_000,
        mode_sel in 0u8..2,
    ) {
        let mode = [FaultSampling::Exact, FaultSampling::Skip][mode_sel as usize];
        let model = model_for(mode);
        let mut packed = PauliFrame::new(N, model);
        let mut reference = RefPauliFrame::new(N, model);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        for &(kind, a, b) in &ops {
            let op = decode_op(kind, a, b);
            let f1 = packed.apply(&op, &mut r1);
            let f2 = reference.apply(&op, &mut r2);
            prop_assert_eq!(f1, f2, "flip mismatch on {:?}", op);
        }
        for q in 0..N {
            prop_assert_eq!(packed.error_at(q), reference.error_at(q), "state at {}", q);
        }
        let all: Vec<usize> = (0..N).collect();
        prop_assert_eq!(packed.extract(&all), reference.extract(&all));
        prop_assert_eq!(packed.faults_injected(), reference.faults_injected());
    }

    /// Directed injections propagate identically (no sampling noise at
    /// all: pure conjugation equivalence, including multi-limb frames).
    #[test]
    fn directed_injections_match(
        injections in proptest::collection::vec((0usize..70, 0usize..3), 1..8),
        ops in proptest::collection::vec((0u8..12, 0usize..70, 0usize..70), 1..40),
    ) {
        let n = 70; // crosses the 64-bit limb boundary
        let model = ErrorModel::noiseless();
        let mut packed = PauliFrame::new(n, model);
        let mut reference = RefPauliFrame::new(n, model);
        let mut r1 = StdRng::seed_from_u64(0);
        let mut r2 = StdRng::seed_from_u64(0);
        for &(q, p) in &injections {
            let pauli = Pauli::NON_IDENTITY[p];
            packed.inject(q, pauli);
            reference.inject(q, pauli);
        }
        for &(kind, a, b) in &ops {
            // Reuse decode_op's shape at width 70.
            let a = a % n;
            let b = b % n;
            let b = if a == b { (a + 1) % n } else { b };
            let op = match kind % 9 {
                0 => PhysOp::h(a),
                1 => PhysOp::Gate1(Gate1::S, a),
                2 => PhysOp::Gate1(Gate1::T, a),
                3 => PhysOp::cx(a, b),
                4 => PhysOp::cz(a, b),
                5 => PhysOp::Gate2(Gate2::Cs, a, b),
                6 => PhysOp::Prep(a),
                7 => PhysOp::measure_z(a),
                _ => PhysOp::measure_x(a),
            };
            let f1 = packed.apply(&op, &mut r1);
            let f2 = reference.apply(&op, &mut r2);
            prop_assert_eq!(f1, f2);
        }
        for q in 0..n {
            prop_assert_eq!(packed.error_at(q), reference.error_at(q), "state at {}", q);
        }
    }

    /// Arbitrarily partitioning same-kind runs into batches leaves
    /// states, flips, and the RNG stream untouched.
    #[test]
    fn batching_is_transparent(
        seed in 0u64..1_000_000,
        split in 1usize..7,
        mode_sel in 0u8..2,
    ) {
        let mode = [FaultSampling::Exact, FaultSampling::Skip][mode_sel as usize];
        let model = model_for(mode);
        let qubits: Vec<usize> = (0..7).collect();
        let pairs = [(0usize, 2usize), (1, 5), (3, 6), (0, 4), (2, 6), (4, 5)];

        let mut r1 = StdRng::seed_from_u64(seed);
        let mut batched = PauliFrame::new(7, model);
        let (qa, qb) = qubits.split_at(split.min(qubits.len()));
        batched.prep_batch(qa, &mut r1);
        batched.prep_batch(qb, &mut r1);
        let (pa, pb) = pairs.split_at(split.min(pairs.len()));
        batched.gate2_batch(Gate2::Cx, pa, &mut r1);
        batched.gate2_batch(Gate2::Cx, pb, &mut r1);
        let flips_batched = batched.measure_batch(Basis::Z, &qubits, &mut r1);

        let mut r2 = StdRng::seed_from_u64(seed);
        let mut per_op = PauliFrame::new(7, model);
        for &q in &qubits {
            per_op.apply(&PhysOp::Prep(q), &mut r2);
        }
        for &(c, t) in &pairs {
            per_op.apply(&PhysOp::cx(c, t), &mut r2);
        }
        let mut flips_per_op = 0u64;
        for (i, &q) in qubits.iter().enumerate() {
            if per_op.apply(&PhysOp::measure_z(q), &mut r2).unwrap() {
                flips_per_op |= 1 << i;
            }
        }

        prop_assert_eq!(flips_batched, flips_per_op);
        prop_assert_eq!(batched.faults_injected(), per_op.faults_injected());
        use rand::Rng as _;
        prop_assert_eq!(r1.next_u64(), r2.next_u64(), "RNG streams diverged");
    }
}

/// The straight-line `run` entry points also agree (out-param path).
#[test]
fn run_agrees_with_reference_run() {
    let model = ErrorModel {
        p_gate: 0.05,
        p_move: 0.01,
        sampling: FaultSampling::Skip,
    };
    let ops = vec![
        PhysOp::Prep(0),
        PhysOp::Prep(1),
        PhysOp::h(0),
        PhysOp::cx(0, 1),
        PhysOp::Move(1),
        PhysOp::measure_z(1),
        PhysOp::measure_x(0),
    ];
    let mut flips_a = Vec::new();
    let mut flips_b = Vec::new();
    for seed in 0..500 {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let mut packed = PauliFrame::new(2, model);
        let mut reference = RefPauliFrame::new(2, model);
        packed.run(&ops, &mut r1, &mut flips_a);
        reference.run(&ops, &mut r2, &mut flips_b);
        assert_eq!(flips_a, flips_b, "seed {seed}");
    }
}
