//! The service determinism contract: for a fixed `(request, seed)`
//! the served outputs are bit-identical at any pool size and
//! independent of cache state — the property that makes the
//! content-addressed cache *safe* (a cached answer is the answer any
//! pool would have computed).

use qods_core::study::StudyConfig;
use qods_service::{Overrides, RunRequest, Scheduler};

fn heavy_smoke_request() -> RunRequest {
    // Covers each engine the pool drives: Monte-Carlo (fig4), the
    // discrete-event sweep (fig15), and context-derived tables.
    RunRequest::of(["fig4", "fig15", "table2", "fig7"]).with_overrides(Overrides {
        n_bits: Some(8),
        mc_trials: Some(2_000),
        noise_scale: Some(10.0),
        seed: Some(20080621),
        synth_max_t: Some(8),
        sweep_points: Some(5),
        profile_samples: Some(32),
        ..Overrides::default()
    })
}

#[test]
fn outputs_are_bit_identical_at_any_pool_size() {
    let req = heavy_smoke_request();
    let baseline = Scheduler::with_options(StudyConfig::smoke(), 1, true)
        .run(&req)
        .expect("sequential run");
    for threads in [2, 3, 8] {
        let sched = Scheduler::with_options(StudyConfig::smoke(), threads, true);
        let result = sched.run(&req).expect("parallel run");
        assert_eq!(result.config_hash, baseline.config_hash);
        for (a, b) in baseline.records.iter().zip(&result.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.output, b.output, "{} differs at {threads} threads", a.id);
        }
    }
}

#[test]
fn cache_state_never_changes_answers() {
    let req = heavy_smoke_request();
    // A fresh cold scheduler per run vs one warm scheduler serving
    // twice: all three answers must agree exactly.
    let cold_a = Scheduler::with_options(StudyConfig::smoke(), 2, false)
        .run(&req)
        .expect("cold run");
    let warm = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let warm_first = warm.run(&req).expect("warm fill");
    let warm_hit = warm.run(&req).expect("warm hit");
    assert_eq!(warm_hit.output_hits, 4);
    for ((a, b), c) in cold_a
        .records
        .iter()
        .zip(&warm_first.records)
        .zip(&warm_hit.records)
    {
        assert_eq!(a.output, b.output, "{}", a.id);
        assert_eq!(b.output, c.output, "{}", b.id);
    }
}
