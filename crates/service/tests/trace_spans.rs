//! The tracing contracts of DESIGN.md §13, checked at the service
//! layer: drained span trees are well-formed at any pool size (every
//! recorded span closed, parent ids resolve, same-lane spans nest
//! like the guard stack that produced them), and arming the tracer
//! never changes a single result byte.
//!
//! The tracer is process-global, so every test here serializes on one
//! lock and drains residue before arming.

use proptest::prelude::*;
use qods_core::study::StudyConfig;
use qods_obs::trace::{Phase, SpanEvent};
use qods_service::{Overrides, RunRequest, Scheduler};
use std::sync::{Mutex, PoisonError};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A cheap request batch with `unique` distinct configurations.
fn batch(requests: usize, unique: usize) -> Vec<RunRequest> {
    (0..requests)
        .map(|i| {
            RunRequest::of(["fig4", "table2"]).with_overrides(Overrides {
                n_bits: Some(6),
                mc_trials: Some(300),
                seed: Some(100 + (i % unique.max(1)) as u64),
                ..Overrides::default()
            })
        })
        .collect()
}

/// Runs `reqs` on a fresh scheduler with tracing armed and returns
/// the drained events (the guard must be held by the caller).
fn traced_run(threads: usize, reqs: &[RunRequest]) -> Vec<SpanEvent> {
    let tracer = qods_obs::trace::tracer();
    tracer.drain(); // residue from whoever traced before us
    qods_obs::trace::enable();
    let sched = Scheduler::with_options(StudyConfig::smoke(), threads, true);
    for (i, outcome) in sched.run_batch(reqs).into_iter().enumerate() {
        outcome.unwrap_or_else(|e| panic!("request {i} failed under tracing: {e}"));
    }
    qods_obs::trace::disable();
    tracer.drain()
}

fn well_formed(events: &[SpanEvent]) {
    assert!(!events.is_empty(), "a traced run records spans");
    // Ids are unique and non-zero (0 is the root parent sentinel).
    let mut ids: Vec<u64> = events.iter().map(|e| e.span_id).collect();
    ids.sort_unstable();
    assert!(ids.first() != Some(&0), "span id 0 is reserved for roots");
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate span ids in one drain");

    // Every parent resolves to a recorded *span* (never an instant).
    // A span only reaches the buffer when its guard drops, so a
    // resolved parent is also proof the parent closed.
    for e in events {
        if e.parent_id == 0 {
            continue;
        }
        let parent = events
            .iter()
            .find(|p| p.span_id == e.parent_id)
            .unwrap_or_else(|| {
                panic!(
                    "span {} at {} has unresolved parent {}",
                    e.span_id, e.site, e.parent_id
                )
            });
        assert_eq!(
            parent.phase,
            Phase::Span,
            "{}'s parent {} is an instant",
            e.site,
            parent.site
        );
        // The child's interval sits inside the parent's: the guard
        // stack closes inner-first, and cross-thread parents (a pool
        // worker's spawning span) stay open across the join.
        assert!(
            e.start_ns >= parent.start_ns
                && e.start_ns + e.dur_ns <= parent.start_ns + parent.dur_ns,
            "span {} [{}, +{}] escapes parent {} [{}, +{}]",
            e.site,
            e.start_ns,
            e.dur_ns,
            parent.site,
            parent.start_ns,
            parent.dur_ns
        );
    }

    // On one lane, spans mirror a guard stack: any two either nest or
    // are disjoint — partial overlap would mean a guard outlived an
    // enclosing scope.
    let spans: Vec<&SpanEvent> = events.iter().filter(|e| e.phase == Phase::Span).collect();
    for a in &spans {
        for b in &spans {
            if a.span_id >= b.span_id || a.lane != b.lane {
                continue;
            }
            let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
            let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
            let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
            let disjoint = a1 <= b0 || b1 <= a0;
            assert!(
                nested || disjoint,
                "lane {} spans {} and {} partially overlap",
                a.lane,
                a.site,
                b.site
            );
        }
    }

    // All site names are canonical.
    for e in events {
        assert!(
            qods_obs::sites::is_site(e.site),
            "unknown site `{}`",
            e.site
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole well-formedness property, at pool sizes spanning
    /// the inline path (1) through oversubscription.
    #[test]
    fn span_trees_are_well_formed_at_any_pool_size(
        threads in 1usize..5,
        requests in 1usize..4,
        unique in 1usize..3,
    ) {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let events = traced_run(threads, &batch(requests, unique.min(requests)));
        well_formed(&events);
        // The serving path is actually covered: scheduling, context
        // checkout, worker execution, per-experiment spans.
        for site in [
            qods_obs::sites::SVC_SCHEDULE,
            qods_obs::sites::SVC_CONTEXT,
            qods_obs::sites::POOL_WORKER,
            qods_obs::sites::JOB_EXPERIMENT,
        ] {
            prop_assert!(
                events.iter().any(|e| e.site == site),
                "no `{}` span in a {}-thread run",
                site,
                threads
            );
        }
    }
}

/// Arming the tracer must not change a single result byte — span
/// timestamps are telemetry, never inputs (§13's determinism
/// boundary).
#[test]
fn results_are_byte_identical_with_tracing_on_and_off() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let reqs = batch(3, 2);

    qods_obs::trace::disable();
    qods_obs::trace::tracer().drain();
    let quiet = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let quiet_runs: Vec<_> = reqs
        .iter()
        .map(|r| quiet.run(r).expect("untraced run"))
        .collect();

    qods_obs::trace::enable();
    let traced = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let traced_runs: Vec<_> = reqs
        .iter()
        .map(|r| traced.run(r).expect("traced run"))
        .collect();
    qods_obs::trace::disable();
    let events = qods_obs::trace::tracer().drain();
    assert!(!events.is_empty(), "the traced arm really traced");

    for (a, b) in quiet_runs.iter().zip(&traced_runs) {
        assert_eq!(a.config_hash, b.config_hash);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.output, rb.output, "{} drifted under tracing", ra.id);
        }
    }
}
