//! Property tests for override canonicalization: the content hash
//! must be insensitive to everything that doesn't change the work
//! (request field order, default-vs-explicit values) and sensitive to
//! every knob that does.

use proptest::prelude::*;
use qods_core::study::{ArchChoice, StudyConfig};
use qods_service::{config_hash, Overrides};
use serde::{Serialize, Value};

/// Builds an `Overrides` whose populated fields are selected by
/// `mask` bits, with values derived deterministically from `salt`
/// (deliberately *not* the base defaults unless `salt` makes them
/// so).
fn overrides_from(mask: u32, salt: u64) -> Overrides {
    let panel = match salt % 3 {
        0 => ArchChoice::paper_panel(),
        1 => vec![ArchChoice::FullyMultiplexed, ArchChoice::Qla],
        _ => vec![
            ArchChoice::FullyMultiplexed,
            ArchChoice::Qla,
            ArchChoice::Cqla,
        ],
    };
    Overrides {
        n_bits: (mask & 1 != 0).then_some(4 + (salt % 13) as usize),
        mc_trials: (mask & 2 != 0).then_some(1_000 + salt % 9_000),
        noise_scale: (mask & 4 != 0).then_some(1.0 + (salt % 20) as f64),
        seed: (mask & 8 != 0).then_some(salt),
        synth_max_t: (mask & 16 != 0).then_some(6 + (salt % 8) as u32),
        synth_target: (mask & 32 != 0).then_some(1e-2 * (1.0 + (salt % 5) as f64)),
        sweep_points: (mask & 64 != 0).then_some(3 + (salt % 11) as usize),
        sweep_min_area: (mask & 128 != 0).then_some(100.0 + (salt % 300) as f64),
        sweep_max_area: (mask & 256 != 0).then_some(1e6 + (salt % 77) as f64),
        profile_samples: (mask & 512 != 0).then_some(16 + (salt % 200) as usize),
        arch_panel: (mask & 1024 != 0).then_some(panel),
        width_sweep: (mask & 2048 != 0).then_some(vec![4, 4 + (salt % 28) as usize]),
    }
}

/// Copies the base configuration's value for field `i` into `ov` as
/// an explicit override (the "explicitly write the default" case).
fn set_explicit_default(ov: &mut Overrides, i: usize, base: &StudyConfig) {
    match i {
        0 => ov.n_bits = Some(base.n_bits),
        1 => ov.mc_trials = Some(base.mc_trials),
        2 => ov.noise_scale = Some(base.noise_scale),
        3 => ov.seed = Some(base.seed),
        4 => ov.synth_max_t = Some(base.synth_max_t),
        5 => ov.synth_target = Some(base.synth_target),
        6 => ov.sweep_points = Some(base.sweep_points),
        7 => ov.sweep_min_area = Some(base.sweep_area_range.min_area),
        8 => ov.sweep_max_area = Some(base.sweep_area_range.max_area),
        9 => ov.profile_samples = Some(base.profile_samples),
        10 => ov.arch_panel = Some(base.arch_panel.clone()),
        11 => ov.width_sweep = Some(base.width_sweep.clone()),
        _ => unreachable!("12 override fields"),
    }
}

/// Sets field `i` of `ov` to a value guaranteed to differ from what
/// `ov` resolves to against `base`.
fn perturb(ov: &mut Overrides, i: usize, base: &StudyConfig) {
    let resolved = ov.resolve(base);
    match i {
        0 => ov.n_bits = Some(resolved.n_bits + 1),
        1 => ov.mc_trials = Some(resolved.mc_trials + 1),
        2 => ov.noise_scale = Some(resolved.noise_scale + 0.5),
        3 => ov.seed = Some(resolved.seed.wrapping_add(1)),
        4 => ov.synth_max_t = Some(resolved.synth_max_t + 1),
        5 => ov.synth_target = Some(resolved.synth_target * 2.0),
        6 => ov.sweep_points = Some(resolved.sweep_points + 1),
        7 => ov.sweep_min_area = Some(resolved.sweep_area_range.min_area + 1.0),
        8 => ov.sweep_max_area = Some(resolved.sweep_area_range.max_area + 1.0),
        9 => ov.profile_samples = Some(resolved.profile_samples + 1),
        10 => {
            let mut panel = resolved.arch_panel.clone();
            if panel.len() > 1 {
                panel.pop();
            } else {
                panel.push(ArchChoice::Qalypso);
            }
            ov.arch_panel = Some(panel);
        }
        11 => {
            let mut widths = resolved.width_sweep.clone();
            widths.push(widths.last().copied().unwrap_or(4) + 1);
            ov.width_sweep = Some(widths);
        }
        _ => unreachable!("12 override fields"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Explicitly writing a field at the value it would resolve to
    /// anyway never changes the hash — "default-vs-explicit" requests
    /// are the same content.
    #[test]
    fn explicit_defaults_hash_identically(mask in 0u32..4096, salt in 0u64..1_000_000,
                                          extra in 0u32..4096) {
        let base = StudyConfig::default();
        let ov = overrides_from(mask, salt);
        let hash = ov.content_hash(&base);
        // Fill every field selected by `extra` (and not already set)
        // with the value it resolves to today.
        let resolved = ov.resolve(&base);
        let mut explicit = ov.clone();
        for i in 0..12 {
            if extra & (1 << i) != 0 {
                set_explicit_default(&mut explicit, i, &resolved);
            }
        }
        prop_assert_eq!(explicit.content_hash(&base), hash);
    }

    /// The hash survives a serde round-trip and arbitrary request
    /// field order (the canonical form is order-fixed).
    #[test]
    fn field_order_and_round_trip_preserve_the_hash(mask in 0u32..4096, salt in 0u64..1_000_000) {
        let base = StudyConfig::default();
        let ov = overrides_from(mask, salt);
        let json = serde_json::to_string(&ov).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let back: Overrides =
            serde_json::from_str(&json).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&back, &ov);
        // Reverse the object's field order and parse again.
        let Value::Object(fields) = ov.to_value() else {
            return Err(TestCaseError::fail("overrides serialize as an object"));
        };
        let reversed = Value::Object(fields.into_iter().rev().collect());
        let json = serde_json::to_string(&reversed)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let back: Overrides =
            serde_json::from_str(&json).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.content_hash(&base), ov.content_hash(&base));
    }

    /// Changing any single knob changes the hash — no two distinct
    /// workloads can share a cache line.
    #[test]
    fn any_changed_knob_changes_the_hash(mask in 0u32..4096, salt in 0u64..1_000_000,
                                         field in 0usize..12) {
        let base = StudyConfig::default();
        let ov = overrides_from(mask, salt);
        let hash = ov.content_hash(&base);
        let mut changed = ov.clone();
        perturb(&mut changed, field, &base);
        prop_assert!(
            changed.content_hash(&base) != hash,
            "perturbing field {} left the hash unchanged", field
        );
    }
}

#[test]
fn hash_is_stable_across_processes_and_time() {
    // A pinned value: the content hash addresses a persistent cache,
    // so it must never drift silently. If this fails, the canonical
    // encoding changed — bump deliberately and note it in CHANGES.md.
    let base = StudyConfig::default();
    assert_eq!(Overrides::default().content_hash(&base), config_hash(&base));
    let ov = Overrides {
        n_bits: Some(8),
        noise_scale: Some(10.0),
        ..Overrides::default()
    };
    assert_eq!(qods_service::hash_hex(ov.content_hash(&base)).len(), 16);
}
