//! The scheduler's isolation boundary under injected faults and
//! deadline budgets: a panicking or cancelled job is one typed error
//! — never a crashed scheduler, never a poisoned cache, never a
//! wrong answer afterwards. Lives in its own integration binary
//! because the fault injector is process-global.

use qods_service::prelude::*;
use std::sync::Mutex;
use std::sync::PoisonError;

/// Serializes the fault-armed tests: one plan at a time.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn smoke_request(ids: &[&str]) -> RunRequest {
    RunRequest::of(ids.iter().copied()).with_overrides(Overrides {
        n_bits: Some(8),
        mc_trials: Some(2_000),
        noise_scale: Some(10.0),
        synth_max_t: Some(8),
        sweep_points: Some(5),
        profile_samples: Some(32),
        ..Overrides::default()
    })
}

#[test]
fn a_panicking_job_is_a_typed_error_and_the_scheduler_keeps_serving() {
    let _x = exclusive();
    let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let req = smoke_request(&["table2"]);

    qods_fault::arm(qods_fault::FaultPlan::new().once(
        "pool.worker",
        1,
        qods_fault::FaultAction::Panic,
    ));
    let err = sched.run(&req).expect_err("injected panic must surface");
    qods_fault::disarm();
    match &err {
        ServiceError::Internal { message } => {
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(sched.stats().panics_caught, 1);

    // The same scheduler — caches, pool, inflight table — still
    // serves the identical request correctly afterwards.
    let ok = sched.run(&req).expect("scheduler survives a caught panic");
    assert_eq!(ok.records.len(), 1);
    assert_eq!(sched.stats().panics_caught, 1, "no further panics");
}

#[test]
fn coalesced_followers_receive_the_leaders_typed_error() {
    let _x = exclusive();
    let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let req = smoke_request(&["table3"]);

    // The leader's first pool op stalls long enough for the follower
    // to join, then its second op (an inner Monte-Carlo worker)
    // panics.
    qods_fault::arm(
        qods_fault::FaultPlan::new()
            .once("pool.worker", 1, qods_fault::FaultAction::Delay(500))
            .once("pool.worker", 2, qods_fault::FaultAction::Panic),
    );
    let (leader_out, follower_out) = std::thread::scope(|s| {
        let leader = s.spawn(|| sched.run_coalesced(&req));
        std::thread::sleep(std::time::Duration::from_millis(100));
        let follower = s.spawn(|| sched.run_coalesced(&req));
        (
            leader.join().expect("leader thread must not die"),
            follower.join().expect("follower thread must not die"),
        )
    });
    qods_fault::disarm();

    let leader_err = leader_out.expect_err("leader saw the injected panic");
    assert!(matches!(leader_err, ServiceError::Internal { .. }));
    let (follower_err, coalesced) = match follower_out {
        Err(e) => (e, true),
        Ok(_) => panic!("follower joined the failing execution and must share its error"),
    };
    assert!(coalesced);
    assert_eq!(follower_err, leader_err, "errors coalesce like results");
    assert_eq!(
        sched.stats().panics_caught,
        1,
        "one execution, one caught panic, shared by both callers"
    );
    assert_eq!(sched.stats().in_flight, 0, "the table is clean afterwards");

    // And the key is not poisoned: the next submission executes.
    assert!(sched.run(&req).is_ok());
}

#[test]
fn expired_deadlines_cancel_with_a_typed_error_and_no_partial_state() {
    let req = smoke_request(&["table2", "table3"]);
    let baseline = Scheduler::with_options(StudyConfig::smoke(), 2, true)
        .run(&req)
        .expect("baseline");

    let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let err = sched
        .run(&req.clone().with_deadline_ms(0))
        .expect_err("a zero budget cannot finish");
    assert_eq!(err, ServiceError::DeadlineExceeded);
    assert_eq!(err.to_string(), "deadline exceeded");
    assert_eq!(sched.stats().deadlines_exceeded, 1);
    assert_eq!(
        sched.stats().panics_caught,
        0,
        "cancellation is not a panic"
    );

    // Nothing partial was cached: the rerun on the same scheduler is
    // bit-identical to a fresh scheduler's run.
    let rerun = sched.run(&req).expect("rerun after cancellation");
    assert_eq!(rerun.records.len(), baseline.records.len());
    for (a, b) in baseline.records.iter().zip(&rerun.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.output, b.output, "cancellation must not perturb results");
    }
}

#[test]
fn generous_deadlines_change_nothing() {
    let req = smoke_request(&["table9"]);
    let plain = Scheduler::with_options(StudyConfig::smoke(), 2, true)
        .run(&req)
        .expect("plain");
    let budgeted = Scheduler::with_options(StudyConfig::smoke(), 2, true)
        .run(&req.clone().with_deadline_ms(600_000))
        .expect("budgeted");
    assert_eq!(plain.records[0].output, budgeted.records[0].output);
}

#[test]
fn deadlines_are_policy_not_identity() {
    let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let req = smoke_request(&["table9"]);
    let key_plain = sched.job_key(&req).expect("key");
    let key_budgeted = sched
        .job_key(&req.clone().with_deadline_ms(5))
        .expect("key");
    assert_eq!(
        key_plain, key_budgeted,
        "deadline_ms must not split the coalescing key"
    );
}

#[test]
fn the_server_wide_default_deadline_applies_only_when_unset() {
    let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    assert_eq!(sched.default_deadline_ms(), None);
    sched.set_default_deadline_ms(1);
    assert_eq!(sched.default_deadline_ms(), Some(1));

    // A 1 ms server default cancels a request too heavy to finish
    // inside it (millions of Monte-Carlo trials cancel at the first
    // chunk boundary past the budget)...
    let heavy = RunRequest::of(["fig4"]).with_overrides(Overrides {
        n_bits: Some(8),
        mc_trials: Some(50_000_000),
        ..Overrides::default()
    });
    let err = sched.run(&heavy).expect_err("1ms default budget");
    assert_eq!(err, ServiceError::DeadlineExceeded);
    // ...but an explicit per-request budget always wins.
    let ok = sched
        .run(&smoke_request(&["table9"]).with_deadline_ms(600_000))
        .expect("explicit budget overrides the default");
    assert_eq!(ok.records.len(), 1);
    sched.set_default_deadline_ms(0);
    assert_eq!(sched.default_deadline_ms(), None);
}
