//! The coalescing exactly-once contract, driven through the real
//! scheduler: N threads submitting the same request concurrently must
//! trigger exactly **one** execution — proven by the pool's lowering
//! and output-miss counters, which count actual compute, not wall
//! clock — and every thread must receive identical outputs.

use qods_service::prelude::*;
use std::sync::{Arc, Barrier};
use std::thread;

fn smoke_overrides() -> Overrides {
    Overrides {
        n_bits: Some(8),
        mc_trials: Some(2_000),
        synth_max_t: Some(8),
        sweep_points: Some(5),
        profile_samples: Some(32),
        ..Overrides::default()
    }
}

#[test]
fn concurrent_identical_requests_execute_exactly_once() {
    let n = 8;
    let scheduler = Arc::new(Scheduler::with_options(StudyConfig::smoke(), 2, true));
    let barrier = Arc::new(Barrier::new(n));
    let request = RunRequest::of(["table2", "table3"]).with_overrides(smoke_overrides());

    let threads: Vec<_> = (0..n)
        .map(|_| {
            let scheduler = Arc::clone(&scheduler);
            let barrier = Arc::clone(&barrier);
            let request = request.clone();
            thread::spawn(move || {
                barrier.wait();
                scheduler.run_coalesced(&request).expect("valid request")
            })
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .collect();

    // Exactly one compute, however the threads interleaved: one
    // context build, and each of the two experiments computed once
    // (a late thread that missed the in-flight window is served by
    // the output cache instead — still zero recompute).
    assert_eq!(scheduler.pool().total_lowering_runs(), 1);
    let cache = scheduler.pool().stats();
    assert_eq!(cache.context_misses, 1);
    assert_eq!(cache.output_misses, 2);

    // Every caller got the same answer, byte for byte.
    let first = &results[0].0;
    for (result, _) in &results {
        assert_eq!(result.records.len(), 2);
        for (a, b) in first.records.iter().zip(&result.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.output, b.output);
        }
    }

    // Accounting: every submission was either a leader or coalesced.
    let stats = scheduler.stats();
    assert_eq!(stats.jobs_led + stats.jobs_coalesced, n as u64);
    assert!(stats.jobs_led >= 1);
    assert_eq!(stats.in_flight, 0, "nothing left in flight");
}

#[test]
fn distinct_requests_do_not_coalesce() {
    let scheduler = Arc::new(Scheduler::with_options(StudyConfig::smoke(), 2, true));
    let barrier = Arc::new(Barrier::new(2));
    let a = RunRequest::of(["table2"]).with_overrides(smoke_overrides());
    let b = RunRequest::of(["table3"]).with_overrides(smoke_overrides());
    assert_ne!(
        scheduler.job_key(&a).expect("key"),
        scheduler.job_key(&b).expect("key")
    );

    let threads: Vec<_> = [a, b]
        .into_iter()
        .map(|request| {
            let scheduler = Arc::clone(&scheduler);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                scheduler.run_coalesced(&request).expect("valid request")
            })
        })
        .collect();
    for t in threads {
        let (_, coalesced) = t.join().expect("no panics");
        assert!(!coalesced, "different selections must not share a run");
    }
    // Same overrides: the two jobs shared one context but computed
    // their own experiments.
    assert_eq!(scheduler.pool().stats().output_misses, 2);
    assert_eq!(scheduler.stats().jobs_coalesced, 0);
}

#[test]
fn selection_aliases_and_the_empty_selection_share_keys() {
    let scheduler = Scheduler::with_options(StudyConfig::smoke(), 1, true);
    // `table6` is an alias of `table5`: same resolved selection.
    let by_primary = scheduler.job_key(&RunRequest::of(["table5"])).expect("key");
    let by_alias = scheduler.job_key(&RunRequest::of(["table6"])).expect("key");
    assert_eq!(by_primary, by_alias);

    // Empty selection == explicit full registry, in registry order.
    let all_ids: Vec<String> = scheduler
        .registry()
        .iter()
        .map(|e| e.id().to_string())
        .collect();
    assert_eq!(
        scheduler.job_key(&RunRequest::default()).expect("key"),
        scheduler.job_key(&RunRequest::of(all_ids)).expect("key")
    );

    // Correlation ids are not part of the identity.
    let mut with_id = RunRequest::of(["table5"]);
    with_id.id = Some("different".to_string());
    assert_eq!(scheduler.job_key(&with_id).expect("key"), by_primary);
}

#[test]
fn leaders_share_errors_with_their_followers() {
    let n = 4;
    let scheduler = Arc::new(Scheduler::with_options(StudyConfig::smoke(), 2, true));
    let barrier = Arc::new(Barrier::new(n));
    // Resolvable selection, invalid resolved width: fails *inside*
    // the coalesced run, so followers receive the leader's error.
    let request = RunRequest::of(["table2"]).with_overrides(Overrides {
        n_bits: Some(4096),
        ..Overrides::default()
    });

    let threads: Vec<_> = (0..n)
        .map(|_| {
            let scheduler = Arc::clone(&scheduler);
            let barrier = Arc::clone(&barrier);
            let request = request.clone();
            thread::spawn(move || {
                barrier.wait();
                scheduler
                    .run_coalesced(&request)
                    .expect_err("invalid width")
            })
        })
        .collect();
    let errors: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .collect();
    for e in &errors {
        assert_eq!(e, &errors[0], "all callers observe the same rejection");
        assert!(matches!(e, ServiceError::Kernel(_)), "{e}");
    }
    assert!(
        scheduler.pool().is_empty(),
        "rejected jobs build no context"
    );
}
