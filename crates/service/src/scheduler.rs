//! The job scheduler: runs [`RunRequest`]s over the shared worker
//! pool, serving repeated work from the content-addressed cache and
//! streaming per-job progress events.

use crate::cache::{ContextPool, PoolEntry};
use crate::coalesce::{Begin, InflightTable};
use crate::request::RunRequest;
use qods_core::experiment::{Experiment, ExperimentRecord};
use qods_core::kernels::KernelError;
use qods_core::registry::{Registry, RegistryError};
use qods_core::study::StudyConfig;
use qods_obs::{sites, Counter};
use qods_pool::plock;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a job was rejected or failed (nothing partial is ever
/// returned or cached on error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The experiment selection was invalid (unknown or duplicate id).
    Registry(RegistryError),
    /// The resolved configuration asks for an impossible kernel
    /// (e.g. `n_bits` of 0 or beyond the width bound) — rejected
    /// before a context is built so a bad request can never panic
    /// the daemon.
    Kernel(KernelError),
    /// The job panicked mid-execution. The scheduler catches the
    /// unwind at the job boundary, so one poisoned experiment costs
    /// its own job a typed error — never the daemon, never an
    /// unrelated job.
    Internal {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The job overran its deadline budget and was cancelled at a
    /// chunk boundary (see [`crate::request::RunRequest::deadline_ms`]).
    DeadlineExceeded,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Registry(e) => e.fmt(f),
            ServiceError::Kernel(e) => e.fmt(f),
            ServiceError::Internal { message } => write!(f, "internal error: {message}"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RegistryError> for ServiceError {
    fn from(e: RegistryError) -> Self {
        ServiceError::Registry(e)
    }
}

impl From<KernelError> for ServiceError {
    fn from(e: KernelError) -> Self {
        ServiceError::Kernel(e)
    }
}

/// A streamed progress event for one job. Delivery order within one
/// job is: one `Started`, then one `ExperimentDone` per requested
/// experiment (cache hits first, then computed ones as they finish —
/// interleaved across workers).
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job was admitted and its context checked out.
    Started {
        /// The request's correlation id.
        request_id: Option<String>,
        /// Content hash of the resolved configuration.
        config_hash: u64,
        /// How many experiments the job selects.
        experiments: usize,
        /// Whether the context came from the cache.
        context_hit: bool,
    },
    /// One experiment of the job finished (from cache or computed).
    ExperimentDone {
        /// The request's correlation id.
        request_id: Option<String>,
        /// The experiment's primary id.
        experiment: String,
        /// True when the result came from the output cache.
        cache_hit: bool,
        /// Wall-clock seconds (0 for cache hits).
        seconds: f64,
    },
}

/// The finished job: records in request order plus cache accounting.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The request's correlation id.
    pub request_id: Option<String>,
    /// Content hash of the resolved configuration.
    pub config_hash: u64,
    /// The fully resolved configuration the job ran under.
    pub config: StudyConfig,
    /// Whether the study context came from the cache.
    pub context_hit: bool,
    /// Experiments served from the output cache.
    pub output_hits: usize,
    /// Experiments actually computed.
    pub computed: usize,
    /// One record per requested experiment, in request order.
    pub records: Vec<ExperimentRecord>,
    /// Wall-clock seconds for the whole job.
    pub seconds: f64,
}

/// Runs jobs on one shared worker pool over a [`ContextPool`].
///
/// ## Determinism contract
///
/// For a fixed `(request, seed)` the records' outputs are
/// bit-identical at any pool size and whatever traffic preceded the
/// job: every experiment is a pure function of the resolved
/// configuration, the engines underneath are thread-count-invariant
/// (tested per engine), and the cache only ever returns an output
/// that was computed from the same content hash.
pub struct Scheduler {
    registry: Registry,
    pool: ContextPool,
    threads: usize,
    /// In-flight jobs, keyed by [`Scheduler::job_key`]; concurrent
    /// submissions of the same key share one execution.
    inflight: InflightTable<Result<Arc<JobResult>, ServiceError>>,
    /// Traffic counters, registered in the [`ContextPool`]'s metrics
    /// registry so one snapshot covers the cache and the scheduler.
    jobs_led: Arc<Counter>,
    jobs_coalesced: Arc<Counter>,
    panics_caught: Arc<Counter>,
    deadlines_exceeded: Arc<Counter>,
    /// Deadline applied to requests that carry none (0 = no default).
    /// Stays a bare atomic: it is a mutable setting, not a metric.
    default_deadline_ms: AtomicU64,
}

/// Scheduler traffic counters (monotonic since construction), the
/// serving-layer complement of [`crate::cache::CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// `run_coalesced` calls that led an execution themselves (every
    /// call that did not join another caller's in-flight job; plain
    /// `run` bypasses coalescing and is not counted here).
    pub jobs_led: u64,
    /// Jobs answered by joining another caller's in-flight execution.
    pub jobs_coalesced: u64,
    /// Jobs in flight right now (gauge, not a counter).
    pub in_flight: usize,
    /// Panics caught at the job boundary and converted to
    /// [`ServiceError::Internal`].
    pub panics_caught: u64,
    /// Jobs cancelled with [`ServiceError::DeadlineExceeded`].
    pub deadlines_exceeded: u64,
}

impl Scheduler {
    /// A caching scheduler over `base` sized to the host (or the
    /// process-wide `qods_pool` thread pin).
    pub fn new(base: StudyConfig) -> Self {
        Scheduler::with_options(base, qods_pool::host_threads(), true)
    }

    /// A scheduler with an explicit worker count and cache switch.
    /// The worker count is pinned end-to-end: it sizes this
    /// scheduler's experiment fan-out *and* the configuration's inner
    /// Monte-Carlo pools.
    pub fn with_options(mut base: StudyConfig, threads: usize, caching: bool) -> Self {
        let threads = threads.max(1);
        base.threads = threads;
        let pool = ContextPool::with_caching(base, caching);
        let metrics = Arc::clone(pool.metrics());
        Scheduler {
            registry: Registry::paper(),
            pool,
            threads,
            inflight: InflightTable::new(),
            jobs_led: metrics.counter(sites::SVC_EXECUTED),
            jobs_coalesced: metrics.counter(sites::SVC_COALESCED),
            panics_caught: metrics.counter(sites::SVC_PANICS_CAUGHT),
            deadlines_exceeded: metrics.counter(sites::SVC_DEADLINE_EXCEEDED),
            default_deadline_ms: AtomicU64::new(0),
        }
    }

    /// Sets the deadline budget applied to requests that carry no
    /// `deadline_ms` of their own (0 disables the default). A
    /// request's explicit budget always wins.
    pub fn set_default_deadline_ms(&self, ms: u64) {
        self.default_deadline_ms.store(ms, Ordering::Relaxed);
    }

    /// The server-wide default deadline budget, if one is set.
    pub fn default_deadline_ms(&self) -> Option<u64> {
        match self.default_deadline_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// The experiment registry jobs resolve against.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The content-addressed cache behind this scheduler.
    pub fn pool(&self) -> &ContextPool {
        &self.pool
    }

    /// The pinned worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serving-layer traffic counters (led vs coalesced jobs, current
    /// in-flight gauge).
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            jobs_led: self.jobs_led.get(),
            jobs_coalesced: self.jobs_coalesced.get(),
            in_flight: self.inflight.len(),
            panics_caught: self.panics_caught.get(),
            deadlines_exceeded: self.deadlines_exceeded.get(),
        }
    }

    /// The identity two submissions must share to coalesce: the
    /// canonical config hash ([`crate::request::config_hash`] of the
    /// overrides resolved against this scheduler's base) extended with
    /// the resolved experiment selection (primary ids, request
    /// order). An empty selection and an explicit full-registry list
    /// therefore key identically, and alias spellings collapse onto
    /// their primary id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Registry`] when the selection does not resolve.
    pub fn job_key(&self, request: &RunRequest) -> Result<u64, ServiceError> {
        let all_ids: Vec<&str>;
        let ids: Vec<&str> = if request.experiments.is_empty() {
            all_ids = self.registry.iter().map(|e| e.id()).collect();
            all_ids.clone()
        } else {
            request.experiments.iter().map(String::as_str).collect()
        };
        let selected = self.registry.resolve(&ids)?;
        let resolved = request.overrides.resolve(self.pool.base());
        let mut identity = crate::request::canonical_config_json(&resolved);
        for exp in &selected {
            identity.push('|');
            identity.push_str(exp.id());
        }
        Ok(qods_core::compile::hash::fnv1a(identity.as_bytes()))
    }

    /// Runs one job with in-flight coalescing: concurrent submissions
    /// of the same [`Scheduler::job_key`] block on a single execution
    /// and all receive the same shared [`JobResult`] (the leader's,
    /// accounting fields included — a coalesced response is the
    /// leader's response verbatim). The boolean is true when this call
    /// was coalesced onto another caller's execution.
    ///
    /// Correlation ids are *not* part of the key, so a coalesced
    /// caller's `request.id` may differ from the shared result's
    /// `request_id`; transports echo the caller's own id alongside.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the selection or configuration is
    /// invalid. Leaders share their error with every coalesced
    /// follower (errors are as deterministic as results).
    pub fn run_coalesced(
        &self,
        request: &RunRequest,
    ) -> Result<(Arc<JobResult>, bool), ServiceError> {
        self.run_coalesced_with_events(request, &mut |_| {})
    }

    /// [`Scheduler::run_coalesced`], streaming [`JobEvent`]s to `emit`
    /// when this call ends up leading the execution. Followers receive
    /// no events (the work happened on the leader's event stream).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] as for [`Scheduler::run_coalesced`].
    pub fn run_coalesced_with_events(
        &self,
        request: &RunRequest,
        emit: &mut (dyn FnMut(JobEvent) + Send),
    ) -> Result<(Arc<JobResult>, bool), ServiceError> {
        let key = self.job_key(request)?;
        loop {
            match self.inflight.begin(key) {
                Begin::Leader(leader) => {
                    let _span = qods_obs::span!(sites::SVC_COALESCE, {
                        role: "leader",
                        config_hash: key
                    });
                    self.jobs_led.inc();
                    let outcome = self.run_with_events(request, emit).map(Arc::new);
                    leader.complete(outcome.clone());
                    return outcome.map(|r| (r, false));
                }
                Begin::Follower(follower) => {
                    let _span = qods_obs::span!(sites::SVC_COALESCE, {
                        role: "follower",
                        config_hash: key
                    });
                    match follower.wait() {
                        Some(outcome) => {
                            self.jobs_coalesced.inc();
                            return outcome.map(|r| (r, true));
                        }
                        // Leader unwound without publishing: retry
                        // (this caller may lead now).
                        None => continue,
                    }
                }
            }
        }
    }

    /// Runs one job to completion (no event streaming).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the experiment selection is invalid;
    /// nothing runs in that case.
    pub fn run(&self, request: &RunRequest) -> Result<JobResult, ServiceError> {
        self.run_with_events(request, &mut |_| {})
    }

    /// Runs one job, streaming [`JobEvent`]s as experiments finish.
    /// Events may be emitted from worker threads (serialized through
    /// a lock), which is what makes the progress *streaming* rather
    /// than batched at the end.
    ///
    /// This is the scheduler's isolation boundary: the job runs under
    /// its deadline budget (the request's `deadline_ms`, else the
    /// server-wide default) inside a `catch_unwind` guard, so a
    /// panicking experiment or an expired deadline is a typed
    /// [`ServiceError`] — the scheduler, its caches, and every other
    /// job keep working. Every public entry point
    /// (`run`, `run_batch`, `run_coalesced*`) funnels through here.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the experiment selection is invalid,
    /// [`ServiceError::Internal`] when the job panicked, or
    /// [`ServiceError::DeadlineExceeded`] when it overran its budget.
    pub fn run_with_events(
        &self,
        request: &RunRequest,
        emit: &mut (dyn FnMut(JobEvent) + Send),
    ) -> Result<JobResult, ServiceError> {
        let budget = request.deadline_ms.or(self.default_deadline_ms());
        // qods-lint: allow(D1) -- deadline arming; cancellation is
        // all-or-nothing, so the clock never shapes a result
        let deadline = budget.map(|ms| Instant::now() + Duration::from_millis(ms));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            qods_pool::with_deadline(deadline, || self.run_job(request, emit))
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                if payload.downcast_ref::<qods_pool::DeadlineHit>().is_some() {
                    self.deadlines_exceeded.inc();
                    Err(ServiceError::DeadlineExceeded)
                } else {
                    self.panics_caught.inc();
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic payload".to_string());
                    Err(ServiceError::Internal { message })
                }
            }
        }
    }

    /// The unguarded job body — only ever called from inside
    /// [`Scheduler::run_with_events`]'s catch/deadline guard.
    fn run_job(
        &self,
        request: &RunRequest,
        emit: &mut (dyn FnMut(JobEvent) + Send),
    ) -> Result<JobResult, ServiceError> {
        let all_ids: Vec<&str>;
        let ids: Vec<&str> = if request.experiments.is_empty() {
            all_ids = self.registry.iter().map(|e| e.id()).collect();
            all_ids.clone()
        } else {
            request.experiments.iter().map(String::as_str).collect()
        };
        let selected = self.registry.resolve(&ids)?;

        // Validate the benchmark width before building anything: an
        // out-of-bounds `n_bits` must be a typed rejection, not a
        // panic inside benchmark compilation.
        let resolved = request.overrides.resolve(self.pool.base());
        for spec in qods_core::compile::paper_specs(resolved.n_bits) {
            spec.validate()?;
        }

        // qods-lint: allow(D1) -- job wall-time telemetry; reported in
        // events/stats, excluded from hashed result lines
        let t0 = Instant::now();
        let (entry, context_hit) = self.pool.checkout(&request.overrides);
        let _span = qods_obs::span!(sites::SVC_SCHEDULE, {
            config_hash: entry.hash(),
            cache: if context_hit { "hit" } else { "miss" }
        });
        emit(JobEvent::Started {
            request_id: request.id.clone(),
            config_hash: entry.hash(),
            experiments: selected.len(),
            context_hit,
        });

        let mut slots: Vec<Option<ExperimentRecord>> = vec![None; selected.len()];
        let mut misses: Vec<(usize, &dyn Experiment)> = Vec::new();
        for (i, exp) in selected.iter().enumerate() {
            match entry.cached_output(exp.id()) {
                Some(output) => {
                    emit(JobEvent::ExperimentDone {
                        request_id: request.id.clone(),
                        experiment: exp.id().to_string(),
                        cache_hit: true,
                        seconds: 0.0,
                    });
                    slots[i] = Some(ExperimentRecord {
                        id: exp.id().to_string(),
                        title: exp.title().to_string(),
                        seconds: 0.0,
                        output,
                    });
                }
                None => misses.push((i, *exp)),
            }
        }
        let output_hits = selected.len() - misses.len();
        let computed = self.compute_misses(request, &entry, &misses, emit);
        for (i, record) in computed {
            // A cold pool drops the entry when the job ends; don't
            // pay an output clone for a cache nobody will read.
            if self.pool.caching() {
                entry.store_output(&record.id, record.output.clone());
            }
            slots[i] = Some(record);
        }
        self.pool
            .record_output_lookups(output_hits as u64, misses.len() as u64);

        Ok(JobResult {
            request_id: request.id.clone(),
            config_hash: entry.hash(),
            config: entry.context().config().clone(),
            context_hit,
            output_hits,
            computed: misses.len(),
            records: slots
                .into_iter()
                .map(|s| {
                    s.unwrap_or_else(|| unreachable!("every selected experiment produced a record"))
                })
                .collect(),
            seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Runs the cache-missed experiments of one job through the
    /// shared worker pool, streaming an event per finished
    /// experiment.
    fn compute_misses(
        &self,
        request: &RunRequest,
        entry: &Arc<PoolEntry>,
        misses: &[(usize, &dyn Experiment)],
        emit: &mut (dyn FnMut(JobEvent) + Send),
    ) -> Vec<(usize, ExperimentRecord)> {
        let request_id = request.id.clone();
        let emit = Mutex::new(emit);
        qods_pool::run_indexed(misses.len(), self.threads.min(misses.len().max(1)), |k| {
            // Experiment boundaries are cancellation points even for
            // engines with no inner chunk loop.
            qods_pool::check_deadline();
            let (i, exp) = misses[k];
            // Parents to the pool.worker span the pool opened on this
            // thread (or the caller's span on the inline path).
            let _span = qods_obs::span!(sites::JOB_EXPERIMENT, { detail: exp.id() });
            // qods-lint: allow(D1) -- per-experiment wall-time telemetry
            let t = Instant::now();
            let output = exp.run(entry.context());
            let seconds = t.elapsed().as_secs_f64();
            (plock(&emit))(JobEvent::ExperimentDone {
                request_id: request_id.clone(),
                experiment: exp.id().to_string(),
                cache_hit: false,
                seconds,
            });
            (
                i,
                ExperimentRecord {
                    id: exp.id().to_string(),
                    title: exp.title().to_string(),
                    seconds,
                    output,
                },
            )
        })
    }

    /// Runs a batch of jobs in order, returning each job's outcome.
    pub fn run_batch(&self, requests: &[RunRequest]) -> Vec<Result<JobResult, ServiceError>> {
        requests.iter().map(|r| self.run(r)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::request::Overrides;

    fn smoke_request(ids: &[&str]) -> RunRequest {
        RunRequest::of(ids.iter().copied()).with_overrides(Overrides {
            n_bits: Some(8),
            mc_trials: Some(2_000),
            noise_scale: Some(10.0),
            synth_max_t: Some(8),
            sweep_points: Some(5),
            profile_samples: Some(32),
            ..Overrides::default()
        })
    }

    #[test]
    fn repeated_request_is_served_from_cache_with_zero_relowering() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
        let req = smoke_request(&["table2", "table3", "fig7"]);
        let first = sched.run(&req).expect("first run");
        assert!(!first.context_hit);
        assert_eq!((first.output_hits, first.computed), (0, 3));
        assert_eq!(sched.pool().total_lowering_runs(), 1);

        let second = sched.run(&req).expect("second run");
        assert!(second.context_hit);
        assert_eq!((second.output_hits, second.computed), (3, 0));
        // The whole point: the repeat re-lowered nothing.
        assert_eq!(sched.pool().total_lowering_runs(), 1);
        for (a, b) in first.records.iter().zip(&second.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn requests_differing_only_in_experiments_share_the_context() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
        sched
            .run(&smoke_request(&["table2", "sec33"]))
            .expect("first");
        let second = sched
            .run(&smoke_request(&["table3", "table9"]))
            .expect("second");
        assert!(second.context_hit, "same overrides must share the context");
        assert_eq!(sched.pool().total_lowering_runs(), 1);
        assert_eq!(sched.pool().len(), 1);
    }

    #[test]
    fn empty_selection_runs_the_full_registry() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 4, true);
        let req = RunRequest::default();
        let result = sched.run(&req).expect("full run");
        assert_eq!(result.records.len(), Registry::paper().len());
        assert_eq!(result.computed, result.records.len());
    }

    #[test]
    fn invalid_selections_are_typed_errors_and_run_nothing() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
        let err = sched
            .run(&RunRequest::of(["table9", "nope"]))
            .expect_err("unknown id");
        assert_eq!(
            err,
            ServiceError::Registry(RegistryError::Unknown {
                id: "nope".to_string()
            })
        );
        let err = sched
            .run(&RunRequest::of(["table5", "table6"]))
            .expect_err("alias duplicate");
        assert!(matches!(
            err,
            ServiceError::Registry(RegistryError::Duplicate { .. })
        ));
        assert_eq!(sched.pool().total_lowering_runs(), 0);
        assert!(sched.pool().is_empty());
    }

    #[test]
    fn out_of_bounds_widths_are_typed_errors_not_panics() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
        for bad in [0usize, 4096] {
            let req = RunRequest::of(["table2"]).with_overrides(Overrides {
                n_bits: Some(bad),
                ..Overrides::default()
            });
            let err = sched.run(&req).expect_err("bad width must be rejected");
            assert!(matches!(err, ServiceError::Kernel(_)), "{err}");
            assert!(err.to_string().contains("invalid width"), "{err}");
        }
        assert!(sched.pool().is_empty(), "rejected jobs build no context");
    }

    #[test]
    fn events_stream_one_start_and_one_done_per_experiment() {
        let sched = Scheduler::with_options(StudyConfig::smoke(), 2, true);
        let req = smoke_request(&["table2", "table3"]);
        let mut events = Vec::new();
        sched
            .run_with_events(&req, &mut |e| events.push(e))
            .expect("run");
        let starts = events
            .iter()
            .filter(|e| matches!(e, JobEvent::Started { .. }))
            .count();
        let done: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::ExperimentDone { cache_hit, .. } => Some(*cache_hit),
                _ => None,
            })
            .collect();
        assert_eq!(starts, 1);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|hit| !hit), "cold run computes everything");

        // The repeat streams the same shape, all hits.
        let mut events = Vec::new();
        sched
            .run_with_events(&req, &mut |e| events.push(e))
            .expect("repeat");
        let done: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::ExperimentDone { cache_hit, .. } => Some(*cache_hit),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![true, true]);
    }
}
