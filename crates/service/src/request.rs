//! Typed run requests: a sparse [`Overrides`] struct over the study
//! knobs, its canonical form, and the stable content hash the result
//! cache is addressed by.
//!
//! ## Canonicalization and hashing
//!
//! Two requests are "the same work" exactly when they resolve to the
//! same [`StudyConfig`]. [`Overrides::resolve`] applies the sparse
//! overrides to a base configuration, and [`config_hash`] hashes a
//! canonical JSON encoding of the *resolved* configuration — fixed
//! field order, every semantic knob present. That construction makes
//! the hash insensitive to everything that doesn't change the
//! answer:
//!
//! * **field order** in the request JSON (deserialization is
//!   order-free, the canonical encoding is fixed-order);
//! * **default-vs-explicit values** (an override explicitly set to
//!   the base value resolves to the same configuration as omitting
//!   it);
//! * **worker counts** — `threads` is deliberately *excluded* from
//!   the canonical form: every engine in the workspace is
//!   bit-identical at any thread count (the tested determinism
//!   contract), so pool size is service policy, not work identity.
//!
//! Any changed semantic knob changes the canonical encoding and
//! therefore the hash (property-tested in
//! `tests/overrides_canonical.rs`).

use qods_core::study::{ArchChoice, StudyConfig};
use serde::{Deserialize, Error, Serialize, Value};

/// Sparse, serializable overrides over the study knobs that are
/// otherwise hard-wired in [`StudyConfig`] and the experiment
/// implementations: benchmark kernel width, Monte-Carlo trial count
/// and error-rate scale, the Fig 15 area-sweep grid and architecture
/// panel, synthesis budgets, and profile sampling.
///
/// `None` means "keep the base configuration's value".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Overrides {
    /// Benchmark operand width (kernel width; paper: 32).
    pub n_bits: Option<usize>,
    /// Monte-Carlo trials per preparation circuit (Fig 4).
    pub mc_trials: Option<u64>,
    /// Error-rate scale (1.0 = the paper's rates; 10.0 = one decade
    /// hotter).
    pub noise_scale: Option<f64>,
    /// RNG seed.
    pub seed: Option<u64>,
    /// Synthesis budget: maximum T-count for pi/2^k sequences.
    pub synth_max_t: Option<u32>,
    /// Synthesis early-stop distance.
    pub synth_target: Option<f64>,
    /// Fig 15 sweep: number of area points.
    pub sweep_points: Option<usize>,
    /// Fig 15 sweep: smallest area (macroblocks).
    pub sweep_min_area: Option<f64>,
    /// Fig 15 sweep: largest area (macroblocks).
    pub sweep_max_area: Option<f64>,
    /// Fig 7/8 sample counts.
    pub profile_samples: Option<usize>,
    /// Fig 15 architecture panel selection.
    pub arch_panel: Option<Vec<ArchChoice>>,
    /// Width-sweep operand widths (`widthsweep` experiment).
    pub width_sweep: Option<Vec<usize>>,
}

/// The override field names, in canonical (declaration) order. One
/// table drives serialization, deserialization, the request
/// validator, and the lint rule H1 (config-hash coverage), so they
/// can never drift apart.
pub const OVERRIDE_FIELDS: [&str; 12] = [
    "n_bits",
    "mc_trials",
    "noise_scale",
    "seed",
    "synth_max_t",
    "synth_target",
    "sweep_points",
    "sweep_min_area",
    "sweep_max_area",
    "profile_samples",
    "arch_panel",
    "width_sweep",
];

/// Knobs that are deliberately *policy, not work identity*: they may
/// change how a request is executed but never what it computes, so
/// they are excluded from the canonical encoding and the config hash.
/// Lint rule H1 accepts a config/request field only if it is either
/// encoded by [`canonical_config_json`] or named here.
pub const POLICY_FIELDS: &[&str] = &["threads", "deadline_ms"];

impl Overrides {
    /// True when every field is `None` (the request changes nothing).
    pub fn is_empty(&self) -> bool {
        *self == Overrides::default()
    }

    /// Applies the overrides to a base configuration. `threads` is
    /// never overridden here — pool size is service policy (see the
    /// module docs).
    pub fn resolve(&self, base: &StudyConfig) -> StudyConfig {
        let mut cfg = base.clone();
        if let Some(v) = self.n_bits {
            cfg.n_bits = v;
        }
        if let Some(v) = self.mc_trials {
            cfg.mc_trials = v;
        }
        if let Some(v) = self.noise_scale {
            cfg.noise_scale = v;
        }
        if let Some(v) = self.seed {
            cfg.seed = v;
        }
        if let Some(v) = self.synth_max_t {
            cfg.synth_max_t = v;
        }
        if let Some(v) = self.synth_target {
            cfg.synth_target = v;
        }
        if let Some(v) = self.sweep_points {
            cfg.sweep_points = v;
        }
        if let Some(v) = self.sweep_min_area {
            cfg.sweep_area_range.min_area = v;
        }
        if let Some(v) = self.sweep_max_area {
            cfg.sweep_area_range.max_area = v;
        }
        if let Some(v) = self.profile_samples {
            cfg.profile_samples = v;
        }
        if let Some(v) = &self.arch_panel {
            cfg.arch_panel = v.clone();
        }
        if let Some(v) = &self.width_sweep {
            cfg.width_sweep = v.clone();
        }
        cfg
    }

    /// The content hash of these overrides against `base`:
    /// [`config_hash`] of the resolved configuration.
    pub fn content_hash(&self, base: &StudyConfig) -> u64 {
        config_hash(&self.resolve(base))
    }

    fn field_value(&self, name: &str) -> Value {
        match name {
            "n_bits" => self.n_bits.to_value(),
            "mc_trials" => self.mc_trials.to_value(),
            "noise_scale" => self.noise_scale.to_value(),
            "seed" => self.seed.to_value(),
            "synth_max_t" => self.synth_max_t.to_value(),
            "synth_target" => self.synth_target.to_value(),
            "sweep_points" => self.sweep_points.to_value(),
            "sweep_min_area" => self.sweep_min_area.to_value(),
            "sweep_max_area" => self.sweep_max_area.to_value(),
            "profile_samples" => self.profile_samples.to_value(),
            "arch_panel" => self.arch_panel.to_value(),
            "width_sweep" => self.width_sweep.to_value(),
            other => unreachable!("unknown override field `{other}`"),
        }
    }

    fn set_field(&mut self, name: &str, v: &Value) -> Result<(), Error> {
        match name {
            "n_bits" => self.n_bits = Deserialize::from_value(v)?,
            "mc_trials" => self.mc_trials = Deserialize::from_value(v)?,
            "noise_scale" => self.noise_scale = Deserialize::from_value(v)?,
            "seed" => self.seed = Deserialize::from_value(v)?,
            "synth_max_t" => self.synth_max_t = Deserialize::from_value(v)?,
            "synth_target" => self.synth_target = Deserialize::from_value(v)?,
            "sweep_points" => self.sweep_points = Deserialize::from_value(v)?,
            "sweep_min_area" => self.sweep_min_area = Deserialize::from_value(v)?,
            "sweep_max_area" => self.sweep_max_area = Deserialize::from_value(v)?,
            "profile_samples" => self.profile_samples = Deserialize::from_value(v)?,
            "arch_panel" => self.arch_panel = Deserialize::from_value(v)?,
            "width_sweep" => self.width_sweep = Deserialize::from_value(v)?,
            other => {
                return Err(Error::custom(format!(
                    "unknown override `{other}` (knobs: {})",
                    OVERRIDE_FIELDS.join(", ")
                )))
            }
        }
        Ok(())
    }
}

// Hand-written (not derived): the shim derive requires every field to
// be present on deserialization, but overrides are sparse by design —
// absent and `null` both mean "keep the base value" — and unknown
// knob names must be a loud error, not silently ignored work.
impl Serialize for Overrides {
    fn to_value(&self) -> Value {
        let fields = OVERRIDE_FIELDS
            .iter()
            .map(|f| (f.to_string(), self.field_value(f)))
            .filter(|(_, v)| !matches!(v, Value::Null))
            .collect();
        Value::Object(fields)
    }
}

impl Deserialize for Overrides {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("overrides must be a JSON object"))?;
        let mut ov = Overrides::default();
        for (key, value) in fields {
            ov.set_field(key, value)?;
        }
        Ok(ov)
    }
}

/// One job for the service: which experiments to run (empty = every
/// registered experiment) under which overrides, with an optional
/// caller-chosen correlation id echoed back in responses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRequest {
    /// Correlation id echoed in every response line for this job.
    pub id: Option<String>,
    /// Experiment ids or aliases, in the order results are wanted;
    /// empty selects the full registry.
    pub experiments: Vec<String>,
    /// Sparse knob overrides.
    pub overrides: Overrides,
    /// Per-request deadline budget in milliseconds. Like `threads`,
    /// this is service policy, not work identity: it is excluded from
    /// the canonical configuration (and so from the config hash and
    /// the coalescing job key — coalesced followers share the
    /// leader's budget). A job past its deadline cancels at the next
    /// chunk boundary with a typed `deadline_exceeded` error; nothing
    /// partial is cached.
    pub deadline_ms: Option<u64>,
}

impl RunRequest {
    /// A request for the given experiments at base configuration.
    pub fn of<S: Into<String>>(experiments: impl IntoIterator<Item = S>) -> Self {
        RunRequest {
            id: None,
            experiments: experiments.into_iter().map(Into::into).collect(),
            overrides: Overrides::default(),
            deadline_ms: None,
        }
    }

    /// The same request with overrides attached.
    pub fn with_overrides(mut self, overrides: Overrides) -> Self {
        self.overrides = overrides;
        self
    }

    /// The same request with a deadline budget attached.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

impl Serialize for RunRequest {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id".to_string(), id.to_value()));
        }
        fields.push(("experiments".to_string(), self.experiments.to_value()));
        fields.push(("overrides".to_string(), self.overrides.to_value()));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), ms.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for RunRequest {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("request must be a JSON object"))?;
        let mut req = RunRequest::default();
        for (key, value) in fields {
            match key.as_str() {
                "id" => req.id = Deserialize::from_value(value)?,
                "experiments" => {
                    req.experiments = match value {
                        Value::Null => Vec::new(),
                        other => Deserialize::from_value(other)?,
                    }
                }
                "overrides" => {
                    req.overrides = match value {
                        Value::Null => Overrides::default(),
                        other => Deserialize::from_value(other)?,
                    }
                }
                "deadline_ms" => req.deadline_ms = Deserialize::from_value(value)?,
                other => {
                    return Err(Error::custom(format!(
                        "unknown request field `{other}` (expected id, experiments, \
                         overrides, deadline_ms)"
                    )))
                }
            }
        }
        Ok(req)
    }
}

/// The canonical JSON encoding of a configuration: fixed field order,
/// every semantic knob present, `threads` excluded (see module docs).
/// This string is what [`config_hash`] hashes.
pub fn canonical_config_json(cfg: &StudyConfig) -> String {
    let v = Value::Object(vec![
        ("n_bits".to_string(), cfg.n_bits.to_value()),
        ("mc_trials".to_string(), cfg.mc_trials.to_value()),
        ("noise_scale".to_string(), cfg.noise_scale.to_value()),
        ("seed".to_string(), cfg.seed.to_value()),
        ("synth_max_t".to_string(), cfg.synth_max_t.to_value()),
        ("synth_target".to_string(), cfg.synth_target.to_value()),
        ("sweep_points".to_string(), cfg.sweep_points.to_value()),
        (
            "sweep_min_area".to_string(),
            cfg.sweep_area_range.min_area.to_value(),
        ),
        (
            "sweep_max_area".to_string(),
            cfg.sweep_area_range.max_area.to_value(),
        ),
        (
            "profile_samples".to_string(),
            cfg.profile_samples.to_value(),
        ),
        ("arch_panel".to_string(), cfg.arch_panel.to_value()),
        ("width_sweep".to_string(), cfg.width_sweep.to_value()),
    ]);
    serde_json::to_string(&v)
        .unwrap_or_else(|e| unreachable!("canonical config encoding is always finite: {e}"))
}

/// The stable content hash cache entries are addressed by: FNV-1a
/// (64-bit) over [`canonical_config_json`] — the same hashing
/// primitive the `qods-compile` artifact store uses
/// ([`qods_core::compile::hash`]). Stable across runs and platforms —
/// safe to persist and to compare across processes.
pub fn config_hash(cfg: &StudyConfig) -> u64 {
    qods_core::compile::hash::fnv1a(canonical_config_json(cfg).as_bytes())
}

/// Formats a content hash the way responses and logs print it.
pub fn hash_hex(hash: u64) -> String {
    qods_core::compile::hash::hash_hex(hash)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_names_every_semantic_knob_and_not_threads() {
        let json = canonical_config_json(&StudyConfig::default());
        for field in OVERRIDE_FIELDS {
            assert!(json.contains(field), "canonical form misses `{field}`");
        }
        assert!(
            !json.contains("threads"),
            "threads is pool policy, not work identity"
        );
    }

    #[test]
    fn empty_overrides_resolve_to_the_base() {
        let base = StudyConfig::smoke();
        let ov = Overrides::default();
        assert!(ov.is_empty());
        assert_eq!(ov.resolve(&base), base);
        assert_eq!(ov.content_hash(&base), config_hash(&base));
    }

    #[test]
    fn overrides_serde_round_trips_sparsely() {
        let ov = Overrides {
            n_bits: Some(8),
            noise_scale: Some(10.0),
            arch_panel: Some(vec![ArchChoice::FullyMultiplexed, ArchChoice::Qla]),
            ..Overrides::default()
        };
        let json = serde_json::to_string(&ov).expect("serialize");
        // Sparse: unset knobs don't appear.
        assert!(!json.contains("mc_trials"));
        let back: Overrides = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ov);
    }

    #[test]
    fn unknown_override_is_rejected() {
        let err = serde_json::from_str::<Overrides>("{\"n_bitz\": 8}").unwrap_err();
        assert!(err.to_string().contains("unknown override `n_bitz`"));
    }

    #[test]
    fn request_fields_are_all_optional_and_order_free() {
        let a: RunRequest =
            serde_json::from_str("{\"experiments\":[\"table9\"],\"id\":\"j1\"}").expect("parse");
        let b: RunRequest =
            serde_json::from_str("{\"id\":\"j1\",\"experiments\":[\"table9\"]}").expect("parse");
        assert_eq!(a, b);
        assert_eq!(a.id.as_deref(), Some("j1"));
        let empty: RunRequest = serde_json::from_str("{}").expect("parse");
        assert!(empty.experiments.is_empty() && empty.overrides.is_empty());
    }

    #[test]
    fn deadline_round_trips_and_never_reaches_the_config_hash() {
        let req = RunRequest::of(["table9"]).with_deadline_ms(250);
        let json = serde_json::to_string(&req).expect("serialize");
        assert!(json.contains("\"deadline_ms\":250"));
        let back: RunRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, req);

        // The canonical configuration has no deadline field, so two
        // requests differing only in budget hash (and coalesce)
        // identically.
        let base = StudyConfig::smoke();
        assert_eq!(
            req.overrides.content_hash(&base),
            RunRequest::of(["table9"]).overrides.content_hash(&base)
        );
        assert!(!canonical_config_json(&base).contains("deadline"));
    }

    #[test]
    fn hash_hex_is_sixteen_lowercase_digits() {
        let h = hash_hex(config_hash(&StudyConfig::default()));
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
