//! Request-latency accounting — re-exported from `qods-obs`, the
//! unified metrics home, since the observability PR. The histogram was
//! born here (PR 5) and every caller still imports it as
//! `qods_service::stats::LatencyHistogram`; the implementation now
//! lives in [`qods_obs::hist`] so the serving layer, the registry, and
//! the exporters share exactly one type.

pub use qods_obs::hist::{LatencyHistogram, LatencySummary, SUBBUCKETS};
