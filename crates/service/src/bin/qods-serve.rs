//! `qods-serve` — the speed-of-data job service as a stdio daemon.
//!
//! Speaks newline-delimited JSON on stdin/stdout (no network
//! dependencies): each input line is one [`RunRequest`] —
//!
//! ```text
//! {"id":"j1","experiments":["table9","fig7"],"overrides":{"n_bits":8}}
//! ```
//!
//! — and each job answers with exactly one `result` (or `error`)
//! line. Result lines carry the resolved-configuration content hash,
//! cache accounting, and one record per experiment; they contain no
//! timing, so for a fixed request sequence the output stream is
//! byte-reproducible (CI pipes a batch through and diffs against
//! direct registry runs). With `--progress`, `started` and
//! `experiment` progress lines stream per job as work finishes.
//!
//! ```text
//! qods-serve [--threads N] [--progress] [--no-cache] [--base quick|paper]
//! ```

use qods_service::prelude::*;
use serde::Serialize;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// One experiment's result in a `result` line (no timing: the line
/// must be byte-reproducible for a fixed request sequence).
#[derive(Serialize)]
struct RecordLine {
    id: String,
    title: String,
    output: qods_core::experiment::ExperimentOutput,
}

/// The one `result` line a successful job answers with.
#[derive(Serialize)]
struct ResultLine {
    event: &'static str,
    id: Option<String>,
    config: String,
    context_hit: bool,
    output_hits: usize,
    computed: usize,
    records: Vec<RecordLine>,
}

/// The one `error` line a rejected job (or unparseable line) answers
/// with.
#[derive(Serialize)]
struct ErrorLine {
    event: &'static str,
    id: Option<String>,
    error: String,
}

/// A `--progress` stream line.
#[derive(Serialize)]
struct ProgressLine {
    event: &'static str,
    id: Option<String>,
    config: Option<String>,
    experiment: Option<String>,
    cache_hit: Option<bool>,
    seconds: Option<f64>,
}

fn usage() -> &'static str {
    "usage: qods-serve [--threads N] [--progress] [--no-cache] [--base quick|paper]\n\
     \t\t  [--artifacts DIR]\n\
     \n\
     Reads one JSON request per stdin line:\n\
     {\"id\":\"j1\",\"experiments\":[\"table9\"],\"overrides\":{\"n_bits\":8}}\n\
     (empty `experiments` = the full registry; overrides are sparse)\n\
     and writes one `result`/`error` JSON line per request on stdout.\n\
     --threads N   pin every worker pool in the process to N threads\n\
     --progress    stream `started`/`experiment` lines as work finishes\n\
     --no-cache    disable the content-addressed cache (cold service)\n\
     --base quick  resolve overrides against the smoke config, not the paper's\n\
     --artifacts DIR  persist compiled kernel artifacts under DIR\n\
     \t\t  (default results/.artifacts; QODS_ARTIFACT_DIR overrides;\n\
     \t\t  empty DIR keeps artifacts in memory only)"
}

fn emit_line<T: Serialize>(line: &T) {
    let json = serde_json::to_string(line).expect("response lines always serialize");
    let mut out = std::io::stdout().lock();
    // One write per line keeps lines whole even with progress events
    // arriving from worker threads.
    writeln!(out, "{json}").expect("stdout closed");
    out.flush().expect("stdout closed");
}

fn main() -> ExitCode {
    let mut threads: Option<usize> = None;
    let mut progress = false;
    let mut caching = true;
    let mut artifacts: Option<String> = None;
    let mut base = StudyConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--progress" => progress = true,
            "--no-cache" => caching = false,
            "--artifacts" => match args.next() {
                Some(dir) => artifacts = Some(dir),
                None => {
                    eprintln!("--artifacts needs a directory (or \"\")\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--base" => match args.next().as_deref() {
                Some("quick") => base = StudyConfig::smoke(),
                Some("paper") => base = StudyConfig::default(),
                other => {
                    eprintln!(
                        "--base must be `quick` or `paper`, got {other:?}\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    // Pin every pool in the process (sweeps and Monte-Carlo included),
    // then build the scheduler on the same count.
    if let Some(n) = threads {
        qods_service::pool::set_thread_override(Some(n));
    }
    // Attach the disk artifact tier before any compilation: warm-disk
    // daemon starts skip kernel lowering entirely. An explicit empty
    // `--artifacts` keeps the store in memory.
    let artifacts =
        artifacts.unwrap_or_else(|| qods_core::compile::DEFAULT_ARTIFACT_DIR.to_string());
    let store = if artifacts.is_empty() {
        qods_core::compile::ArtifactStore::process()
    } else {
        qods_core::compile::ArtifactStore::init_process(std::path::Path::new(&artifacts))
    };
    let scheduler = Scheduler::with_options(base, qods_service::pool::host_threads(), caching);
    eprintln!(
        "qods-serve: ready ({} worker threads, cache {}, artifacts {})",
        scheduler.threads(),
        if caching { "on" } else { "off" },
        store
            .dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "in-memory".to_string()),
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request: RunRequest = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                emit_line(&ErrorLine {
                    event: "error",
                    id: None,
                    error: format!("bad request: {e}"),
                });
                continue;
            }
        };
        serve_one(&scheduler, &request, progress);
    }
    ExitCode::SUCCESS
}

/// Runs one request and writes its response (and progress) lines.
fn serve_one(scheduler: &Scheduler, request: &RunRequest, progress: bool) {
    let mut emit = |event: JobEvent| {
        if !progress {
            return;
        }
        match event {
            JobEvent::Started {
                request_id,
                config_hash,
                context_hit,
                ..
            } => emit_line(&ProgressLine {
                event: "started",
                id: request_id,
                config: Some(hash_hex(config_hash)),
                experiment: None,
                cache_hit: Some(context_hit),
                seconds: None,
            }),
            JobEvent::ExperimentDone {
                request_id,
                experiment,
                cache_hit,
                seconds,
            } => emit_line(&ProgressLine {
                event: "experiment",
                id: request_id,
                config: None,
                experiment: Some(experiment),
                cache_hit: Some(cache_hit),
                seconds: Some(seconds),
            }),
        }
    };
    match scheduler.run_with_events(request, &mut emit) {
        Ok(result) => emit_line(&ResultLine {
            event: "result",
            id: result.request_id.clone(),
            config: hash_hex(result.config_hash),
            context_hit: result.context_hit,
            output_hits: result.output_hits,
            computed: result.computed,
            records: result
                .records
                .into_iter()
                .map(|r| RecordLine {
                    id: r.id,
                    title: r.title,
                    output: r.output,
                })
                .collect(),
        }),
        Err(e) => emit_line(&ErrorLine {
            event: "error",
            id: request.id.clone(),
            error: e.to_string(),
        }),
    }
}
