//! The content-addressed context and result cache.
//!
//! A [`ContextPool`] replaces ad-hoc `StudyContext::new` call sites:
//! contexts are checked out by the content hash of the request's
//! resolved configuration ([`crate::request::config_hash`]), so two
//! requests that differ only in *which* experiments they ask for
//! share one context — one benchmark lowering, one characterization
//! pass, one set of memoized sweep substrates. Finished
//! [`ExperimentOutput`]s are cached on the same entry keyed by
//! experiment id, so a repeated `(config, experiment)` pair is served
//! without recomputing anything (test-asserted through the context's
//! `lowering_runs` counter).

use crate::request::Overrides;
use qods_core::compile::ArtifactStore;
use qods_core::experiment::{ExperimentOutput, StudyContext};
use qods_core::study::StudyConfig;
use qods_obs::{sites, Counter, Registry};
use qods_pool::plock;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Default bound on retained configurations (see
/// [`ContextPool::with_capacity`]). Generous for real traffic — a
/// retained entry is one lowered benchmark set plus its outputs — but
/// finite, so a long-running daemon cannot be grown without bound by
/// a client streaming never-repeating overrides.
pub const DEFAULT_CACHE_ENTRIES: usize = 256;

/// One cached configuration: the shared context plus every finished
/// experiment output computed under it.
#[derive(Debug)]
pub struct PoolEntry {
    hash: u64,
    ctx: StudyContext,
    outputs: Mutex<HashMap<String, ExperimentOutput>>,
}

impl PoolEntry {
    fn new(hash: u64, config: StudyConfig, store: Arc<ArtifactStore>) -> Self {
        PoolEntry {
            hash,
            ctx: StudyContext::with_store(config, store),
            outputs: Mutex::new(HashMap::new()),
        }
    }

    /// The content hash this entry is addressed by.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The shared memoized context for this configuration.
    pub fn context(&self) -> &StudyContext {
        &self.ctx
    }

    /// The cached output of an experiment, if one finished here.
    ///
    /// Lock poisoning is deliberately ignored here and below: every
    /// write to the map is a single insert of an already-computed
    /// value, so a panicking holder can never leave it half-updated,
    /// and the serving path must survive a caught job panic.
    pub fn cached_output(&self, experiment_id: &str) -> Option<ExperimentOutput> {
        plock(&self.outputs).get(experiment_id).cloned()
    }

    /// Stores a finished output (last write wins; outputs for a fixed
    /// configuration are deterministic, so overwrites are identical).
    pub fn store_output(&self, experiment_id: &str, output: ExperimentOutput) {
        plock(&self.outputs).insert(experiment_id.to_string(), output);
    }

    /// How many outputs this entry holds.
    pub fn cached_outputs(&self) -> usize {
        plock(&self.outputs).len()
    }
}

/// Cache traffic counters (monotonic since pool creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checkouts served by an existing context.
    pub context_hits: u64,
    /// Checkouts that had to build a context.
    pub context_misses: u64,
    /// Experiment results served from a cached output.
    pub output_hits: u64,
    /// Experiment results that had to be computed.
    pub output_misses: u64,
}

impl CacheStats {
    /// Hit fraction over all output lookups (0 when none happened).
    pub fn output_hit_rate(&self) -> f64 {
        let total = self.output_hits + self.output_misses;
        if total == 0 {
            0.0
        } else {
            self.output_hits as f64 / total as f64
        }
    }
}

/// The retained entries plus their recency order (one lock covers
/// both so eviction and lookup can never disagree).
#[derive(Debug, Default)]
struct Retained {
    map: HashMap<u64, Arc<PoolEntry>>,
    /// Least-recently-used first — the eviction order. A checkout hit
    /// moves its hash to the back, so a hot configuration survives
    /// any amount of one-off traffic.
    order: VecDeque<u64>,
}

impl Retained {
    /// Marks `hash` as most recently used.
    fn touch(&mut self, hash: u64) {
        if let Some(pos) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(pos);
            self.order.push_back(hash);
        }
    }
}

/// The content-addressed pool of study contexts.
#[derive(Debug)]
pub struct ContextPool {
    base: StudyConfig,
    caching: bool,
    capacity: usize,
    /// The artifact store every retained context compiles into —
    /// kernel artifacts outlive context eviction, so re-admitting an
    /// evicted configuration re-runs experiments but never re-lowers
    /// circuits another configuration already compiled.
    store: Arc<ArtifactStore>,
    entries: Mutex<Retained>,
    /// The serving stack's metrics registry. The pool creates it (it
    /// is the bottom of the serving-side object graph) and the
    /// scheduler and server above register their own counters into
    /// the same instance, so one snapshot covers the whole stack.
    metrics: Arc<Registry>,
    context_hits: Arc<Counter>,
    context_misses: Arc<Counter>,
    output_hits: Arc<Counter>,
    output_misses: Arc<Counter>,
}

impl ContextPool {
    /// A caching pool over the given base configuration.
    pub fn new(base: StudyConfig) -> Self {
        ContextPool::with_caching(base, true)
    }

    /// A pool with caching switched on or off (capacity
    /// [`DEFAULT_CACHE_ENTRIES`]). With caching off every checkout
    /// builds a fresh context and nothing is retained — the "cold
    /// service" baseline the load generator measures against.
    pub fn with_caching(base: StudyConfig, caching: bool) -> Self {
        ContextPool::with_capacity(base, caching, DEFAULT_CACHE_ENTRIES)
    }

    /// A pool retaining at most `capacity` distinct configurations;
    /// inserting past the bound evicts the least-recently-used entry
    /// (jobs still holding the evicted `Arc` finish normally — the
    /// cache is semantically transparent, eviction only costs a
    /// recompute on the next request for that configuration).
    ///
    /// A caching pool compiles into the process-wide shared
    /// [`ArtifactStore`] (warm-process and — when a disk tier is
    /// configured — cold-process kernel reuse); a non-caching pool
    /// hands every checkout a throwaway in-memory store so the "cold
    /// service" baseline really recompiles everything.
    pub fn with_capacity(base: StudyConfig, caching: bool, capacity: usize) -> Self {
        let store = if caching {
            ArtifactStore::process()
        } else {
            Arc::new(ArtifactStore::in_memory())
        };
        ContextPool::with_store(base, caching, capacity, store)
    }

    /// A pool compiling into an explicit artifact store (tests use
    /// this to control cache scope).
    pub fn with_store(
        base: StudyConfig,
        caching: bool,
        capacity: usize,
        store: Arc<ArtifactStore>,
    ) -> Self {
        let metrics = Arc::new(Registry::new());
        let context_hits = metrics.counter(sites::CACHE_CONTEXT_HITS);
        let context_misses = metrics.counter(sites::CACHE_CONTEXT_MISSES);
        let output_hits = metrics.counter(sites::CACHE_OUTPUT_HITS);
        let output_misses = metrics.counter(sites::CACHE_OUTPUT_MISSES);
        ContextPool {
            base,
            caching,
            capacity: capacity.max(1),
            store,
            entries: Mutex::new(Retained::default()),
            metrics,
            context_hits,
            context_misses,
            output_hits,
            output_misses,
        }
    }

    /// The metrics registry for this serving stack. Everything above
    /// the pool (scheduler, server) registers into it so one snapshot
    /// covers cache, coalescing, and connection counters together.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The artifact store retained contexts compile into.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The base configuration overrides resolve against.
    pub fn base(&self) -> &StudyConfig {
        &self.base
    }

    /// Whether this pool retains contexts and outputs.
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// Checks out the entry for `overrides` (building it on first
    /// sight) and reports whether it was a cache hit.
    pub fn checkout(&self, overrides: &Overrides) -> (Arc<PoolEntry>, bool) {
        let mut span = qods_obs::span!(sites::SVC_CONTEXT);
        let config = overrides.resolve(&self.base);
        let hash = crate::request::config_hash(&config);
        span.note_config_hash(hash);
        if !self.caching {
            self.context_misses.inc();
            span.note_cache("miss");
            // Fresh throwaway store per checkout: the cold baseline
            // recompiles everything, every time, by construction.
            let store = Arc::new(ArtifactStore::in_memory());
            return (Arc::new(PoolEntry::new(hash, config, store)), false);
        }
        // Poison-tolerant like the entry locks above: the retained
        // map's invariant (order tracks map keys) is restored below
        // even if a previous holder unwound mid-checkout.
        let mut retained = plock(&self.entries);
        if let Some(entry) = retained.map.get(&hash) {
            let entry = Arc::clone(entry);
            retained.touch(hash);
            self.context_hits.inc();
            span.note_cache("hit");
            return (entry, true);
        }
        self.context_misses.inc();
        span.note_cache("miss");
        while retained.map.len() >= self.capacity {
            match retained.order.pop_front() {
                Some(lru) => {
                    retained.map.remove(&lru);
                }
                // Unreachable unless a poisoned predecessor desynced
                // the recency order; drop the whole map rather than
                // loop forever.
                None => retained.map.clear(),
            }
        }
        let entry = Arc::new(PoolEntry::new(hash, config, Arc::clone(&self.store)));
        retained.map.insert(hash, Arc::clone(&entry));
        retained.order.push_back(hash);
        (entry, false)
    }

    /// Records the outcome of output lookups (called by the
    /// scheduler so the counters cover every job path).
    pub fn record_output_lookups(&self, hits: u64, misses: u64) {
        self.output_hits.add(hits);
        self.output_misses.add(misses);
    }

    /// Cache traffic so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            context_hits: self.context_hits.get(),
            context_misses: self.context_misses.get(),
            output_hits: self.output_hits.get(),
            output_misses: self.output_misses.get(),
        }
    }

    /// How many distinct configurations the pool holds.
    pub fn len(&self) -> usize {
        plock(&self.entries).map.len()
    }

    /// The retention bound (entries past it evict oldest-first).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the pool holds no contexts yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total benchmark lowerings across every retained context — the
    /// number the cache exists to minimize. A warm pool serving R
    /// requests over U distinct configurations reports U, not R
    /// (asserted by the service tests via `lowering_runs`).
    pub fn total_lowering_runs(&self) -> usize {
        plock(&self.entries)
            .map
            .values()
            .map(|e| e.context().lowering_runs())
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_content_addressed() {
        let pool = ContextPool::new(StudyConfig::smoke());
        let (a, hit_a) = pool.checkout(&Overrides::default());
        let (b, hit_b) = pool.checkout(&Overrides::default());
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "same config must share one entry");
        // Explicitly writing the base value is the same content.
        let explicit = Overrides {
            n_bits: Some(pool.base().n_bits),
            ..Overrides::default()
        };
        let (c, hit_c) = pool.checkout(&explicit);
        assert!(hit_c && Arc::ptr_eq(&a, &c));
        // A changed knob is different content.
        let changed = Overrides {
            n_bits: Some(pool.base().n_bits + 1),
            ..Overrides::default()
        };
        let (d, hit_d) = pool.checkout(&changed);
        assert!(!hit_d && !Arc::ptr_eq(&a, &d));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().context_hits, 2);
        assert_eq!(pool.stats().context_misses, 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let pool = ContextPool::with_capacity(StudyConfig::smoke(), true, 2);
        let ov = |n: usize| Overrides {
            seed: Some(n as u64),
            ..Overrides::default()
        };
        let (first, _) = pool.checkout(&ov(1));
        pool.checkout(&ov(2));
        assert_eq!(pool.len(), 2);
        // Re-hitting config 1 makes config 2 the LRU entry...
        let (_, hit) = pool.checkout(&ov(1));
        assert!(hit);
        // ...so a third distinct config evicts 2, not 1 (under FIFO
        // it would be 1, the oldest-inserted).
        pool.checkout(&ov(3));
        assert_eq!(pool.len(), 2);
        let (still_one, hit1) = pool.checkout(&ov(1));
        assert!(hit1, "recently-used entry must survive eviction");
        assert!(Arc::ptr_eq(&first, &still_one));
        let (_, hit2) = pool.checkout(&ov(2));
        assert!(!hit2, "LRU entry must have been evicted");
        // That rebuild of 2 evicted 3 (LRU after the 1-hits above).
        let (_, hit3) = pool.checkout(&ov(3));
        assert!(!hit3);
        // The still-held Arc from before eviction stays usable.
        assert_eq!(first.context().config().seed, 1);
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn repeated_hits_pin_a_hot_entry_through_churn() {
        // The satellite contract: under a stream of one-off configs,
        // an entry that keeps getting hit is never evicted.
        let pool = ContextPool::with_capacity(StudyConfig::smoke(), true, 3);
        let ov = |n: u64| Overrides {
            seed: Some(n),
            ..Overrides::default()
        };
        let (hot, _) = pool.checkout(&ov(0));
        for n in 1..=20 {
            pool.checkout(&ov(n)); // churn
            let (again, hit) = pool.checkout(&ov(0)); // keep 0 hot
            assert!(hit, "hot entry evicted after churn config {n}");
            assert!(Arc::ptr_eq(&hot, &again));
        }
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn disabled_caching_always_builds_fresh() {
        let pool = ContextPool::with_caching(StudyConfig::smoke(), false);
        let (a, hit_a) = pool.checkout(&Overrides::default());
        let (b, hit_b) = pool.checkout(&Overrides::default());
        assert!(!hit_a && !hit_b);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(pool.is_empty(), "cold pool retains nothing");
    }

    #[test]
    fn outputs_cache_per_experiment_id() {
        let pool = ContextPool::new(StudyConfig::smoke());
        let (entry, _) = pool.checkout(&Overrides::default());
        assert!(entry.cached_output("table1").is_none());
        let out = qods_core::registry::Registry::paper()
            .run_one("table1", entry.context())
            .expect("table1 runs")
            .output;
        entry.store_output("table1", out.clone());
        assert_eq!(entry.cached_output("table1"), Some(out));
        assert_eq!(entry.cached_outputs(), 1);
    }
}
