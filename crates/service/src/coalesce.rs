//! In-flight request coalescing: N concurrent submissions of the same
//! job key block on **one** execution and all receive the same
//! outcome.
//!
//! The cache (`ContextPool`) already dedupes *sequential* repeats —
//! a finished output is served without recomputation. What it cannot
//! dedupe is the thundering herd: eight connections submitting the
//! same cold configuration within the same millisecond would each
//! start the full computation, because none of them has finished
//! populating the cache yet. [`InflightTable`] closes that window:
//! the first arrival for a key becomes the **leader** and runs the
//! job; every arrival while the leader is in flight becomes a
//! **follower** and blocks on the leader's outcome.
//!
//! ## Leader-failure semantics
//!
//! A leader that panics (its [`LeaderGuard`] drops without
//! [`LeaderGuard::complete`]) marks the slot *abandoned*: followers
//! wake, observe no outcome, and retry from the top — one of them
//! becomes the new leader. Work is therefore never lost to a crashed
//! peer, and a poisoned outcome is never served.

use qods_pool::plock;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// What followers observe when a leader finishes (or vanishes).
enum SlotState<T> {
    /// The leader is still running.
    Running,
    /// The leader finished with this shared outcome.
    Done(T),
    /// The leader dropped without completing (panic/unwind); retry.
    Abandoned,
}

/// One in-flight job: the leader's eventual outcome plus the wakeup
/// channel followers block on.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// The in-flight jobs, keyed by job hash.
pub struct InflightTable<T> {
    slots: Mutex<HashMap<u64, Arc<Slot<T>>>>,
}

impl<T> std::fmt::Debug for InflightTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightTable")
            .field("in_flight", &self.len())
            .finish()
    }
}

impl<T> Default for InflightTable<T> {
    fn default() -> Self {
        InflightTable::new()
    }
}

/// The role [`InflightTable::begin`] assigns an arrival.
pub enum Begin<'a, T> {
    /// First arrival: run the job, then [`LeaderGuard::complete`] it.
    Leader(LeaderGuard<'a, T>),
    /// A leader is already running this key: [`Follower::wait`].
    Follower(Follower<T>),
}

/// The leader's obligation: completing publishes the outcome to every
/// follower; dropping without completing marks the slot abandoned so
/// followers retry instead of hanging or seeing a poisoned value.
pub struct LeaderGuard<'a, T> {
    table: &'a InflightTable<T>,
    key: u64,
    slot: Arc<Slot<T>>,
    completed: bool,
}

/// A follower's handle on the leader's in-flight slot.
pub struct Follower<T> {
    slot: Arc<Slot<T>>,
}

impl<T> InflightTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        InflightTable {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// How many jobs are in flight right now (the `stats` gauge).
    ///
    /// Every lock in this table is poison-tolerant
    /// ([`qods_pool::plock`]): slot state is a single enum
    /// assignment and the map a single insert/remove, so a panicking
    /// holder can't leave either half-updated — and an abandoned
    /// leader must never make the table unusable for the retrying
    /// followers it just woke.
    pub fn len(&self) -> usize {
        plock(&self.slots).len()
    }

    /// Whether no job is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Joins the in-flight job for `key`, or starts one: the first
    /// caller per key gets [`Begin::Leader`], concurrent callers get
    /// [`Begin::Follower`].
    pub fn begin(&self, key: u64) -> Begin<'_, T> {
        let mut slots = plock(&self.slots);
        if let Some(slot) = slots.get(&key) {
            return Begin::Follower(Follower {
                slot: Arc::clone(slot),
            });
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Running),
            cv: Condvar::new(),
        });
        slots.insert(key, Arc::clone(&slot));
        Begin::Leader(LeaderGuard {
            table: self,
            key,
            slot,
            completed: false,
        })
    }
}

impl<T: Clone> LeaderGuard<'_, T> {
    /// Publishes the outcome: the key leaves the in-flight table (new
    /// arrivals start fresh — the cache takes over from here) and
    /// every blocked follower wakes with a clone of `outcome`.
    pub fn complete(mut self, outcome: T) {
        self.finish(SlotState::Done(outcome));
        self.completed = true;
    }
}

impl<T> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            // Leader unwound without an outcome: wake followers to
            // retry rather than leaving them blocked forever.
            self.finish(SlotState::Abandoned);
        }
    }
}

// `finish` is the body shared between `complete` and `Drop`; it
// lives on the unbounded impl so Drop can call it by reference.
impl<T> LeaderGuard<'_, T> {
    fn finish(&self, state: SlotState<T>) {
        plock(&self.table.slots).remove(&self.key);
        *plock(&self.slot.state) = state;
        self.slot.cv.notify_all();
    }
}

impl<T: Clone> Follower<T> {
    /// Blocks until the leader publishes. `Some(outcome)` on
    /// completion; `None` when the leader was abandoned — call
    /// [`InflightTable::begin`] again (the caller may now lead).
    pub fn wait(self) -> Option<T> {
        let mut state = plock(&self.slot.state);
        loop {
            match &*state {
                SlotState::Running => {
                    state = self
                        .slot
                        .cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                SlotState::Done(outcome) => return Some(outcome.clone()),
                SlotState::Abandoned => return None,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn second_arrival_is_a_follower_and_gets_the_leaders_outcome() {
        let table: InflightTable<u32> = InflightTable::new();
        let Begin::Leader(leader) = table.begin(7) else {
            panic!("first arrival must lead");
        };
        let Begin::Follower(follower) = table.begin(7) else {
            panic!("second arrival must follow");
        };
        assert_eq!(table.len(), 1);
        let waiter = std::thread::spawn(move || follower.wait());
        leader.complete(42);
        assert_eq!(waiter.join().expect("follower thread"), Some(42));
        assert!(table.is_empty(), "completion removes the key");
        // The next arrival for the same key leads again.
        assert!(matches!(table.begin(7), Begin::Leader(_)));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table: InflightTable<u32> = InflightTable::new();
        let _a = match table.begin(1) {
            Begin::Leader(l) => l,
            Begin::Follower(_) => panic!("fresh key must lead"),
        };
        assert!(matches!(table.begin(2), Begin::Leader(_)));
    }

    #[test]
    fn abandoned_leader_wakes_followers_to_retry() {
        let table: InflightTable<u32> = InflightTable::new();
        let leader = match table.begin(9) {
            Begin::Leader(l) => l,
            Begin::Follower(_) => panic!("must lead"),
        };
        let Begin::Follower(follower) = table.begin(9) else {
            panic!("must follow");
        };
        drop(leader); // unwind path: no outcome published
        assert_eq!(follower.wait(), None, "abandonment yields no outcome");
        // The key is free: the retrying follower becomes the leader.
        assert!(matches!(table.begin(9), Begin::Leader(_)));
    }

    #[test]
    fn followers_of_a_panicked_leader_retry_and_execute_exactly_once() {
        // The full recovery path: a leader thread panics while holding
        // its guard, both followers wake, and — exactly as the
        // scheduler composes this table with its result cache — the
        // retry executes the job once, with the second retrier served
        // by the cache or by following the new leader.
        let table: InflightTable<u32> = InflightTable::new();
        let executions = AtomicUsize::new(0);
        let cache: Mutex<Option<u32>> = Mutex::new(None);

        let run = || loop {
            if let Some(v) = *cache.lock().expect("test cache") {
                return v;
            }
            match table.begin(5) {
                Begin::Leader(leader) => {
                    let n = executions.fetch_add(1, Ordering::SeqCst);
                    let v = 40 + n as u32;
                    *cache.lock().expect("test cache") = Some(v);
                    leader.complete(v);
                    return v;
                }
                Begin::Follower(f) => {
                    if let Some(v) = f.wait() {
                        return v;
                    }
                }
            }
        };

        std::thread::scope(|s| {
            let Begin::Leader(doomed) = table.begin(5) else {
                panic!("first arrival must lead");
            };
            let Begin::Follower(f1) = table.begin(5) else {
                panic!("must follow");
            };
            let Begin::Follower(f2) = table.begin(5) else {
                panic!("must follow");
            };
            let w1 = s.spawn(|| {
                f1.wait();
                run()
            });
            let w2 = s.spawn(|| {
                f2.wait();
                run()
            });
            let crash = s.spawn(move || {
                let _guard = doomed;
                panic!("leader dies before completing");
            });
            assert!(crash.join().is_err(), "the leader thread panicked");
            let (a, b) = (w1.join().expect("w1"), w2.join().expect("w2"));
            assert_eq!((a, b), (40, 40), "one retry led, the other shared");
        });
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "the surviving job ran exactly once"
        );
        assert!(table.is_empty());
    }

    #[test]
    fn herd_of_threads_runs_the_job_exactly_once() {
        const THREADS: usize = 8;
        let table: InflightTable<usize> = InflightTable::new();
        let executions = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let outcomes: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        loop {
                            match table.begin(1234) {
                                Begin::Leader(leader) => {
                                    let n = executions.fetch_add(1, Ordering::SeqCst);
                                    // Let followers pile up before
                                    // publishing.
                                    std::thread::sleep(std::time::Duration::from_millis(30));
                                    leader.complete(n * 10 + 5);
                                    return n * 10 + 5;
                                }
                                Begin::Follower(f) => {
                                    if let Some(v) = f.wait() {
                                        return v;
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("herd thread"))
                .collect()
        });
        // Everyone observed the same value. (The execution count is
        // timing-dependent in principle, but every thread entered
        // `begin` before the first leader completed or was created
        // after a completed one — either way outcomes agree.)
        assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "{outcomes:?}");
        assert!(executions.load(Ordering::SeqCst) >= 1);
        assert!(table.is_empty());
    }
}
