//! # qods-service — the job-service layer
//!
//! PRs 1–3 made the engines fast; this crate makes them *servable*.
//! Instead of "construct a `StudyContext`, run everything once", a
//! caller submits typed [`request::RunRequest`]s — which experiments,
//! under which sparse [`request::Overrides`] — to a
//! [`scheduler::Scheduler`] that:
//!
//! * resolves the overrides to a canonical configuration with a
//!   stable content hash ([`request::config_hash`]);
//! * checks contexts and finished outputs out of a content-addressed
//!   [`cache::ContextPool`], so repeated work (same hash) is served
//!   without re-lowering, re-characterizing, or re-simulating
//!   anything;
//! * fans cache misses out over the workspace's one shared worker
//!   pool ([`pool`] — re-exported `qods_pool`), streaming per-job
//!   [`scheduler::JobEvent`]s as experiments finish.
//!
//! Concurrent submissions of the same job coalesce onto one
//! execution ([`coalesce::InflightTable`], wired up as
//! [`scheduler::Scheduler::run_coalesced`]), and
//! [`stats::LatencyHistogram`] is the allocation-free latency
//! accounting servers and load generators share. The `qods-net`
//! crate wraps this scheduler in the NDJSON wire protocol (stdio and
//! multi-client TCP via its `qods-serve` binary), and `repro --load`
//! is a load generator that drives batches of randomized requests
//! through it to measure throughput and cache-hit rate. See
//! `DESIGN.md` §6–7 for the architecture.
//!
//! ## Quickstart
//!
//! ```
//! use qods_service::prelude::*;
//!
//! let scheduler = Scheduler::with_options(StudyConfig::smoke(), 2, true);
//! let request = RunRequest::of(["table9", "fig7"]).with_overrides(Overrides {
//!     n_bits: Some(8),
//!     ..Overrides::default()
//! });
//! let first = scheduler.run(&request).expect("valid request");
//! let again = scheduler.run(&request).expect("valid request");
//! assert_eq!(again.output_hits, 2); // served entirely from cache
//! assert_eq!(first.records[0].output, again.records[0].output);
//! ```

// The serving path must not have un-typed failure modes: new
// `unwrap()`/`expect()` in this crate's hot paths are rejected by the
// CI clippy gate (`-D warnings`). Use typed errors, or
// `unwrap_or_else(PoisonError::into_inner)` for lock poisoning.
// Tests opt back in locally with `#[allow]`.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod coalesce;
pub mod request;
pub mod scheduler;
pub mod stats;

/// The workspace's shared worker pool, re-exported so service callers
/// address one crate: `qods_service::pool` *is* `qods_pool` (the
/// sweep, Monte-Carlo, and registry pools all run on it).
pub use qods_pool as pool;

pub use cache::{CacheStats, ContextPool, PoolEntry};
pub use coalesce::InflightTable;
pub use request::{canonical_config_json, config_hash, hash_hex, Overrides, RunRequest};
pub use scheduler::{JobEvent, JobResult, Scheduler, SchedulerStats, ServiceError};
pub use stats::{LatencyHistogram, LatencySummary};

/// One-stop imports for service callers.
pub mod prelude {
    pub use crate::cache::{CacheStats, ContextPool, PoolEntry};
    pub use crate::request::{config_hash, hash_hex, Overrides, RunRequest};
    pub use crate::scheduler::{JobEvent, JobResult, Scheduler, SchedulerStats, ServiceError};
    pub use crate::stats::{LatencyHistogram, LatencySummary};
    pub use qods_core::study::{ArchChoice, StudyConfig};
}
