//! Named, serializable output types for every experiment.
//!
//! These replace the anonymous tuples the first draft of the study
//! used (`(f64, u32, f64)` factory summaries, `(f64, f64)` area/share
//! pairs, `Vec<(u8, f64)>` cascades, …): every field the paper reports
//! now has a name in the JSON output, and every type round-trips
//! through serde so downstream tooling can reload archived results.

use serde::{Deserialize, Serialize};

/// Maps a label to a filesystem-safe file stem (non-alphanumeric
/// characters become `_`). The single sanitization rule for every
/// CSV/figure file the workspace writes.
pub fn csv_safe_stem(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// One point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Abscissa (units depend on the figure: µs, macroblocks, …).
    pub x: f64,
    /// Ordinate.
    pub y: f64,
}

/// A labelled curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (benchmark or architecture name).
    pub label: String,
    /// The curve's points, in sweep order.
    pub points: Vec<Point>,
}

impl Series {
    /// Builds a series from raw `(x, y)` pairs.
    pub fn from_pairs(
        label: impl Into<String>,
        pairs: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        Series {
            label: label.into(),
            points: pairs.into_iter().map(|(x, y)| Point { x, y }).collect(),
        }
    }
}

/// Tables 1 and 4: the physical operation latencies (µs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyOut {
    /// One-qubit gate.
    pub t_1q: f64,
    /// Two-qubit gate.
    pub t_2q: f64,
    /// Measurement.
    pub t_meas: f64,
    /// Physical zero preparation.
    pub t_prep: f64,
    /// One-cell ballistic move.
    pub t_move: f64,
    /// A turn at an intersection.
    pub t_turn: f64,
}

/// One Fig 4 row: Monte-Carlo quality of a preparation circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Strategy label.
    pub strategy: String,
    /// Measured uncorrectable-residual rate.
    pub uncorrectable_rate: f64,
    /// Measured any-residual rate.
    pub dirty_rate: f64,
    /// Measured verification discard rate.
    pub discard_rate: f64,
    /// The paper's reported number.
    pub paper_rate: f64,
}

/// Fig 4: the full Monte-Carlo panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Out {
    /// One row per preparation strategy.
    pub rows: Vec<Fig4Row>,
}

/// Shares of a benchmark's total latency (fractions summing to ~1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyShares {
    /// Useful data operations.
    pub data_op: f64,
    /// QEC interaction.
    pub qec_interact: f64,
    /// Ancilla preparation.
    pub ancilla_prep: f64,
}

/// One Table 2 row: where a benchmark's time goes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Useful data-op latency (µs).
    pub data_op_us: f64,
    /// QEC interaction latency (µs).
    pub qec_interact_us: f64,
    /// Ancilla preparation latency (µs).
    pub ancilla_prep_us: f64,
    /// Shares of the total.
    pub shares: LatencyShares,
}

/// Table 2: the latency breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Out {
    /// One row per benchmark.
    pub rows: Vec<Table2Row>,
}

/// One Table 3 row: ancilla bandwidth a benchmark demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Encoded zeros per ms for QEC.
    pub zero_per_ms: f64,
    /// Encoded pi/8 ancillae per ms.
    pub pi8_per_ms: f64,
}

/// Table 3: required ancilla bandwidths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Out {
    /// One row per benchmark.
    pub rows: Vec<Table3Row>,
}

/// One §3.3 row: how much of a benchmark is non-transversal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonTransversalRow {
    /// Benchmark name.
    pub name: String,
    /// Fraction of gates needing prepared ancillae.
    pub fraction: f64,
}

/// §3.3: non-transversal gate fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonTransversalOut {
    /// One row per benchmark.
    pub rows: Vec<NonTransversalRow>,
}

/// Fig 11 / §4.3: the simple (non-pipelined) ancilla factory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleFactoryOut {
    /// End-to-end preparation latency (µs).
    pub latency_us: f64,
    /// Factory area (macroblocks).
    pub area: u32,
    /// Delivered ancillae per ms.
    pub throughput_per_ms: f64,
}

/// One functional-unit allocation row (Tables 6 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitCount {
    /// Unit name.
    pub unit: String,
    /// How many instances the bandwidth-matched design allocates.
    pub count: u32,
}

/// A bandwidth-matched pipelined factory (Tables 5–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinedFactoryOut {
    /// Area of the functional units (macroblocks).
    pub functional_area: u32,
    /// Area of the interconnect crossbars (macroblocks).
    pub crossbar_area: u32,
    /// Total factory area (macroblocks).
    pub total_area: u32,
    /// Delivered ancillae per ms.
    pub throughput_per_ms: f64,
    /// Per-stage unit allocation (Table 6 / Table 8).
    pub unit_counts: Vec<UnitCount>,
}

/// Tables 5–8 and Fig 11 in one place (the `factories` field of the
/// full reproduction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorySummary {
    /// The simple factory (Fig 11).
    pub simple: SimpleFactoryOut,
    /// The pipelined encoded-zero factory (Tables 5–6).
    pub zero: PipelinedFactoryOut,
    /// The pi/8 factory (Tables 7–8).
    pub pi8: PipelinedFactoryOut,
}

/// An area with its share of the chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaShare {
    /// Area in macroblocks.
    pub area: f64,
    /// Fraction of the total chip area.
    pub share: f64,
}

/// One Table 9 row: the chip's area budget at the speed of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table9Entry {
    /// Benchmark name.
    pub name: String,
    /// Encoded-zero bandwidth the chip must sustain (per ms).
    pub zero_bandwidth: f64,
    /// Data region.
    pub data: AreaShare,
    /// Encoded-zero (QEC) factories.
    pub qec: AreaShare,
    /// pi/8 ancilla chain.
    pub pi8: AreaShare,
}

/// Table 9: area breakdown at the speed of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table9Out {
    /// One row per benchmark.
    pub rows: Vec<Table9Entry>,
}

/// A figure made of one series per benchmark (Figs 7 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesOut {
    /// One series per benchmark.
    pub series: Vec<Series>,
}

/// Fig 15, one panel: execution time vs factory area for one benchmark
/// across the four architectures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Panel {
    /// Benchmark name.
    pub name: String,
    /// One curve per architecture.
    pub curves: Vec<Series>,
    /// Maximum equal-area speedup over the best dedicated-generator
    /// proposal.
    pub max_speedup: f64,
    /// QLA knee-area penalty relative to Fully-Multiplexed.
    pub qla_area_penalty: f64,
    /// CQLA plateau / FM plateau.
    pub cqla_plateau_ratio: f64,
}

/// Fig 15: the architecture comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Out {
    /// One panel per benchmark.
    pub panels: Vec<Fig15Panel>,
}

/// One Fig 6 / §4.4.2 row: cascade cost at precision `k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeRow {
    /// Rotation precision (π/2^k).
    pub k: u8,
    /// Expected CX count on the critical path.
    pub expected_cx: f64,
    /// Factories needed to keep the cascade fed.
    pub factories: u32,
}

/// Fig 6: cascade expected CX counts by precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeOut {
    /// One row per precision.
    pub rows: Vec<CascadeRow>,
}

/// One point of the kernel width sweep: a family characterized at one
/// operand width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WidthPoint {
    /// Operand width (bits).
    pub width: usize,
    /// Encoded qubits (data + data ancillae).
    pub n_qubits: usize,
    /// Lowered physical gate count.
    pub gates: usize,
    /// Fraction of non-transversal gates.
    pub non_transversal_fraction: f64,
    /// Speed-of-data execution time (µs): the makespan of the
    /// data-dependency-limited schedule.
    pub speed_of_data_us: f64,
    /// Required encoded-zero bandwidth (per ms).
    pub zero_per_ms: f64,
    /// Required pi/8-ancilla bandwidth (per ms).
    pub pi8_per_ms: f64,
}

/// One kernel family's scaling curve across widths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthCurve {
    /// Family id (`qrca`, `qcla`, `qft`, `draper`, `ctrladd`).
    pub family: String,
    /// One point per swept width, ascending.
    pub points: Vec<WidthPoint>,
}

/// The kernel width sweep (`widthsweep`): every kernel family
/// characterized across the configured operand widths — the paper's
/// fixed 32-bit points generalized to scaling curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthSweepOut {
    /// The widths actually swept (invalid configured widths are
    /// dropped).
    pub widths: Vec<usize>,
    /// One curve per kernel family.
    pub curves: Vec<WidthCurve>,
}

impl WidthSweepOut {
    fn series_of(&self, f: impl Fn(&WidthPoint) -> f64) -> Vec<Series> {
        self.curves
            .iter()
            .map(|c| {
                Series::from_pairs(
                    c.family.clone(),
                    c.points.iter().map(|p| (p.width as f64, f(p))),
                )
            })
            .collect()
    }

    /// Speed-of-data runtime vs width, one series per family.
    pub fn speed_of_data_series(&self) -> Vec<Series> {
        self.series_of(|p| p.speed_of_data_us)
    }

    /// Required encoded-zero bandwidth vs width, one series per family.
    pub fn zero_bandwidth_series(&self) -> Vec<Series> {
        self.series_of(|p| p.zero_per_ms)
    }
}
