//! The full-paper study: configuration plus a compatibility wrapper
//! that regenerates every table and figure in one call.
//!
//! [`Study`] is now a thin veneer over the experiment registry: it
//! builds a [`StudyContext`](crate::experiment::StudyContext), runs
//! [`Registry::run_all`](crate::registry::Registry::run_all) (parallel,
//! benchmarks lowered once), and reassembles the records into the
//! [`PaperReproduction`] struct existing consumers expect. New code
//! should address experiments individually through the registry.

use crate::experiment::{ExperimentOutput, ExperimentRecord, StudyContext};
use crate::output::{
    CascadeRow, FactorySummary, Fig15Panel, Fig4Row, NonTransversalRow, Series, Table2Row,
    Table3Row, Table9Entry,
};
use crate::registry::Registry;
use qods_arch::machine::Arch;
use qods_circuit::circuit::Circuit;
use qods_phys::latency::LatencyTable;
use serde::{Deserialize, Serialize};

/// The Fig 15 factory-area sweep range (macroblocks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRange {
    /// Smallest area swept.
    pub min_area: f64,
    /// Largest area swept.
    pub max_area: f64,
}

/// A serializable architecture selection for the Fig 15 panel: each
/// choice names one microarchitecture at its default configuration
/// (the data-carrying parameters — CQLA cache slots, Qalypso tile
/// size — are derived from the benchmark width, as the paper does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchChoice {
    /// Fully-multiplexed ancilla delivery (the paper's proposal).
    FullyMultiplexed,
    /// QLA: dedicated per-qubit generation.
    Qla,
    /// CQLA at the default cache sizing for the benchmark width.
    Cqla,
    /// Tiled Qalypso at the default tile size.
    Qalypso,
}

impl ArchChoice {
    /// The concrete [`Arch`] for an `n_qubits`-wide benchmark.
    pub fn to_arch(self, n_qubits: usize) -> Arch {
        match self {
            ArchChoice::FullyMultiplexed => Arch::FullyMultiplexed,
            ArchChoice::Qla => Arch::Qla,
            ArchChoice::Cqla => Arch::default_cqla(n_qubits),
            ArchChoice::Qalypso => Arch::default_qalypso(),
        }
    }

    /// The Fig 15 default panel: all four architectures in the
    /// paper's presentation order.
    pub fn paper_panel() -> Vec<ArchChoice> {
        vec![
            ArchChoice::FullyMultiplexed,
            ArchChoice::Qla,
            ArchChoice::Cqla,
            ArchChoice::Qalypso,
        ]
    }
}

/// Knobs for the study. Defaults run the paper's full configuration at
/// a Monte-Carlo size suitable for minutes-scale runs; tests shrink
/// `n_bits` and `mc_trials`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Benchmark operand width (paper: 32).
    pub n_bits: usize,
    /// Monte-Carlo trials per preparation circuit (Fig 4).
    pub mc_trials: u64,
    /// Monte-Carlo noise scale (1.0 = the paper's error rates).
    pub noise_scale: f64,
    /// Threads for Monte-Carlo runs.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Synthesis budget: maximum T-count for pi/2^k sequences.
    pub synth_max_t: u32,
    /// Synthesis early-stop distance.
    pub synth_target: f64,
    /// Fig 15 sweep: number of area points.
    pub sweep_points: usize,
    /// Fig 15 sweep range (macroblocks).
    pub sweep_area_range: SweepRange,
    /// Fig 7/8 sample counts.
    pub profile_samples: usize,
    /// Fig 15 architecture panel (paper: all four, FM first).
    pub arch_panel: Vec<ArchChoice>,
    /// Operand widths the `widthsweep` experiment characterizes every
    /// kernel family at (the paper's point is 32; the default ladder
    /// extends past it).
    pub width_sweep: Vec<usize>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            n_bits: 32,
            mc_trials: 200_000,
            noise_scale: 1.0,
            threads: 8,
            seed: 20080621, // ISCA '08
            synth_max_t: 12,
            synth_target: 1e-2,
            sweep_points: 13,
            sweep_area_range: SweepRange {
                min_area: 200.0,
                max_area: 3e6,
            },
            profile_samples: 256,
            arch_panel: ArchChoice::paper_panel(),
            width_sweep: vec![4, 8, 16, 32, 48],
        }
    }
}

impl StudyConfig {
    /// A configuration small enough for CI tests (seconds).
    pub fn smoke() -> Self {
        StudyConfig {
            n_bits: 8,
            mc_trials: 4_000,
            noise_scale: 10.0,
            threads: 2,
            synth_max_t: 8,
            sweep_points: 7,
            profile_samples: 64,
            width_sweep: vec![4, 8, 12],
            ..StudyConfig::default()
        }
    }
}

/// Everything the paper reports, in one struct (the compatibility
/// shape assembled from the individual experiment outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperReproduction {
    /// The configuration that produced this run.
    pub config: StudyConfig,
    /// Fig 4 rows.
    pub fig4: Vec<Fig4Row>,
    /// Table 2 rows.
    pub table2: Vec<Table2Row>,
    /// Table 3 rows.
    pub table3: Vec<Table3Row>,
    /// Non-transversal gate fractions (§3.3).
    pub non_transversal: Vec<NonTransversalRow>,
    /// Tables 5-8 and Fig 11 summary.
    pub factories: FactorySummary,
    /// Table 9 rows.
    pub table9: Vec<Table9Entry>,
    /// Fig 7 series (one per benchmark).
    pub fig7: Vec<Series>,
    /// Fig 8 series (one per benchmark).
    pub fig8: Vec<Series>,
    /// Fig 15 panels (one per benchmark).
    pub fig15: Vec<Fig15Panel>,
    /// Fig 6 / §4.4.2 cascade rows.
    pub cascade: Vec<CascadeRow>,
}

impl PaperReproduction {
    /// Assembles the compatibility struct from registry records.
    ///
    /// # Panics
    ///
    /// Panics when a paper artifact is missing from `records` — the
    /// full [`Registry::paper`] run always produces all of them.
    pub fn from_records(config: StudyConfig, records: &[ExperimentRecord]) -> Self {
        let mut fig4 = None;
        let mut table2 = None;
        let mut table3 = None;
        let mut non_transversal = None;
        let mut simple = None;
        let mut zero = None;
        let mut pi8 = None;
        let mut table9 = None;
        let mut fig7 = None;
        let mut fig8 = None;
        let mut fig15 = None;
        let mut cascade = None;
        for r in records {
            match &r.output {
                // Not part of the paper-shaped compat struct: Tables
                // 1/4 render from constants, the width sweep is an
                // extension artifact.
                ExperimentOutput::Latency(_) | ExperimentOutput::WidthSweep(_) => {}
                ExperimentOutput::Fig4(o) => fig4 = Some(o.rows.clone()),
                ExperimentOutput::Table2(o) => table2 = Some(o.rows.clone()),
                ExperimentOutput::Table3(o) => table3 = Some(o.rows.clone()),
                ExperimentOutput::NonTransversal(o) => non_transversal = Some(o.rows.clone()),
                ExperimentOutput::SimpleFactory(o) => simple = Some(*o),
                ExperimentOutput::ZeroFactory(o) => zero = Some(o.clone()),
                ExperimentOutput::Pi8Factory(o) => pi8 = Some(o.clone()),
                ExperimentOutput::Table9(o) => table9 = Some(o.rows.clone()),
                ExperimentOutput::Fig7(o) => fig7 = Some(o.series.clone()),
                ExperimentOutput::Fig8(o) => fig8 = Some(o.series.clone()),
                ExperimentOutput::Fig15(o) => fig15 = Some(o.panels.clone()),
                ExperimentOutput::Cascade(o) => cascade = Some(o.rows.clone()),
            }
        }
        PaperReproduction {
            config,
            fig4: fig4.expect("fig4 record"),
            table2: table2.expect("table2 record"),
            table3: table3.expect("table3 record"),
            non_transversal: non_transversal.expect("sec33 record"),
            factories: FactorySummary {
                simple: simple.expect("fig11 record"),
                zero: zero.expect("table5 record"),
                pi8: pi8.expect("table7 record"),
            },
            table9: table9.expect("table9 record"),
            fig7: fig7.expect("fig7 record"),
            fig8: fig8.expect("fig8 record"),
            fig15: fig15.expect("fig15 record"),
            cascade: cascade.expect("fig6 record"),
        }
    }
}

/// The study driver (compatibility wrapper over the registry).
#[derive(Debug, Clone, Default)]
pub struct Study {
    /// Configuration.
    pub config: StudyConfig,
}

impl Study {
    /// A study with the given configuration.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// A fresh shared context for this study's configuration.
    pub fn context(&self) -> StudyContext {
        StudyContext::new(self.config.clone())
    }

    /// Builds the three lowered benchmark circuits.
    pub fn benchmarks(&self) -> Vec<Circuit> {
        self.context().benchmarks().to_vec()
    }

    /// Runs every experiment (in parallel, benchmarks lowered once) and
    /// reassembles the paper-shaped result.
    pub fn run_all(&self) -> PaperReproduction {
        let ctx = self.context();
        let records = Registry::paper().run_all(&ctx);
        PaperReproduction::from_records(self.config.clone(), &records)
    }

    /// The ion-trap latency model in use (Tables 1 and 4).
    pub fn latency_table(&self) -> LatencyTable {
        LatencyTable::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs_end_to_end() {
        let study = Study::new(StudyConfig::smoke());
        let out = study.run_all();
        assert_eq!(out.fig4.len(), 4);
        assert_eq!(out.table2.len(), 3);
        assert_eq!(out.table3.len(), 3);
        assert_eq!(out.table9.len(), 3);
        assert_eq!(out.fig15.len(), 3);
        assert_eq!(out.factories.zero.total_area, 298);
        assert_eq!(out.factories.pi8.total_area, 403);
        // Serializes cleanly.
        let json = serde_json::to_string(&out).expect("serialize");
        assert!(json.contains("QRCA"));
    }

    #[test]
    fn benchmarks_have_expected_qubit_counts() {
        let study = Study::new(StudyConfig {
            n_bits: 32,
            ..StudyConfig::smoke()
        });
        let b = study.benchmarks();
        assert_eq!(b[0].n_qubits(), 97);
        assert_eq!(b[1].n_qubits(), 123);
        assert_eq!(b[2].n_qubits(), 32);
    }

    #[test]
    fn reproduction_round_trips_through_serde() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let json = serde_json::to_string(&out).expect("serialize");
        let back: PaperReproduction = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, out);
    }
}
