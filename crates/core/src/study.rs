//! The full-paper reproduction study: one call regenerates every table
//! and figure as serializable data.

use qods_arch::machine::Arch;
use qods_arch::sweep::{area_sweep, log_areas, speedup_summary};
use qods_arch::table9::table9_row;
use qods_circuit::characterize::{characterize, demand_profile};
use qods_circuit::circuit::Circuit;
use qods_circuit::latency_model::CharacterizationModel;
use qods_circuit::throughput::throughput_sweep;
use qods_factory::pi8::Pi8Factory;
use qods_factory::simple::SimpleFactory;
use qods_factory::zero::ZeroFactory;
use qods_kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
use qods_phys::error_model::ErrorModel;
use qods_phys::latency::LatencyTable;
use qods_steane::eval::evaluate_all;
use qods_synth::cascade::analyze_cascade;
use serde::Serialize;

/// Knobs for the study. Defaults run the paper's full configuration at
/// a Monte-Carlo size suitable for minutes-scale runs; tests shrink
/// `n_bits` and `mc_trials`.
#[derive(Debug, Clone, Serialize)]
pub struct StudyConfig {
    /// Benchmark operand width (paper: 32).
    pub n_bits: usize,
    /// Monte-Carlo trials per preparation circuit (Fig 4).
    pub mc_trials: u64,
    /// Monte-Carlo noise scale (1.0 = the paper's error rates).
    pub noise_scale: f64,
    /// Threads for Monte-Carlo runs.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Synthesis budget: maximum T-count for pi/2^k sequences.
    pub synth_max_t: u32,
    /// Synthesis early-stop distance.
    pub synth_target: f64,
    /// Fig 15 sweep: number of area points.
    pub sweep_points: usize,
    /// Fig 15 sweep range (macroblocks).
    pub sweep_area_range: (f64, f64),
    /// Fig 7/8 sample counts.
    pub profile_samples: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            n_bits: 32,
            mc_trials: 200_000,
            noise_scale: 1.0,
            threads: 8,
            seed: 20080621, // ISCA '08
            synth_max_t: 12,
            synth_target: 1e-2,
            sweep_points: 13,
            sweep_area_range: (200.0, 3e6),
            profile_samples: 256,
        }
    }
}

impl StudyConfig {
    /// A configuration small enough for CI tests (seconds).
    pub fn smoke() -> Self {
        StudyConfig {
            n_bits: 8,
            mc_trials: 4_000,
            noise_scale: 10.0,
            threads: 2,
            synth_max_t: 8,
            sweep_points: 7,
            profile_samples: 64,
            ..StudyConfig::default()
        }
    }
}

/// Fig 4 result row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Strategy label.
    pub strategy: String,
    /// Measured uncorrectable-residual rate.
    pub uncorrectable_rate: f64,
    /// Measured any-residual rate.
    pub dirty_rate: f64,
    /// Measured verification discard rate.
    pub discard_rate: f64,
    /// The paper's reported number.
    pub paper_rate: f64,
}

/// Table 2 result row.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Useful data-op latency (us) and share of total.
    pub data_op_us: f64,
    /// QEC interaction latency (us).
    pub qec_interact_us: f64,
    /// Ancilla preparation latency (us).
    pub ancilla_prep_us: f64,
    /// Shares of the total (fractions).
    pub shares: (f64, f64, f64),
}

/// Table 3 result row.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Encoded zeros per ms for QEC.
    pub zero_per_ms: f64,
    /// Encoded pi/8 ancillae per ms.
    pub pi8_per_ms: f64,
}

/// Factory summary (Tables 5-8, Fig 11).
#[derive(Debug, Clone, Serialize)]
pub struct FactorySummary {
    /// Simple factory: latency (us), area, throughput/ms (Fig 11).
    pub simple: (f64, u32, f64),
    /// Zero factory: functional area, crossbar area, total, throughput.
    pub zero: (u32, u32, u32, f64),
    /// pi/8 factory: functional area, crossbar area, total, throughput.
    pub pi8: (u32, u32, u32, f64),
    /// Zero factory unit counts (Table 6).
    pub zero_counts: Vec<(String, u32)>,
    /// pi/8 factory unit counts (Table 8).
    pub pi8_counts: Vec<(String, u32)>,
}

/// Table 9 serializable row.
#[derive(Debug, Clone, Serialize)]
pub struct Table9Out {
    /// Benchmark name.
    pub name: String,
    /// Encoded-zero bandwidth (per ms).
    pub zero_bandwidth: f64,
    /// Data area and share.
    pub data: (f64, f64),
    /// QEC factory area and share.
    pub qec: (f64, f64),
    /// pi/8 chain area and share.
    pub pi8: (f64, f64),
}

/// A figure series of (x, y) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label.
    pub label: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

/// Fig 15 panel: one benchmark, one curve per architecture.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Panel {
    /// Benchmark name.
    pub name: String,
    /// One curve per architecture.
    pub curves: Vec<Series>,
    /// Headline numbers for this panel.
    pub max_speedup: f64,
    /// QLA knee-area penalty relative to Fully-Multiplexed.
    pub qla_area_penalty: f64,
    /// CQLA plateau / FM plateau.
    pub cqla_plateau_ratio: f64,
}

/// Everything the paper reports, in one struct.
#[derive(Debug, Clone, Serialize)]
pub struct PaperReproduction {
    /// The configuration that produced this run.
    pub config: StudyConfig,
    /// Fig 4 rows.
    pub fig4: Vec<Fig4Row>,
    /// Table 2 rows.
    pub table2: Vec<Table2Row>,
    /// Table 3 rows.
    pub table3: Vec<Table3Row>,
    /// Non-transversal gate fractions (§3.3).
    pub non_transversal: Vec<(String, f64)>,
    /// Tables 5-8 and Fig 11 summary.
    pub factories: FactorySummary,
    /// Table 9 rows.
    pub table9: Vec<Table9Out>,
    /// Fig 7 series (one per benchmark).
    pub fig7: Vec<Series>,
    /// Fig 8 series (one per benchmark).
    pub fig8: Vec<Series>,
    /// Fig 15 panels (one per benchmark).
    pub fig15: Vec<Fig15Panel>,
    /// Fig 6 / §4.4.2 cascade expected CX counts by k.
    pub cascade: Vec<(u8, f64)>,
}

/// The study driver.
#[derive(Debug, Clone, Default)]
pub struct Study {
    /// Configuration.
    pub config: StudyConfig,
}

impl Study {
    /// A study with the paper's configuration.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Builds the three lowered benchmark circuits.
    pub fn benchmarks(&self) -> Vec<Circuit> {
        let synth = SynthAdapter::with_budget(self.config.synth_max_t, self.config.synth_target);
        vec![
            qrca_lowered(self.config.n_bits),
            qcla_lowered(self.config.n_bits),
            qft_lowered(self.config.n_bits, &synth),
        ]
    }

    /// Runs the Fig 4 Monte-Carlo panel.
    pub fn run_fig4(&self) -> Vec<Fig4Row> {
        let model = ErrorModel::paper().scaled(self.config.noise_scale);
        evaluate_all(model, self.config.mc_trials, self.config.seed, self.config.threads)
            .into_iter()
            .map(|e| Fig4Row {
                strategy: e.strategy.name().to_string(),
                uncorrectable_rate: e.error_rate(),
                dirty_rate: e.dirty_rate(),
                discard_rate: e.discard_rate(),
                paper_rate: e.strategy.paper_error_rate(),
            })
            .collect()
    }

    /// Runs Tables 2-3 and the §3.3 fractions.
    pub fn run_characterization(
        &self,
        benchmarks: &[Circuit],
    ) -> (Vec<Table2Row>, Vec<Table3Row>, Vec<(String, f64)>) {
        let mut t2 = Vec::new();
        let mut t3 = Vec::new();
        let mut nt = Vec::new();
        for c in benchmarks {
            let r = characterize(c);
            t2.push(Table2Row {
                name: r.name.clone(),
                data_op_us: r.breakdown.data_op_us,
                qec_interact_us: r.breakdown.qec_interact_us,
                ancilla_prep_us: r.breakdown.ancilla_prep_us,
                shares: (
                    r.breakdown.data_op_share(),
                    r.breakdown.qec_interact_share(),
                    r.breakdown.ancilla_prep_share(),
                ),
            });
            t3.push(Table3Row {
                name: r.name.clone(),
                zero_per_ms: r.bandwidth.zero_per_ms,
                pi8_per_ms: r.bandwidth.pi8_per_ms,
            });
            nt.push((r.name.clone(), r.non_transversal_fraction));
        }
        (t2, t3, nt)
    }

    /// Computes the factory summary (Tables 5-8, Fig 11).
    pub fn run_factories(&self) -> FactorySummary {
        let simple = SimpleFactory::paper();
        let zero = ZeroFactory::paper().bandwidth_matched();
        let pi8 = Pi8Factory::paper().bandwidth_matched();
        FactorySummary {
            simple: (
                simple.prep_latency_us(),
                simple.area(),
                simple.throughput_per_ms(),
            ),
            zero: (
                zero.functional_area(),
                zero.crossbar_area(),
                zero.total_area(),
                zero.throughput_per_ms,
            ),
            pi8: (
                pi8.functional_area(),
                pi8.crossbar_area(),
                pi8.total_area(),
                pi8.throughput_per_ms,
            ),
            zero_counts: zero
                .stages
                .iter()
                .map(|s| (s.unit.name.to_string(), s.count))
                .collect(),
            pi8_counts: pi8
                .stages
                .iter()
                .map(|s| (s.unit.name.to_string(), s.count))
                .collect(),
        }
    }

    /// Runs Table 9 from measured bandwidths.
    pub fn run_table9(&self, benchmarks: &[Circuit]) -> Vec<Table9Out> {
        benchmarks
            .iter()
            .map(|c| {
                let row = table9_row(&characterize(c));
                Table9Out {
                    name: row.name.clone(),
                    zero_bandwidth: row.zero_bandwidth,
                    data: (row.data_area, row.data_share()),
                    qec: (row.qec_factory_area, row.qec_share()),
                    pi8: (row.pi8_factory_area, row.pi8_share()),
                }
            })
            .collect()
    }

    /// Runs the Fig 7 demand profiles.
    pub fn run_fig7(&self, benchmarks: &[Circuit]) -> Vec<Series> {
        let model = CharacterizationModel::ion_trap();
        benchmarks
            .iter()
            .map(|c| Series {
                label: c.name.clone(),
                points: demand_profile(c, &model, self.config.profile_samples)
                    .into_iter()
                    .map(|p| (p.t_us, p.zeros_in_flight))
                    .collect(),
            })
            .collect()
    }

    /// Runs the Fig 8 throughput sweeps.
    pub fn run_fig8(&self, benchmarks: &[Circuit]) -> Vec<Series> {
        let model = CharacterizationModel::ion_trap();
        benchmarks
            .iter()
            .map(|c| {
                let avg = characterize(c).bandwidth.zero_per_ms.max(1.0);
                Series {
                    label: c.name.clone(),
                    points: throughput_sweep(c, &model, avg / 30.0, avg * 30.0, 25)
                        .into_iter()
                        .map(|p| (p.zeros_per_ms, p.execution_us))
                        .collect(),
                }
            })
            .collect()
    }

    /// Runs the Fig 15 architecture sweeps.
    pub fn run_fig15(&self, benchmarks: &[Circuit]) -> Vec<Fig15Panel> {
        let (lo, hi) = self.config.sweep_area_range;
        let areas = log_areas(lo, hi, self.config.sweep_points);
        benchmarks
            .iter()
            .map(|c| {
                let archs = [
                    Arch::FullyMultiplexed,
                    Arch::Qla,
                    Arch::default_cqla(c.n_qubits()),
                    Arch::default_qalypso(),
                ];
                let curves = area_sweep(c, &archs, &areas);
                let s = speedup_summary(c, &areas);
                Fig15Panel {
                    name: c.name.clone(),
                    curves: curves
                        .into_iter()
                        .map(|cv| Series {
                            label: cv.arch.to_string(),
                            points: cv.points.iter().map(|p| (p.area, p.exec_us)).collect(),
                        })
                        .collect(),
                    max_speedup: s.max_speedup,
                    qla_area_penalty: s.qla_area_penalty,
                    cqla_plateau_ratio: s.cqla_plateau_us / s.fm_plateau_us,
                }
            })
            .collect()
    }

    /// Runs everything.
    pub fn run_all(&self) -> PaperReproduction {
        let benchmarks = self.benchmarks();
        let fig4 = self.run_fig4();
        let (table2, table3, non_transversal) = self.run_characterization(&benchmarks);
        let factories = self.run_factories();
        let table9 = self.run_table9(&benchmarks);
        let fig7 = self.run_fig7(&benchmarks);
        let fig8 = self.run_fig8(&benchmarks);
        let fig15 = self.run_fig15(&benchmarks);
        let cascade = (3..=12u8)
            .map(|k| (k, analyze_cascade(k).expected_cx))
            .collect();
        PaperReproduction {
            config: self.config.clone(),
            fig4,
            table2,
            table3,
            non_transversal,
            factories,
            table9,
            fig7,
            fig8,
            fig15,
            cascade,
        }
    }

    /// The ion-trap latency model in use (Tables 1 and 4).
    pub fn latency_table(&self) -> LatencyTable {
        LatencyTable::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs_end_to_end() {
        let study = Study::new(StudyConfig::smoke());
        let out = study.run_all();
        assert_eq!(out.fig4.len(), 4);
        assert_eq!(out.table2.len(), 3);
        assert_eq!(out.table3.len(), 3);
        assert_eq!(out.table9.len(), 3);
        assert_eq!(out.fig15.len(), 3);
        assert_eq!(out.factories.zero.2, 298);
        assert_eq!(out.factories.pi8.2, 403);
        // Serializes cleanly.
        let json = serde_json::to_string(&out).expect("serialize");
        assert!(json.contains("QRCA"));
    }

    #[test]
    fn benchmarks_have_expected_qubit_counts() {
        let study = Study::new(StudyConfig {
            n_bits: 32,
            ..StudyConfig::smoke()
        });
        let b = study.benchmarks();
        assert_eq!(b[0].n_qubits(), 97);
        assert_eq!(b[1].n_qubits(), 123);
        assert_eq!(b[2].n_qubits(), 32);
    }
}
