//! The experiment abstraction: every table and figure of the paper is
//! an independent, individually-addressable [`Experiment`] running over
//! a shared [`StudyContext`].
//!
//! The context owns the expensive shared substrate — the three lowered
//! benchmark circuits and their characterizations — behind
//! [`std::sync::OnceLock`], so any number of experiments (including all
//! of them at once, on parallel threads) lower the benchmarks exactly
//! once. Concrete experiments live in [`crate::experiments`]; the
//! [`crate::registry::Registry`] lists, resolves, and runs them.

use crate::output::{
    CascadeOut, Fig15Out, Fig4Out, LatencyOut, NonTransversalOut, PipelinedFactoryOut, Series,
    SeriesOut, SimpleFactoryOut, Table2Out, Table3Out, Table9Out,
};
use crate::study::StudyConfig;
use qods_circuit::characterize::{characterize, CircuitReport};
use qods_circuit::circuit::Circuit;
use qods_kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Shared, memoized substrate for a study run.
///
/// Cheap to create; the benchmark circuits are lowered lazily on first
/// use and at most once per context, no matter how many experiments
/// run over it or from how many threads.
#[derive(Debug)]
pub struct StudyContext {
    config: StudyConfig,
    benchmarks: OnceLock<Vec<Circuit>>,
    reports: OnceLock<Vec<CircuitReport>>,
    lowering_runs: AtomicUsize,
}

impl StudyContext {
    /// A context for the given configuration.
    pub fn new(config: StudyConfig) -> Self {
        StudyContext {
            config,
            benchmarks: OnceLock::new(),
            reports: OnceLock::new(),
            lowering_runs: AtomicUsize::new(0),
        }
    }

    /// The configuration this context runs under.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The three lowered benchmark circuits (QRCA, QCLA, QFT), lowered
    /// on first call and memoized for every caller after that.
    pub fn benchmarks(&self) -> &[Circuit] {
        self.benchmarks.get_or_init(|| {
            self.lowering_runs.fetch_add(1, Ordering::Relaxed);
            let synth =
                SynthAdapter::with_budget(self.config.synth_max_t, self.config.synth_target);
            vec![
                qrca_lowered(self.config.n_bits),
                qcla_lowered(self.config.n_bits),
                qft_lowered(self.config.n_bits, &synth),
            ]
        })
    }

    /// Characterization reports for [`Self::benchmarks`], memoized the
    /// same way (Tables 2, 3, 9 and §3.3 all consume these).
    pub fn characterizations(&self) -> &[CircuitReport] {
        self.reports
            .get_or_init(|| self.benchmarks().iter().map(characterize).collect())
    }

    /// How many times benchmark lowering actually ran (0 or 1); lets
    /// tests assert the memoization contract.
    pub fn lowering_runs(&self) -> usize {
        self.lowering_runs.load(Ordering::Relaxed)
    }
}

/// One independently runnable paper artifact.
///
/// Implementations are stateless values: everything expensive lives in
/// the shared [`StudyContext`], which is why a whole registry of
/// experiments can run in parallel over one context.
pub trait Experiment: Send + Sync {
    /// Stable identifier (`"table9"`, `"fig15"`, …) used on the command
    /// line and in result files.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// Alternate identifiers that resolve to this experiment (the paper
    /// sometimes splits one computation across two tables).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the experiment over the shared context.
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput;
}

/// The typed result of one experiment run.
///
/// Externally tagged in JSON (`{"Table9": {...}}`), so archived results
/// are self-describing and round-trip through serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// Tables 1 and 4.
    Latency(LatencyOut),
    /// Fig 4.
    Fig4(Fig4Out),
    /// Table 2.
    Table2(Table2Out),
    /// Table 3.
    Table3(Table3Out),
    /// §3.3.
    NonTransversal(NonTransversalOut),
    /// Fig 11 / §4.3.
    SimpleFactory(SimpleFactoryOut),
    /// Tables 5–6.
    ZeroFactory(PipelinedFactoryOut),
    /// Tables 7–8.
    Pi8Factory(PipelinedFactoryOut),
    /// Table 9.
    Table9(Table9Out),
    /// Fig 7.
    Fig7(SeriesOut),
    /// Fig 8.
    Fig8(SeriesOut),
    /// Fig 15.
    Fig15(Fig15Out),
    /// Fig 6 / §4.4.2.
    Cascade(CascadeOut),
}

impl ExperimentOutput {
    /// The figure series this output exports as CSV, if any, as
    /// `(file stem, series)` pairs. Generic consumers (the `repro`
    /// binary) call this instead of matching on variants.
    pub fn csv_series(&self, id: &str) -> Vec<(String, &[Series])> {
        match self {
            ExperimentOutput::Fig7(s) | ExperimentOutput::Fig8(s) => {
                vec![(id.to_string(), &s.series[..])]
            }
            ExperimentOutput::Fig15(f) => f
                .panels
                .iter()
                .map(|p| {
                    let safe = crate::output::csv_safe_stem(&p.name);
                    (format!("{id}_{safe}"), &p.curves[..])
                })
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// The result of running one registered experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The experiment's primary id.
    pub id: String,
    /// The experiment's title.
    pub title: String,
    /// Wall-clock seconds this experiment took.
    pub seconds: f64,
    /// The typed output.
    pub output: ExperimentOutput,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_lowers_benchmarks_exactly_once() {
        let ctx = StudyContext::new(StudyConfig::smoke());
        assert_eq!(ctx.lowering_runs(), 0);
        let a = ctx.benchmarks().len();
        let b = ctx.benchmarks().len();
        let reports = ctx.characterizations().len();
        assert_eq!((a, b, reports), (3, 3, 3));
        assert_eq!(ctx.lowering_runs(), 1);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = StudyContext::new(StudyConfig::smoke());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| ctx.benchmarks().len());
            }
        });
        assert_eq!(ctx.lowering_runs(), 1);
    }
}
