//! The experiment abstraction: every table and figure of the paper is
//! an independent, individually-addressable [`Experiment`] running over
//! a shared [`StudyContext`].
//!
//! The context owns the expensive shared substrate — the three lowered
//! benchmark circuits and their characterizations — behind
//! [`std::sync::OnceLock`], so any number of experiments (including all
//! of them at once, on parallel threads) materialize the benchmarks
//! exactly once per context. The materialization itself goes through
//! the `qods-compile` staged pipeline: artifacts are content-addressed
//! in a shared two-tier [`qods_compile::ArtifactStore`] (in-process +
//! optional disk), so a second context for the same configuration — or
//! a second *process* over a warm disk store — reuses the compiled
//! circuits instead of lowering again. Concrete experiments live in
//! [`crate::experiments`]; the [`crate::registry::Registry`] lists,
//! resolves, and runs them.

use crate::output::{
    CascadeOut, Fig15Out, Fig4Out, LatencyOut, NonTransversalOut, PipelinedFactoryOut, Series,
    SeriesOut, SimpleFactoryOut, Table2Out, Table3Out, Table9Out, WidthSweepOut,
};
use crate::study::StudyConfig;
use qods_circuit::characterize::CircuitReport;
use qods_circuit::circuit::Circuit;
use qods_compile::{paper_specs, ArtifactStore, Compiler, SynthBudget};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared, memoized substrate for a study run.
///
/// Cheap to create; the benchmark circuits are compiled lazily on
/// first use and at most once per context, no matter how many
/// experiments run over it or from how many threads — and at most
/// once per *store* across contexts, since compilation is memoized in
/// the content-addressed artifact store underneath.
#[derive(Debug)]
pub struct StudyContext {
    config: StudyConfig,
    compiler: Compiler,
    benchmarks: OnceLock<Vec<Circuit>>,
    reports: OnceLock<Vec<CircuitReport>>,
    lowering_runs: AtomicUsize,
}

impl StudyContext {
    /// A context over the process-wide shared artifact store (see
    /// [`ArtifactStore::process`]): contexts for the same
    /// configuration — in this process or, with a disk store
    /// configured, in an earlier one — share compiled artifacts.
    pub fn new(config: StudyConfig) -> Self {
        StudyContext::with_store(config, ArtifactStore::process())
    }

    /// A context compiling into an explicit artifact store (tests and
    /// special-purpose pools use this to control cache scope).
    pub fn with_store(config: StudyConfig, store: Arc<ArtifactStore>) -> Self {
        let synth = SynthBudget {
            max_t: config.synth_max_t,
            target_distance: config.synth_target,
        };
        StudyContext {
            compiler: Compiler::new(store, synth),
            config,
            benchmarks: OnceLock::new(),
            reports: OnceLock::new(),
            lowering_runs: AtomicUsize::new(0),
        }
    }

    /// The configuration this context runs under.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The staged kernel compiler (and through it the artifact store)
    /// this context materializes circuits with.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The three lowered benchmark circuits (QRCA, QCLA, QFT),
    /// compiled through the pipeline on first call and memoized for
    /// every caller after that.
    ///
    /// # Panics
    ///
    /// Panics when `n_bits` is outside the kernel width bound
    /// (`1..=`[`qods_kernels::MAX_WIDTH`]); the service layer rejects
    /// such configurations with a typed error before a context is
    /// built.
    pub fn benchmarks(&self) -> &[Circuit] {
        self.benchmarks.get_or_init(|| {
            self.lowering_runs.fetch_add(1, Ordering::Relaxed);
            let specs = paper_specs(self.config.n_bits);
            let scheduled =
                qods_pool::run_indexed(specs.len(), qods_pool::pool_threads(specs.len()), |i| {
                    // qods-lint: allow(P1) -- documented caller contract: the service layer rejects bad n_bits before a context exists
                    self.compiler.scheduled(specs[i]).expect("valid n_bits")
                });
            scheduled.iter().map(|s| s.circuit.clone()).collect()
        })
    }

    /// Characterization reports for [`Self::benchmarks`], memoized the
    /// same way (Tables 2, 3, 9 and §3.3 all consume these).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds `n_bits` (see [`Self::benchmarks`]).
    pub fn characterizations(&self) -> &[CircuitReport] {
        self.reports.get_or_init(|| {
            // Materialize the benchmarks first: characterization
            // consumes the scheduled artifacts anyway (the store
            // shares them), and `lowering_runs` keeps its historical
            // meaning — any path that needed the benchmark substrate
            // counts as one materialization.
            let _ = self.benchmarks();
            let specs = paper_specs(self.config.n_bits);
            let chars = self
                .compiler
                .characterize_many(&specs, qods_pool::pool_threads(specs.len()))
                // qods-lint: allow(P1) -- documented caller contract: the service layer rejects bad n_bits before a context exists
                .expect("valid n_bits");
            chars.iter().map(|c| c.report.clone()).collect()
        })
    }

    /// How many times this context materialized its benchmark set
    /// (0 or 1); lets tests assert the memoization contract. Whether
    /// the materialization *recompiled* anything or was served from
    /// the artifact store is visible separately through
    /// `self.compiler().store().stats().computed`.
    pub fn lowering_runs(&self) -> usize {
        self.lowering_runs.load(Ordering::Relaxed)
    }
}

/// One independently runnable paper artifact.
///
/// Implementations are stateless values: everything expensive lives in
/// the shared [`StudyContext`], which is why a whole registry of
/// experiments can run in parallel over one context.
pub trait Experiment: Send + Sync {
    /// Stable identifier (`"table9"`, `"fig15"`, …) used on the command
    /// line and in result files.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// Alternate identifiers that resolve to this experiment (the paper
    /// sometimes splits one computation across two tables).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the experiment over the shared context.
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput;
}

/// The typed result of one experiment run.
///
/// Externally tagged in JSON (`{"Table9": {...}}`), so archived results
/// are self-describing and round-trip through serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// Tables 1 and 4.
    Latency(LatencyOut),
    /// Fig 4.
    Fig4(Fig4Out),
    /// Table 2.
    Table2(Table2Out),
    /// Table 3.
    Table3(Table3Out),
    /// §3.3.
    NonTransversal(NonTransversalOut),
    /// Fig 11 / §4.3.
    SimpleFactory(SimpleFactoryOut),
    /// Tables 5–6.
    ZeroFactory(PipelinedFactoryOut),
    /// Tables 7–8.
    Pi8Factory(PipelinedFactoryOut),
    /// Table 9.
    Table9(Table9Out),
    /// Fig 7.
    Fig7(SeriesOut),
    /// Fig 8.
    Fig8(SeriesOut),
    /// Fig 15.
    Fig15(Fig15Out),
    /// Fig 6 / §4.4.2.
    Cascade(CascadeOut),
    /// The kernel width sweep (extension; `widthsweep`).
    WidthSweep(WidthSweepOut),
}

impl ExperimentOutput {
    /// The figure series this output exports as CSV, if any, as
    /// `(file stem, series)` pairs. Generic consumers (the `repro`
    /// binary) call this instead of matching on variants.
    pub fn csv_series(&self, id: &str) -> Vec<(String, Vec<Series>)> {
        match self {
            ExperimentOutput::Fig7(s) | ExperimentOutput::Fig8(s) => {
                vec![(id.to_string(), s.series.clone())]
            }
            ExperimentOutput::Fig15(f) => f
                .panels
                .iter()
                .map(|p| {
                    let safe = crate::output::csv_safe_stem(&p.name);
                    (format!("{id}_{safe}"), p.curves.clone())
                })
                .collect(),
            ExperimentOutput::WidthSweep(s) => vec![
                (format!("{id}_speed_of_data"), s.speed_of_data_series()),
                (format!("{id}_zero_bandwidth"), s.zero_bandwidth_series()),
            ],
            _ => Vec::new(),
        }
    }
}

/// The result of running one registered experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The experiment's primary id.
    pub id: String,
    /// The experiment's title.
    pub title: String,
    /// Wall-clock seconds this experiment took.
    pub seconds: f64,
    /// The typed output.
    pub output: ExperimentOutput,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_lowers_benchmarks_exactly_once() {
        let ctx = StudyContext::new(StudyConfig::smoke());
        assert_eq!(ctx.lowering_runs(), 0);
        let a = ctx.benchmarks().len();
        let b = ctx.benchmarks().len();
        let reports = ctx.characterizations().len();
        assert_eq!((a, b, reports), (3, 3, 3));
        assert_eq!(ctx.lowering_runs(), 1);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = StudyContext::new(StudyConfig::smoke());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| ctx.benchmarks().len());
            }
        });
        assert_eq!(ctx.lowering_runs(), 1);
    }
}
