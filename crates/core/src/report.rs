//! Paper-style text rendering, one [`Render`] impl per experiment
//! output (the old monolithic `render()` survives as a composition of
//! these over [`PaperReproduction`]).
//!
//! The row-level formatters are free functions over slices so that
//! [`PaperReproduction`] — which stores the rows directly — renders
//! without cloning anything into the per-experiment wrapper types.

use crate::experiment::ExperimentOutput;
use crate::output::{
    CascadeOut, CascadeRow, Fig15Out, Fig15Panel, Fig4Out, Fig4Row, LatencyOut, NonTransversalOut,
    NonTransversalRow, PipelinedFactoryOut, Series, SeriesOut, SimpleFactoryOut, Table2Out,
    Table2Row, Table3Out, Table3Row, Table9Entry, Table9Out, WidthSweepOut,
};
use crate::study::PaperReproduction;
use std::fmt::Write as _;

/// Types that can print themselves in the paper's layout.
pub trait Render {
    /// Appends the paper-style rendering to `out`.
    fn render_into(&self, out: &mut String);

    /// The paper-style rendering as a fresh string.
    fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }
}

impl Render for LatencyOut {
    fn render_into(&self, w: &mut String) {
        let _ = writeln!(
            w,
            "== Table 1 / Table 4: physical operation latencies (us) =="
        );
        let _ = writeln!(
            w,
            "  one-qubit {:.0}, two-qubit {:.0}, measurement {:.0}, zero-prepare {:.0}, move {:.0}, turn {:.0}",
            self.t_1q, self.t_2q, self.t_meas, self.t_prep, self.t_move, self.t_turn
        );
    }
}

fn render_fig4_rows(rows: &[Fig4Row], w: &mut String) {
    let _ = writeln!(w, "== Fig 4: encoded-zero preparation (Monte Carlo) ==");
    let _ = writeln!(
        w,
        "  {:<20} {:>14} {:>12} {:>10} {:>12}",
        "circuit", "uncorrectable", "any-residual", "discard", "paper"
    );
    for r in rows {
        let _ = writeln!(
            w,
            "  {:<20} {:>14.3e} {:>12.3e} {:>10.4} {:>12.1e}",
            r.strategy, r.uncorrectable_rate, r.dirty_rate, r.discard_rate, r.paper_rate
        );
    }
}

impl Render for Fig4Out {
    fn render_into(&self, w: &mut String) {
        render_fig4_rows(&self.rows, w);
    }
}

fn render_table2_rows(rows: &[Table2Row], w: &mut String) {
    let _ = writeln!(w, "== Table 2: latency breakdown (us, % of total) ==");
    for r in rows {
        let _ = writeln!(
            w,
            "  {:<10} data {:>10.0} ({:>4.1}%)  QEC interact {:>10.0} ({:>4.1}%)  prep {:>10.0} ({:>4.1}%)",
            r.name,
            r.data_op_us,
            100.0 * r.shares.data_op,
            r.qec_interact_us,
            100.0 * r.shares.qec_interact,
            r.ancilla_prep_us,
            100.0 * r.shares.ancilla_prep
        );
    }
}

impl Render for Table2Out {
    fn render_into(&self, w: &mut String) {
        render_table2_rows(&self.rows, w);
    }
}

fn render_table3_rows(rows: &[Table3Row], w: &mut String) {
    let _ = writeln!(w, "== Table 3: required ancilla bandwidths (per ms) ==");
    for r in rows {
        let _ = writeln!(
            w,
            "  {:<10} zero {:>8.1}   pi/8 {:>8.1}",
            r.name, r.zero_per_ms, r.pi8_per_ms
        );
    }
}

impl Render for Table3Out {
    fn render_into(&self, w: &mut String) {
        render_table3_rows(&self.rows, w);
    }
}

fn render_non_transversal_rows(rows: &[NonTransversalRow], w: &mut String) {
    let _ = writeln!(w, "== Section 3.3: non-transversal gate fractions ==");
    for r in rows {
        let _ = writeln!(w, "  {:<10} {:.1}%", r.name, 100.0 * r.fraction);
    }
}

impl Render for NonTransversalOut {
    fn render_into(&self, w: &mut String) {
        render_non_transversal_rows(&self.rows, w);
    }
}

impl Render for SimpleFactoryOut {
    fn render_into(&self, w: &mut String) {
        let _ = writeln!(w, "== Fig 11 / Section 4.3: simple ancilla factory ==");
        let _ = writeln!(
            w,
            "  latency {:.0} us, area {} macroblocks, {:.1} ancillae/ms",
            self.latency_us, self.area, self.throughput_per_ms
        );
    }
}

impl PipelinedFactoryOut {
    fn render_with_heading(&self, w: &mut String, heading: &str) {
        let _ = writeln!(w, "== {heading} ==");
        let counts: Vec<String> = self
            .unit_counts
            .iter()
            .map(|u| format!("{} x{}", u.unit, u.count))
            .collect();
        let _ = writeln!(w, "  units: {}", counts.join(", "));
        let _ = writeln!(
            w,
            "  functional {} + crossbar {} = {} macroblocks; {:.1} ancillae/ms",
            self.functional_area, self.crossbar_area, self.total_area, self.throughput_per_ms
        );
    }
}

fn render_table9_rows(rows: &[Table9Entry], w: &mut String) {
    let _ = writeln!(w, "== Table 9: area breakdown at the speed of data ==");
    for r in rows {
        let _ = writeln!(
            w,
            "  {:<10} bw {:>7.1}  data {:>8.0} ({:>4.1}%)  QEC factories {:>9.1} ({:>4.1}%)  pi/8 {:>9.1} ({:>4.1}%)",
            r.name,
            r.zero_bandwidth,
            r.data.area,
            100.0 * r.data.share,
            r.qec.area,
            100.0 * r.qec.share,
            r.pi8.area,
            100.0 * r.pi8.share
        );
    }
    if let Some(row) = rows.first() {
        let _ = writeln!(w, "\n== Fig 14c: microarchitecture to scale ==");
        let _ = writeln!(w, "{}", render_floorplan(row));
    }
}

impl Render for Table9Out {
    fn render_into(&self, w: &mut String) {
        render_table9_rows(&self.rows, w);
    }
}

fn render_series_peaks(series: &[Series], w: &mut String) {
    for s in series {
        let peak = s.points.iter().map(|p| p.y).fold(0.0, f64::max);
        let _ = writeln!(w, "  {:<10} peak in-flight {:.0}", s.label, peak);
    }
}

fn render_series_spans(series: &[Series], w: &mut String) {
    for s in series {
        let (Some(lo), Some(hi)) = (s.points.first(), s.points.last()) else {
            continue;
        };
        let _ = writeln!(
            w,
            "  {:<10} {:>10.3e} us @ {:>8.1}/ms  ->  {:>10.3e} us @ {:>8.1}/ms",
            s.label, lo.y, lo.x, hi.y, hi.x
        );
    }
}

fn render_fig15_panels(panels: &[Fig15Panel], w: &mut String) {
    let _ = writeln!(w, "== Fig 15: execution time vs factory area ==");
    for p in panels {
        let _ = writeln!(
            w,
            "  {}: max equal-area speedup {:.1}x; QLA needs {:.0}x the area; CQLA plateau {:.1}x FM",
            p.name, p.max_speedup, p.qla_area_penalty, p.cqla_plateau_ratio
        );
        for c in &p.curves {
            let first = c.points.first().map(|p| p.y).unwrap_or(0.0);
            let last = c.points.last().map(|p| p.y).unwrap_or(0.0);
            let _ = writeln!(
                w,
                "    {:<18} {:>10.3e} us (starved) -> {:>10.3e} us (plateau)",
                c.label, first, last
            );
        }
    }
}

impl Render for Fig15Out {
    fn render_into(&self, w: &mut String) {
        render_fig15_panels(&self.panels, w);
    }
}

fn render_cascade_rows(rows: &[CascadeRow], w: &mut String) {
    let _ = writeln!(
        w,
        "== Fig 6 / Section 4.4.2: cascade expected CX on critical path =="
    );
    let row: Vec<String> = rows
        .iter()
        .map(|r| format!("k={}: {:.3}", r.k, r.expected_cx))
        .collect();
    let _ = writeln!(w, "  {}", row.join("  "));
}

impl Render for CascadeOut {
    fn render_into(&self, w: &mut String) {
        render_cascade_rows(&self.rows, w);
    }
}

impl Render for WidthSweepOut {
    fn render_into(&self, w: &mut String) {
        let _ = writeln!(w, "== Width sweep: kernel scaling across operand widths ==");
        for c in &self.curves {
            let _ = writeln!(w, "  {}:", c.family);
            for p in &c.points {
                let _ = writeln!(
                    w,
                    "    n={:<3} {:>4} qubits {:>7} gates  T-frac {:>5.3}  \
                     {:>10.3e} us @ speed of data  zeros {:>8.1}/ms  pi/8 {:>7.1}/ms",
                    p.width,
                    p.n_qubits,
                    p.gates,
                    p.non_transversal_fraction,
                    p.speed_of_data_us,
                    p.zero_per_ms,
                    p.pi8_per_ms
                );
            }
        }
    }
}

impl Render for ExperimentOutput {
    fn render_into(&self, w: &mut String) {
        match self {
            ExperimentOutput::Latency(o) => o.render_into(w),
            ExperimentOutput::Fig4(o) => o.render_into(w),
            ExperimentOutput::Table2(o) => o.render_into(w),
            ExperimentOutput::Table3(o) => o.render_into(w),
            ExperimentOutput::NonTransversal(o) => o.render_into(w),
            ExperimentOutput::SimpleFactory(o) => o.render_into(w),
            ExperimentOutput::ZeroFactory(o) => {
                o.render_with_heading(w, "Tables 5-6: pipelined encoded-zero factory")
            }
            ExperimentOutput::Pi8Factory(o) => {
                o.render_with_heading(w, "Tables 7-8: pi/8 ancilla factory")
            }
            ExperimentOutput::Table9(o) => o.render_into(w),
            ExperimentOutput::Fig7(SeriesOut { series }) => {
                let _ = writeln!(w, "== Fig 7: ancilla demand profiles ==");
                render_series_peaks(series, w);
            }
            ExperimentOutput::Fig8(SeriesOut { series }) => {
                let _ = writeln!(w, "== Fig 8: execution time vs ancilla throughput ==");
                render_series_spans(series, w);
            }
            ExperimentOutput::Fig15(o) => o.render_into(w),
            ExperimentOutput::Cascade(o) => o.render_into(w),
            ExperimentOutput::WidthSweep(o) => o.render_into(w),
        }
    }
}

impl Render for PaperReproduction {
    fn render_into(&self, w: &mut String) {
        let t = qods_phys::latency::LatencyTable::ion_trap();
        LatencyOut {
            t_1q: t.t_1q,
            t_2q: t.t_2q,
            t_meas: t.t_meas,
            t_prep: t.t_prep,
            t_move: t.t_move,
            t_turn: t.t_turn,
        }
        .render_into(w);
        let _ = writeln!(w);
        render_fig4_rows(&self.fig4, w);
        let _ = writeln!(w);
        render_table2_rows(&self.table2, w);
        let _ = writeln!(w);
        render_table3_rows(&self.table3, w);
        let _ = writeln!(w);
        render_non_transversal_rows(&self.non_transversal, w);
        let _ = writeln!(w);
        self.factories.simple.render_into(w);
        let _ = writeln!(w);
        self.factories
            .zero
            .render_with_heading(w, "Tables 5-6: pipelined encoded-zero factory");
        let _ = writeln!(w);
        self.factories
            .pi8
            .render_with_heading(w, "Tables 7-8: pi/8 ancilla factory");
        let _ = writeln!(w);
        render_table9_rows(&self.table9, w);
        let _ = writeln!(w);
        render_fig15_panels(&self.fig15, w);
        let _ = writeln!(w);
        render_cascade_rows(&self.cascade, w);
    }
}

/// Renders every table and headline as formatted text mirroring the
/// paper's layout (compatibility entry point; prefer [`Render`]).
pub fn render(out: &PaperReproduction) -> String {
    out.render()
}

/// Renders the Fig 14c "microarchitecture to scale" picture for one
/// Table 9 row as ASCII art: each cell is ~1% of the chip.
///
/// The paper's point is visual: the data region is a sliver and the
/// chip is essentially a wall of ancilla factories.
pub fn render_floorplan(row: &Table9Entry) -> String {
    let width = 50usize;
    let rows = 6usize;
    let cells = width * rows;
    let data = ((row.data.share * cells as f64).round() as usize).max(1);
    let qec = ((row.qec.share * cells as f64).round() as usize).max(1);
    let mut s = format!(
        "{} — to scale ({}: D = data, Q = QEC factories, P = pi/8 chain)\n",
        row.name, "Fig 14c"
    );
    for r in 0..rows {
        s.push_str("  ");
        for c in 0..width {
            let i = r * width + c;
            s.push(if i < data {
                'D'
            } else if i < data + qec {
                'Q'
            } else {
                'P'
            });
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::Render;
    use crate::study::{Study, StudyConfig};

    #[test]
    fn floorplan_is_generation_dominated() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let plan = super::render_floorplan(&out.table9[0]);
        let d = plan.matches('D').count();
        let q = plan.matches('Q').count();
        let p = plan.matches('P').count();
        assert!(q + p > d, "factories must dominate the floor plan");
        assert!(d > 0 && q > 0 && p > 0);
    }

    #[test]
    fn render_mentions_every_artifact() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let text = super::render(&out);
        for needle in [
            "Table 2",
            "Table 3",
            "Table 9",
            "Fig 4",
            "Fig 11",
            "Fig 15",
            "Fig 6",
            "Tables 5-6",
            "Tables 7-8",
            "298",
            "403",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn every_experiment_output_renders_non_trivially() {
        use crate::experiment::StudyContext;
        use crate::registry::Registry;
        let ctx = StudyContext::new(StudyConfig::smoke());
        for record in Registry::paper().run_all(&ctx) {
            let text = record.output.render();
            assert!(
                text.starts_with("== "),
                "{}: rendering must open with a heading",
                record.id
            );
            assert!(text.lines().count() >= 2, "{}: too short", record.id);
        }
    }

    #[test]
    fn full_render_matches_stitched_experiment_renders() {
        // The compatibility render and the per-experiment renders share
        // the same slice-level formatters; the Table 2 section must be
        // byte-identical through either path.
        let out = Study::new(StudyConfig::smoke()).run_all();
        let full = super::render(&out);
        let section = crate::output::Table2Out {
            rows: out.table2.clone(),
        }
        .render();
        assert!(full.contains(section.trim_end()));
    }
}
