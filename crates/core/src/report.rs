//! Paper-style text rendering of a [`crate::study::PaperReproduction`].

use crate::study::PaperReproduction;
use std::fmt::Write as _;

/// Renders every table and headline as formatted text mirroring the
/// paper's layout (used by the `repro` binary and the examples).
pub fn render(out: &PaperReproduction) -> String {
    let mut s = String::new();
    let w = &mut s;

    let _ = writeln!(w, "== Table 1 / Table 4: physical operation latencies (us) ==");
    let _ = writeln!(
        w,
        "  one-qubit 1, two-qubit 10, measurement 50, zero-prepare 51, move 1, turn 10"
    );

    let _ = writeln!(w, "\n== Fig 4: encoded-zero preparation (Monte Carlo) ==");
    let _ = writeln!(
        w,
        "  {:<20} {:>14} {:>12} {:>10} {:>12}",
        "circuit", "uncorrectable", "any-residual", "discard", "paper"
    );
    for r in &out.fig4 {
        let _ = writeln!(
            w,
            "  {:<20} {:>14.3e} {:>12.3e} {:>10.4} {:>12.1e}",
            r.strategy, r.uncorrectable_rate, r.dirty_rate, r.discard_rate, r.paper_rate
        );
    }

    let _ = writeln!(w, "\n== Table 2: latency breakdown (us, % of total) ==");
    for r in &out.table2 {
        let _ = writeln!(
            w,
            "  {:<10} data {:>10.0} ({:>4.1}%)  QEC interact {:>10.0} ({:>4.1}%)  prep {:>10.0} ({:>4.1}%)",
            r.name,
            r.data_op_us,
            100.0 * r.shares.0,
            r.qec_interact_us,
            100.0 * r.shares.1,
            r.ancilla_prep_us,
            100.0 * r.shares.2
        );
    }

    let _ = writeln!(w, "\n== Table 3: required ancilla bandwidths (per ms) ==");
    for r in &out.table3 {
        let _ = writeln!(
            w,
            "  {:<10} zero {:>8.1}   pi/8 {:>8.1}",
            r.name, r.zero_per_ms, r.pi8_per_ms
        );
    }

    let _ = writeln!(w, "\n== §3.3: non-transversal gate fractions ==");
    for (name, f) in &out.non_transversal {
        let _ = writeln!(w, "  {:<10} {:.1}%", name, 100.0 * f);
    }

    let f = &out.factories;
    let _ = writeln!(w, "\n== Fig 11 / §4.3: simple ancilla factory ==");
    let _ = writeln!(
        w,
        "  latency {:.0} us, area {} macroblocks, {:.1} ancillae/ms",
        f.simple.0, f.simple.1, f.simple.2
    );
    let _ = writeln!(w, "\n== Tables 5-6: pipelined encoded-zero factory ==");
    let counts: Vec<String> = f
        .zero_counts
        .iter()
        .map(|(n, c)| format!("{n} x{c}"))
        .collect();
    let _ = writeln!(w, "  units: {}", counts.join(", "));
    let _ = writeln!(
        w,
        "  functional {} + crossbar {} = {} macroblocks; {:.1} ancillae/ms",
        f.zero.0, f.zero.1, f.zero.2, f.zero.3
    );
    let _ = writeln!(w, "\n== Tables 7-8: pi/8 ancilla factory ==");
    let counts: Vec<String> = f
        .pi8_counts
        .iter()
        .map(|(n, c)| format!("{n} x{c}"))
        .collect();
    let _ = writeln!(w, "  units: {}", counts.join(", "));
    let _ = writeln!(
        w,
        "  functional {} + crossbar {} = {} macroblocks; {:.1} ancillae/ms",
        f.pi8.0, f.pi8.1, f.pi8.2, f.pi8.3
    );

    let _ = writeln!(w, "\n== Table 9: area breakdown at the speed of data ==");
    for r in &out.table9 {
        let _ = writeln!(
            w,
            "  {:<10} bw {:>7.1}  data {:>8.0} ({:>4.1}%)  QEC factories {:>9.1} ({:>4.1}%)  pi/8 {:>9.1} ({:>4.1}%)",
            r.name,
            r.zero_bandwidth,
            r.data.0,
            100.0 * r.data.1,
            r.qec.0,
            100.0 * r.qec.1,
            r.pi8.0,
            100.0 * r.pi8.1
        );
    }

    let _ = writeln!(w, "\n== Fig 14c: microarchitecture to scale ==");
    if let Some(row) = out.table9.first() {
        let _ = writeln!(w, "{}", render_floorplan(row));
    }

    let _ = writeln!(w, "\n== Fig 15: execution time vs factory area ==");
    for p in &out.fig15 {
        let _ = writeln!(
            w,
            "  {}: max equal-area speedup {:.1}x; QLA needs {:.0}x the area; CQLA plateau {:.1}x FM",
            p.name, p.max_speedup, p.qla_area_penalty, p.cqla_plateau_ratio
        );
        for c in &p.curves {
            let first = c.points.first().map(|p| p.1).unwrap_or(0.0);
            let last = c.points.last().map(|p| p.1).unwrap_or(0.0);
            let _ = writeln!(
                w,
                "    {:<18} {:>10.3e} us (starved) -> {:>10.3e} us (plateau)",
                c.label, first, last
            );
        }
    }

    let _ = writeln!(w, "\n== Fig 6 / §4.4.2: cascade expected CX on critical path ==");
    let row: Vec<String> = out
        .cascade
        .iter()
        .map(|(k, cx)| format!("k={k}: {cx:.3}"))
        .collect();
    let _ = writeln!(w, "  {}", row.join("  "));

    s
}

/// Renders the Fig 14c "microarchitecture to scale" picture for one
/// Table 9 row as ASCII art: each cell is ~1% of the chip.
///
/// The paper's point is visual: the data region is a sliver and the
/// chip is essentially a wall of ancilla factories.
pub fn render_floorplan(row: &crate::study::Table9Out) -> String {
    let width = 50usize;
    let rows = 6usize;
    let cells = width * rows;
    let data = ((row.data.1 * cells as f64).round() as usize).max(1);
    let qec = ((row.qec.1 * cells as f64).round() as usize).max(1);
    let mut s = format!(
        "{} — to scale ({}: D = data, Q = QEC factories, P = pi/8 chain)\n",
        row.name, "Fig 14c"
    );
    for r in 0..rows {
        s.push_str("  ");
        for c in 0..width {
            let i = r * width + c;
            s.push(if i < data {
                'D'
            } else if i < data + qec {
                'Q'
            } else {
                'P'
            });
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::study::{Study, StudyConfig};

    #[test]
    fn floorplan_is_generation_dominated() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let plan = super::render_floorplan(&out.table9[0]);
        let d = plan.matches('D').count();
        let q = plan.matches('Q').count();
        let p = plan.matches('P').count();
        assert!(q + p > d, "factories must dominate the floor plan");
        assert!(d > 0 && q > 0 && p > 0);
    }

    #[test]
    fn render_mentions_every_artifact() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let text = super::render(&out);
        for needle in [
            "Table 2", "Table 3", "Table 9", "Fig 4", "Fig 11", "Fig 15", "Fig 6",
            "Tables 5-6", "Tables 7-8", "298", "403",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
