//! One [`Experiment`] implementation per paper artifact.
//!
//! Each type is a stateless marker struct; all shared work (benchmark
//! lowering, characterization) lives in the [`StudyContext`], so these
//! run independently, in any subset, and in parallel.

use crate::experiment::{Experiment, ExperimentOutput, StudyContext};
use crate::output::{
    AreaShare, CascadeOut, CascadeRow, Fig15Out, Fig15Panel, Fig4Out, Fig4Row, LatencyOut,
    LatencyShares, NonTransversalOut, NonTransversalRow, PipelinedFactoryOut, Series, SeriesOut,
    SimpleFactoryOut, Table2Out, Table2Row, Table3Out, Table3Row, Table9Entry, Table9Out,
    UnitCount, WidthCurve, WidthPoint, WidthSweepOut,
};
use crate::study::ArchChoice;
use qods_arch::machine::Arch;
use qods_arch::sweep::{area_sweep, log_areas, speedup_summary_from_curves};
use qods_arch::table9::table9_row;
use qods_circuit::characterize::demand_profile;
use qods_circuit::latency_model::CharacterizationModel;
use qods_circuit::throughput::throughput_sweep;
use qods_factory::pi8::Pi8Factory;
use qods_factory::pipeline::SizedFactory;
use qods_factory::simple::SimpleFactory;
use qods_factory::zero::ZeroFactory;
use qods_phys::error_model::ErrorModel;
use qods_phys::latency::LatencyTable;
use qods_steane::eval::evaluate_all;
use qods_synth::cascade::analyze_cascade;

/// Tables 1 and 4: the physical operation latencies.
pub struct LatencyExperiment;

impl Experiment for LatencyExperiment {
    fn id(&self) -> &'static str {
        "table1"
    }
    fn title(&self) -> &'static str {
        "Table 1/4: physical operation latencies (us)"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table4"]
    }
    fn run(&self, _ctx: &StudyContext) -> ExperimentOutput {
        let t = LatencyTable::ion_trap();
        ExperimentOutput::Latency(LatencyOut {
            t_1q: t.t_1q,
            t_2q: t.t_2q,
            t_meas: t.t_meas,
            t_prep: t.t_prep,
            t_move: t.t_move,
            t_turn: t.t_turn,
        })
    }
}

/// Fig 4: Monte-Carlo quality of the four preparation circuits.
pub struct Fig4Experiment;

impl Experiment for Fig4Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Fig 4: encoded-zero preparation quality (Monte Carlo)"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let c = ctx.config();
        let model = ErrorModel::paper().scaled(c.noise_scale);
        let rows = evaluate_all(model, c.mc_trials, c.seed, c.threads)
            .into_iter()
            .map(|e| Fig4Row {
                strategy: e.strategy.name().to_string(),
                uncorrectable_rate: e.error_rate(),
                dirty_rate: e.dirty_rate(),
                discard_rate: e.discard_rate(),
                paper_rate: e.strategy.paper_error_rate(),
            })
            .collect();
        ExperimentOutput::Fig4(Fig4Out { rows })
    }
}

/// Table 2: latency breakdown of the benchmarks.
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn id(&self) -> &'static str {
        "table2"
    }
    fn title(&self) -> &'static str {
        "Table 2: latency breakdown (us, share of total)"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let rows = ctx
            .characterizations()
            .iter()
            .map(|r| Table2Row {
                name: r.name.clone(),
                data_op_us: r.breakdown.data_op_us,
                qec_interact_us: r.breakdown.qec_interact_us,
                ancilla_prep_us: r.breakdown.ancilla_prep_us,
                shares: LatencyShares {
                    data_op: r.breakdown.data_op_share(),
                    qec_interact: r.breakdown.qec_interact_share(),
                    ancilla_prep: r.breakdown.ancilla_prep_share(),
                },
            })
            .collect();
        ExperimentOutput::Table2(Table2Out { rows })
    }
}

/// Table 3: ancilla bandwidths the benchmarks demand.
pub struct Table3Experiment;

impl Experiment for Table3Experiment {
    fn id(&self) -> &'static str {
        "table3"
    }
    fn title(&self) -> &'static str {
        "Table 3: required ancilla bandwidths (per ms)"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let rows = ctx
            .characterizations()
            .iter()
            .map(|r| Table3Row {
                name: r.name.clone(),
                zero_per_ms: r.bandwidth.zero_per_ms,
                pi8_per_ms: r.bandwidth.pi8_per_ms,
            })
            .collect();
        ExperimentOutput::Table3(Table3Out { rows })
    }
}

/// §3.3: fraction of gates needing prepared ancillae.
pub struct NonTransversalExperiment;

impl Experiment for NonTransversalExperiment {
    fn id(&self) -> &'static str {
        "sec33"
    }
    fn title(&self) -> &'static str {
        "Section 3.3: non-transversal gate fractions"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["nontransversal"]
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let rows = ctx
            .characterizations()
            .iter()
            .map(|r| NonTransversalRow {
                name: r.name.clone(),
                fraction: r.non_transversal_fraction,
            })
            .collect();
        ExperimentOutput::NonTransversal(NonTransversalOut { rows })
    }
}

/// Fig 11 / §4.3: the simple ancilla factory.
pub struct SimpleFactoryExperiment;

impl Experiment for SimpleFactoryExperiment {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn title(&self) -> &'static str {
        "Fig 11 / Section 4.3: simple ancilla factory"
    }
    fn run(&self, _ctx: &StudyContext) -> ExperimentOutput {
        let f = SimpleFactory::paper();
        ExperimentOutput::SimpleFactory(SimpleFactoryOut {
            latency_us: f.prep_latency_us(),
            area: f.area(),
            throughput_per_ms: f.throughput_per_ms(),
        })
    }
}

fn pipelined_out(f: &SizedFactory) -> PipelinedFactoryOut {
    PipelinedFactoryOut {
        functional_area: f.functional_area(),
        crossbar_area: f.crossbar_area(),
        total_area: f.total_area(),
        throughput_per_ms: f.throughput_per_ms,
        unit_counts: f
            .stages
            .iter()
            .map(|s| UnitCount {
                unit: s.unit.name.to_string(),
                count: s.count,
            })
            .collect(),
    }
}

/// Tables 5–6: the pipelined encoded-zero factory.
pub struct ZeroFactoryExperiment;

impl Experiment for ZeroFactoryExperiment {
    fn id(&self) -> &'static str {
        "table5"
    }
    fn title(&self) -> &'static str {
        "Tables 5-6: pipelined encoded-zero factory"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table6"]
    }
    fn run(&self, _ctx: &StudyContext) -> ExperimentOutput {
        ExperimentOutput::ZeroFactory(pipelined_out(&ZeroFactory::paper().bandwidth_matched()))
    }
}

/// Tables 7–8: the pi/8 ancilla factory.
pub struct Pi8FactoryExperiment;

impl Experiment for Pi8FactoryExperiment {
    fn id(&self) -> &'static str {
        "table7"
    }
    fn title(&self) -> &'static str {
        "Tables 7-8: pi/8 ancilla factory"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table8"]
    }
    fn run(&self, _ctx: &StudyContext) -> ExperimentOutput {
        ExperimentOutput::Pi8Factory(pipelined_out(&Pi8Factory::paper().bandwidth_matched()))
    }
}

/// Table 9: chip area budget at the speed of data.
pub struct Table9Experiment;

impl Experiment for Table9Experiment {
    fn id(&self) -> &'static str {
        "table9"
    }
    fn title(&self) -> &'static str {
        "Table 9: area breakdown at the speed of data"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let rows = ctx
            .characterizations()
            .iter()
            .map(|r| {
                let row = table9_row(r);
                Table9Entry {
                    name: row.name.clone(),
                    zero_bandwidth: row.zero_bandwidth,
                    data: AreaShare {
                        area: row.data_area,
                        share: row.data_share(),
                    },
                    qec: AreaShare {
                        area: row.qec_factory_area,
                        share: row.qec_share(),
                    },
                    pi8: AreaShare {
                        area: row.pi8_factory_area,
                        share: row.pi8_share(),
                    },
                }
            })
            .collect();
        ExperimentOutput::Table9(Table9Out { rows })
    }
}

/// Fig 7: encoded-zero demand profiles over time.
pub struct Fig7Experiment;

impl Experiment for Fig7Experiment {
    fn id(&self) -> &'static str {
        "fig7"
    }
    fn title(&self) -> &'static str {
        "Fig 7: ancilla demand profiles"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let model = CharacterizationModel::ion_trap();
        let series = ctx
            .benchmarks()
            .iter()
            .map(|c| {
                Series::from_pairs(
                    c.name.clone(),
                    demand_profile(c, &model, ctx.config().profile_samples)
                        .into_iter()
                        .map(|p| (p.t_us, p.zeros_in_flight)),
                )
            })
            .collect();
        ExperimentOutput::Fig7(SeriesOut { series })
    }
}

/// Fig 8: execution time vs delivered ancilla bandwidth.
pub struct Fig8Experiment;

impl Experiment for Fig8Experiment {
    fn id(&self) -> &'static str {
        "fig8"
    }
    fn title(&self) -> &'static str {
        "Fig 8: execution time vs ancilla throughput"
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let model = CharacterizationModel::ion_trap();
        let series = ctx
            .benchmarks()
            .iter()
            .zip(ctx.characterizations())
            .map(|(c, r)| {
                let avg = r.bandwidth.zero_per_ms.max(1.0);
                Series::from_pairs(
                    c.name.clone(),
                    throughput_sweep(c, &model, avg / 30.0, avg * 30.0, 25)
                        .into_iter()
                        .map(|p| (p.zeros_per_ms, p.execution_us)),
                )
            })
            .collect();
        ExperimentOutput::Fig8(SeriesOut { series })
    }
}

/// Fig 15: the architecture comparison sweeps.
pub struct Fig15Experiment;

impl Experiment for Fig15Experiment {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn title(&self) -> &'static str {
        "Fig 15: execution time vs factory area across architectures"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["headline"]
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        let range = &ctx.config().sweep_area_range;
        let areas = log_areas(range.min_area, range.max_area, ctx.config().sweep_points);
        let panels = ctx
            .benchmarks()
            .iter()
            .map(|c| {
                let panel = &ctx.config().arch_panel;
                let archs: Vec<Arch> = panel.iter().map(|a| a.to_arch(c.n_qubits())).collect();
                let curves = area_sweep(c, &archs, &areas);
                // The §5.2 headline summary needs the FM, QLA, and
                // CQLA curves; a panel override that drops one of
                // them reports zeros instead (JSON has no NaN). The
                // check is on the panel selection itself, not curve
                // display names, so it cannot drift from the sweep.
                let has = |choice: ArchChoice| panel.contains(&choice);
                let (max_speedup, qla_area_penalty, cqla_plateau_ratio) =
                    if has(ArchChoice::FullyMultiplexed)
                        && has(ArchChoice::Qla)
                        && has(ArchChoice::Cqla)
                    {
                        let s = speedup_summary_from_curves(&curves);
                        (
                            s.max_speedup,
                            s.qla_area_penalty,
                            s.cqla_plateau_us / s.fm_plateau_us,
                        )
                    } else {
                        (0.0, 0.0, 0.0)
                    };
                Fig15Panel {
                    name: c.name.clone(),
                    curves: curves
                        .into_iter()
                        .map(|cv| {
                            Series::from_pairs(
                                cv.arch.to_string(),
                                cv.points.iter().map(|p| (p.area, p.exec_us)),
                            )
                        })
                        .collect(),
                    max_speedup,
                    qla_area_penalty,
                    cqla_plateau_ratio,
                }
            })
            .collect();
        ExperimentOutput::Fig15(Fig15Out { panels })
    }
}

/// The kernel width sweep: every family characterized at arbitrary
/// operand widths through the `qods-compile` pipeline — the paper's
/// fixed 32-bit benchmark points generalized to scaling curves (and
/// extended past them).
pub struct WidthSweepExperiment;

impl Experiment for WidthSweepExperiment {
    fn id(&self) -> &'static str {
        "widthsweep"
    }
    fn title(&self) -> &'static str {
        "Width sweep: kernel scaling across operand widths"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["widths"]
    }
    fn run(&self, ctx: &StudyContext) -> ExperimentOutput {
        use qods_kernels::{KernelFamily, KernelSpec};
        // Invalid configured widths (0, beyond MAX_WIDTH) are dropped
        // rather than panicking: the width list can arrive from an
        // untrusted service request.
        let widths: Vec<usize> = ctx
            .config()
            .width_sweep
            .iter()
            .copied()
            .filter(|&w| KernelSpec::new(KernelFamily::Qrca, w).is_ok())
            .collect();
        let specs: Vec<KernelSpec> = KernelFamily::ALL
            .iter()
            .flat_map(|&family| {
                widths
                    .iter()
                    .map(move |&width| KernelSpec { family, width })
            })
            .collect();
        let compiled = ctx
            .compiler()
            .characterize_many(&specs, qods_pool::pool_threads(specs.len()))
            // qods-lint: allow(P1) -- proven invariant: the widths list is validated a few lines up
            .expect("widths validated above");
        let curves = KernelFamily::ALL
            .iter()
            .enumerate()
            .map(|(fi, family)| WidthCurve {
                family: family.name().to_string(),
                points: (0..widths.len())
                    .map(|wi| {
                        let c = &compiled[fi * widths.len() + wi];
                        WidthPoint {
                            width: c.spec.width,
                            n_qubits: c.report.n_qubits,
                            gates: c.report.gate_count,
                            non_transversal_fraction: c.report.non_transversal_fraction,
                            speed_of_data_us: c.makespan_us,
                            zero_per_ms: c.report.bandwidth.zero_per_ms,
                            pi8_per_ms: c.report.bandwidth.pi8_per_ms,
                        }
                    })
                    .collect(),
            })
            .collect();
        ExperimentOutput::WidthSweep(WidthSweepOut { widths, curves })
    }
}

/// Fig 6 / §4.4.2: rotation-cascade cost by precision.
pub struct CascadeExperiment;

impl Experiment for CascadeExperiment {
    fn id(&self) -> &'static str {
        "fig6"
    }
    fn title(&self) -> &'static str {
        "Fig 6 / Section 4.4.2: cascade expected CX counts"
    }
    fn run(&self, _ctx: &StudyContext) -> ExperimentOutput {
        let rows = (3..=12u8)
            .map(|k| {
                let a = analyze_cascade(k);
                CascadeRow {
                    k,
                    expected_cx: a.expected_cx,
                    factories: a.factories,
                }
            })
            .collect();
        ExperimentOutput::Cascade(CascadeOut { rows })
    }
}
