//! # qods-core — the speed-of-data study, end to end
//!
//! This crate is the public face of the reproduction of *"Running a
//! Quantum Circuit at the Speed of Data"* (Isailovic, Whitney, Patel,
//! Kubiatowicz — ISCA 2008). It re-exports the substrate crates and
//! provides the **experiment registry**: every table and figure of the
//! paper is an independent [`experiment::Experiment`], addressable by
//! id, runnable alone or all together — in parallel — over a shared,
//! memoized [`experiment::StudyContext`]. [`study::Study`] survives as
//! a compatibility wrapper that reassembles the classic
//! [`study::PaperReproduction`] struct from a full registry run.
//!
//! | artifact | experiment id | source |
//! |---|---|---|
//! | Table 1/4 | `table1`/`table4` | [`qods_phys::latency`] |
//! | Table 2 | `table2` | [`qods_circuit::characterize`] |
//! | Table 3 | `table3` | [`qods_circuit::characterize`] |
//! | §3.3 | `sec33`/`nontransversal` | [`qods_circuit::characterize`] |
//! | Table 5/6 | `table5`/`table6` | [`qods_factory::zero`] |
//! | Table 7/8 | `table7`/`table8` | [`qods_factory::pi8`] |
//! | Table 9 | `table9` | [`qods_arch::table9`] |
//! | Fig 4 | `fig4` | [`qods_steane::eval`] |
//! | Fig 6 | `fig6` | [`qods_synth::cascade`] |
//! | Fig 7 | `fig7` | [`qods_circuit::characterize`] |
//! | Fig 8 | `fig8` | [`qods_circuit::throughput`] |
//! | Fig 11 | `fig11` | [`qods_factory::simple`] |
//! | Fig 15 | `fig15`/`headline` | [`qods_arch::sweep`] |
//! | Width sweep (ext.) | `widthsweep`/`widths` | [`qods_compile`] |
//!
//! # Quickstart
//!
//! ```
//! use qods_core::prelude::*;
//!
//! // The paper's pipelined encoded-zero factory (§4.4.1).
//! let sized = ZeroFactory::paper().bandwidth_matched();
//! assert_eq!(sized.total_area(), 298);
//!
//! // Characterize a small adder at the speed of data.
//! let report = characterize(&qrca_lowered(4));
//! assert!(report.breakdown.ancilla_prep_share() > 0.5);
//! ```

pub mod experiment;
pub mod experiments;
pub mod output;
pub mod registry;
pub mod report;
pub mod study;

pub use qods_arch as arch;
pub use qods_circuit as circuit;
pub use qods_compile as compile;
pub use qods_factory as factory;
pub use qods_kernels as kernels;
pub use qods_layout as layout;
pub use qods_phys as phys;
pub use qods_steane as steane;
pub use qods_synth as synth;

pub use experiment::{Experiment, ExperimentOutput, ExperimentRecord, StudyContext};
pub use registry::{ExperimentInfo, Registry, RegistryError};
pub use report::Render;
pub use study::{ArchChoice, PaperReproduction, Study, StudyConfig};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::experiment::{Experiment, ExperimentOutput, ExperimentRecord, StudyContext};
    pub use crate::registry::{ExperimentInfo, Registry, RegistryError};
    pub use crate::report::Render;
    pub use crate::study::{ArchChoice, PaperReproduction, Study, StudyConfig, SweepRange};
    pub use qods_arch::machine::Arch;
    pub use qods_arch::simulator::{simulate, SimContext};
    pub use qods_arch::sweep::{
        area_sweep, area_sweep_in, log_areas, speedup_summary, speedup_summary_from_curves,
    };
    pub use qods_arch::table9::{table9_row, table9_row_from_bandwidths};
    pub use qods_circuit::characterize::{characterize, demand_profile};
    pub use qods_circuit::circuit::Circuit;
    pub use qods_circuit::latency_model::CharacterizationModel;
    pub use qods_circuit::throughput::{execution_time_us, throughput_sweep};
    pub use qods_compile::{ArtifactStore, Compiler, SynthBudget};
    pub use qods_factory::pi8::Pi8Factory;
    pub use qods_factory::simple::SimpleFactory;
    pub use qods_factory::supply::{FactoryFarm, ZeroFactoryKind};
    pub use qods_factory::zero::ZeroFactory;
    pub use qods_kernels::{
        qcla, qcla_lowered, qft, qft_lowered, qrca, qrca_lowered, KernelError, KernelFamily,
        KernelSpec, SynthAdapter,
    };
    pub use qods_phys::error_model::ErrorModel;
    pub use qods_phys::latency::LatencyTable;
    pub use qods_steane::eval::{evaluate_all, evaluate_prep};
    pub use qods_steane::prep::PrepStrategy;
    pub use qods_synth::cascade::analyze_cascade;
    pub use qods_synth::search::Synthesizer;
}
