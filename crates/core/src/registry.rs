//! The experiment registry: list, resolve, and run paper artifacts —
//! sequentially or in parallel over one shared [`StudyContext`].

use crate::experiment::{Experiment, ExperimentRecord, StudyContext};
use crate::experiments::{
    CascadeExperiment, Fig15Experiment, Fig4Experiment, Fig7Experiment, Fig8Experiment,
    LatencyExperiment, NonTransversalExperiment, Pi8FactoryExperiment, SimpleFactoryExperiment,
    Table2Experiment, Table3Experiment, Table9Experiment, WidthSweepExperiment,
    ZeroFactoryExperiment,
};
use std::time::Instant;

/// A row of `Registry::list()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentInfo {
    /// Primary id.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Alternate ids resolving to the same experiment.
    pub aliases: &'static [&'static str],
}

/// A selection of experiment ids that the registry rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An id that no registered experiment (or alias) matches.
    Unknown {
        /// The id that failed to resolve.
        id: String,
    },
    /// The same experiment was requested more than once (directly or
    /// through an alias) — running it twice is never what the caller
    /// meant, so the selection is rejected instead of silently
    /// duplicating work.
    Duplicate {
        /// The id as the caller wrote it the second time.
        id: String,
        /// The primary id both requests resolve to.
        canonical: String,
    },
}

impl RegistryError {
    /// The offending id, whichever way the selection failed.
    pub fn id(&self) -> &str {
        match self {
            RegistryError::Unknown { id } | RegistryError::Duplicate { id, .. } => id,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unknown { id } => {
                write!(f, "unknown experiment id `{id}` (try `repro --list`)")
            }
            RegistryError::Duplicate { id, canonical } => write!(
                f,
                "duplicate experiment id `{id}` (experiment `{canonical}` already selected)"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered collection of registered experiments.
///
/// [`Registry::paper`] registers every artifact of the paper in
/// presentation order; custom registries can be assembled with
/// [`Registry::register`].
pub struct Registry {
    entries: Vec<Box<dyn Experiment>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::paper()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// The full paper: every table and figure, in the paper's order.
    pub fn paper() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(LatencyExperiment));
        r.register(Box::new(Fig4Experiment));
        r.register(Box::new(Table2Experiment));
        r.register(Box::new(Table3Experiment));
        r.register(Box::new(NonTransversalExperiment));
        r.register(Box::new(SimpleFactoryExperiment));
        r.register(Box::new(ZeroFactoryExperiment));
        r.register(Box::new(Pi8FactoryExperiment));
        r.register(Box::new(Table9Experiment));
        r.register(Box::new(Fig7Experiment));
        r.register(Box::new(Fig8Experiment));
        r.register(Box::new(Fig15Experiment));
        r.register(Box::new(CascadeExperiment));
        r.register(Box::new(WidthSweepExperiment));
        r
    }

    /// Adds an experiment at the end of the run order.
    ///
    /// # Panics
    ///
    /// Panics when the experiment's id or an alias collides with an
    /// already-registered id — ids are the public addressing scheme,
    /// so a collision is a programming error.
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        for id in std::iter::once(exp.id()).chain(exp.aliases().iter().copied()) {
            assert!(
                self.get(id).is_none(),
                "duplicate experiment id `{id}` registered"
            );
        }
        self.entries.push(exp);
    }

    /// How many experiments are registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered experiments, in run order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// Id, title, and aliases of every registered experiment.
    pub fn list(&self) -> Vec<ExperimentInfo> {
        self.entries
            .iter()
            .map(|e| ExperimentInfo {
                id: e.id(),
                title: e.title(),
                aliases: e.aliases(),
            })
            .collect()
    }

    /// Resolves an id or alias to its experiment.
    pub fn get(&self, id: &str) -> Option<&dyn Experiment> {
        self.entries
            .iter()
            .find(|e| e.id() == id || e.aliases().contains(&id))
            .map(AsRef::as_ref)
    }

    /// Resolves a selection of ids (or aliases) to experiments,
    /// rejecting unknown ids and duplicates — including a primary id
    /// and one of its aliases naming the same experiment twice.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] for an id that does not resolve,
    /// [`RegistryError::Duplicate`] when two ids resolve to the same
    /// experiment.
    pub fn resolve(&self, ids: &[&str]) -> Result<Vec<&dyn Experiment>, RegistryError> {
        let mut selected: Vec<&dyn Experiment> = Vec::with_capacity(ids.len());
        for id in ids {
            let exp = self.get(id).ok_or_else(|| RegistryError::Unknown {
                id: (*id).to_string(),
            })?;
            if selected.iter().any(|s| s.id() == exp.id()) {
                return Err(RegistryError::Duplicate {
                    id: (*id).to_string(),
                    canonical: exp.id().to_string(),
                });
            }
            selected.push(exp);
        }
        Ok(selected)
    }

    /// Runs one experiment by id over the shared context.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Unknown`] when the id does not resolve.
    pub fn run_one(&self, id: &str, ctx: &StudyContext) -> Result<ExperimentRecord, RegistryError> {
        let exp = self
            .get(id)
            .ok_or_else(|| RegistryError::Unknown { id: id.to_string() })?;
        Ok(record(exp, ctx))
    }

    /// Runs a selection of experiments (ids or aliases) sequentially,
    /// in the order given.
    ///
    /// # Errors
    ///
    /// Returns the first [`RegistryError`] in the selection — an
    /// unknown id or a duplicate (see [`Registry::resolve`]); nothing
    /// runs in that case.
    pub fn run_selected(
        &self,
        ids: &[&str],
        ctx: &StudyContext,
    ) -> Result<Vec<ExperimentRecord>, RegistryError> {
        Ok(self
            .resolve(ids)?
            .into_iter()
            .map(|e| record(e, ctx))
            .collect())
    }

    /// Runs every registered experiment in parallel over `ctx` and
    /// returns the records in registration order.
    ///
    /// Experiments are drained from the workspace's shared worker pool
    /// (`qods_pool`) by `min(experiments, host threads)` scoped
    /// workers, so a many-core host runs the heavy experiments (Fig
    /// 4's Monte Carlo, Fig 15's sweeps) concurrently while a
    /// single-core host degrades to the sequential path with no
    /// oversubscription — and a process-wide `--threads` pin applies
    /// here like everywhere else. The shared context memoizes
    /// benchmark lowering behind a `OnceLock`, so the substrate is
    /// built exactly once no matter which experiment's thread gets
    /// there first.
    pub fn run_all(&self, ctx: &StudyContext) -> Vec<ExperimentRecord> {
        let n = self.entries.len();
        qods_pool::run_indexed(n, qods_pool::pool_threads(n), |i| {
            record(self.entries[i].as_ref(), ctx)
        })
    }

    /// Runs every registered experiment on the calling thread, in
    /// registration order (the baseline [`Registry::run_all`] is
    /// measured against).
    pub fn run_all_sequential(&self, ctx: &StudyContext) -> Vec<ExperimentRecord> {
        self.entries
            .iter()
            .map(|e| record(e.as_ref(), ctx))
            .collect()
    }
}

fn record(exp: &dyn Experiment, ctx: &StudyContext) -> ExperimentRecord {
    // qods-lint: allow(D1) -- wall-time metadata only; never hashed or
    // serialized into result lines
    let t0 = Instant::now();
    let output = exp.run(ctx);
    ExperimentRecord {
        id: exp.id().to_string(),
        title: exp.title().to_string(),
        seconds: t0.elapsed().as_secs_f64(),
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn registry_lists_and_resolves_all_ids() {
        let r = Registry::paper();
        assert_eq!(r.len(), 14);
        for info in r.list() {
            assert_eq!(r.get(info.id).map(|e| e.id()), Some(info.id));
            for alias in info.aliases {
                assert_eq!(r.get(alias).map(|e| e.id()), Some(info.id), "alias {alias}");
            }
        }
        assert!(r.get("fig99").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate experiment id")]
    fn duplicate_registration_panics() {
        let mut r = Registry::paper();
        r.register(Box::new(crate::experiments::Table9Experiment));
    }

    #[test]
    fn parallel_and_sequential_agree_and_lower_once() {
        let r = Registry::paper();
        let ctx = StudyContext::new(StudyConfig::smoke());
        let par = r.run_all(&ctx);
        assert_eq!(ctx.lowering_runs(), 1, "parallel run must lower once");
        let seq = r.run_all_sequential(&ctx);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.id, s.id);
            assert_eq!(p.output, s.output, "{} outputs differ", p.id);
        }
    }

    #[test]
    fn unknown_id_is_a_clean_error() {
        let r = Registry::paper();
        let ctx = StudyContext::new(StudyConfig::smoke());
        let err = r.run_selected(&["table9", "nope"], &ctx).unwrap_err();
        assert_eq!(
            err,
            RegistryError::Unknown {
                id: "nope".to_string()
            }
        );
        assert_eq!(err.id(), "nope");
        assert!(err.to_string().contains("unknown experiment id `nope`"));
    }

    #[test]
    fn duplicate_selection_is_rejected_without_running() {
        let r = Registry::paper();
        let ctx = StudyContext::new(StudyConfig::smoke());
        let err = r
            .run_selected(&["fig6", "table9", "table9"], &ctx)
            .unwrap_err();
        assert_eq!(
            err,
            RegistryError::Duplicate {
                id: "table9".to_string(),
                canonical: "table9".to_string(),
            }
        );
        assert!(err.to_string().contains("duplicate experiment id"));
        // Nothing ran: the context was never asked to lower.
        assert_eq!(ctx.lowering_runs(), 0);
    }

    #[test]
    fn alias_duplicating_its_primary_id_is_rejected() {
        let r = Registry::paper();
        let ctx = StudyContext::new(StudyConfig::smoke());
        // `table6` is an alias of `table5`: selecting both names one
        // experiment twice.
        let err = r.run_selected(&["table5", "table6"], &ctx).unwrap_err();
        assert_eq!(
            err,
            RegistryError::Duplicate {
                id: "table6".to_string(),
                canonical: "table5".to_string(),
            }
        );
    }

    #[test]
    fn resolve_keeps_request_order() {
        let r = Registry::paper();
        let ids: Vec<&str> = r
            .resolve(&["fig15", "table2", "fig4"])
            .expect("distinct ids")
            .iter()
            .map(|e| e.id())
            .collect();
        assert_eq!(ids, vec!["fig15", "table2", "fig4"]);
    }
}
