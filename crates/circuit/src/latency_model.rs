//! The latency constants used by the speed-of-data characterization
//! (Tables 2-3), derived from the paper's published building blocks.
//!
//! All values are closed-form functions of the six physical latencies
//! (Tables 1 and 4) and the factory structures of §4:
//!
//! * **QEC interact** — the data-dependent part of a QEC step: a
//!   transversal CX, ancilla measurement, and conditional correction,
//!   once for bit and once for phase: `2 (t_2q + t_meas + t_1q)`
//!   = 122 us under ion-trap values.
//! * **Encoded-zero prep** — the hand-optimized verify-and-correct
//!   schedule of the simple factory (§4.3): `t_prep + 2 t_meas +
//!   6 t_2q + 2 t_1q + 8 t_turn + 30 t_move` = 323 us. The two zeros a
//!   QEC step consumes are prepared in parallel rows.
//! * **pi/8 interact** — the data-side latency of the Fig 5a gadget:
//!   transversal CX, measure, conditional correction:
//!   `t_2q + t_meas + t_1q` = 61 us.
//! * **pi/8 prep** — an encoded zero (prepared concurrently with the
//!   Fig 5b stage-1 cat state, so the longer of the two) followed by
//!   the gadget's remaining stages (Table 7): `max(zero_prep, 218) +
//!   53 + 218 + 74` = 668 us.
//!
//! `qods-factory` re-derives the same stage numbers from its pipeline
//! specs; an integration test asserts the two crates agree.

use crate::gate::Gate;
use qods_phys::latency::{LatencyTable, SymbolicLatency};

/// Latency constants for speed-of-data characterization.
#[derive(Debug, Clone, Copy)]
pub struct CharacterizationModel {
    /// The physical latency table (defaults to ion trap, Table 1/4).
    pub table: LatencyTable,
}

impl Default for CharacterizationModel {
    fn default() -> Self {
        CharacterizationModel {
            table: LatencyTable::ion_trap(),
        }
    }
}

impl CharacterizationModel {
    /// Ion-trap model (the paper's).
    pub fn ion_trap() -> Self {
        Self::default()
    }

    /// Data-side latency of one logical gate (Table 2, column 2
    /// contribution). Transversal 1q gates take `t_1q`; CX takes
    /// `t_2q`; the pi/8 gate takes its gadget's data-side latency.
    ///
    /// # Panics
    ///
    /// Panics on non-physical gates (Toffoli / unsynthesized
    /// rotations) — lower the circuit first.
    pub fn data_latency(&self, g: &Gate) -> f64 {
        assert!(g.is_physical(), "characterize a lowered circuit: {g:?}");
        let t = &self.table;
        match g {
            Gate::Cx(..) => t.t_2q,
            Gate::T(_) | Gate::Tdg(_) | Gate::PhaseRot { k: 2, .. } => self.pi8_interact(),
            _ => t.t_1q,
        }
    }

    /// Data/ancilla interaction latency of one QEC step (bit + phase).
    pub fn qec_interact(&self) -> f64 {
        2.0 * (self.table.t_2q + self.table.t_meas + self.table.t_1q)
    }

    /// Data-side latency of the encoded pi/8 gadget (Fig 5a).
    pub fn pi8_interact(&self) -> f64 {
        self.table.t_2q + self.table.t_meas + self.table.t_1q
    }

    /// Serial preparation latency of one high-fidelity encoded zero
    /// (§4.3's hand-optimized schedule; symbolic form below).
    pub fn zero_prep(&self) -> f64 {
        self.zero_prep_symbolic().eval(&self.table)
    }

    /// The §4.3 schedule as a symbolic latency.
    pub fn zero_prep_symbolic(&self) -> SymbolicLatency {
        SymbolicLatency::new()
            .prep(1)
            .meas(2)
            .two_q(6)
            .one_q(2)
            .turn(8)
            .mov(30)
    }

    /// Serial preparation latency of one encoded pi/8 ancilla: the
    /// encoded zero and the stage-1 cat state are prepared
    /// concurrently; stages 2-4 of Table 7 follow.
    pub fn pi8_prep(&self) -> f64 {
        let t = &self.table;
        let cat7 = 7.0 * t.t_2q + 14.0 * t.t_turn + 8.0 * t.t_move;
        let transversal = 3.0 * t.t_2q + 2.0 * t.t_turn + 3.0 * t.t_move;
        let decode = 7.0 * t.t_2q + 14.0 * t.t_turn + 8.0 * t.t_move;
        let readout = t.t_meas + 2.0 * t.t_1q + 2.0 * t.t_turn + 2.0 * t.t_move;
        self.zero_prep().max(cat7) + transversal + decode + readout
    }

    /// Encoded zeros consumed by one QEC step (bit + phase ancillae).
    pub fn zeros_per_qec(&self) -> u64 {
        2
    }

    /// Encoded zeros consumed to *feed* one pi/8 ancilla (the Fig 5b
    /// gadget turns one encoded zero into one pi/8 ancilla).
    pub fn zeros_per_pi8(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ion_trap_constants() {
        let m = CharacterizationModel::ion_trap();
        assert_eq!(m.qec_interact(), 122.0);
        assert_eq!(m.pi8_interact(), 61.0);
        assert_eq!(m.zero_prep(), 323.0);
        // pi/8 prep: max(323, 218) + 53 + 218 + 74 = 668.
        assert_eq!(m.pi8_prep(), 668.0);
    }

    #[test]
    fn data_latencies() {
        let m = CharacterizationModel::ion_trap();
        assert_eq!(m.data_latency(&Gate::H(0)), 1.0);
        assert_eq!(m.data_latency(&Gate::Cx(0, 1)), 10.0);
        assert_eq!(m.data_latency(&Gate::T(0)), 61.0);
    }

    #[test]
    #[should_panic(expected = "lowered circuit")]
    fn non_physical_gate_panics() {
        let m = CharacterizationModel::ion_trap();
        let _ = m.data_latency(&Gate::Toffoli(0, 1, 2));
    }
}
