//! Functional simulators for verifying kernel circuits.
//!
//! * [`permutation`] — classical reversible simulation for X/CX/Toffoli
//!   networks (adders are permutations of basis states);
//! * [`statevector`] — dense complex simulation for small circuits
//!   (used to check the QFT against the DFT matrix for n <= 6).
//!
//! These simulate the *logical* circuit exactly; they are test oracles,
//! not part of the performance model.

pub mod permutation {
    //! Basis-state simulation of classical reversible networks.

    use crate::circuit::Circuit;
    use crate::gate::Gate;

    /// Applies the circuit to the computational basis state whose bits
    /// are given by `input` (bit `q` of the integer = qubit `q`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a non-classical gate (anything
    /// other than X, CX, Toffoli).
    pub fn apply(circuit: &Circuit, input: u128) -> u128 {
        assert!(
            circuit.n_qubits() <= 128,
            "permutation sim supports <= 128 qubits"
        );
        let mut s = input;
        for g in circuit.gates() {
            match *g {
                Gate::X(q) => s ^= 1 << q,
                Gate::Cx(c, t) => {
                    if s >> c & 1 == 1 {
                        s ^= 1 << t;
                    }
                }
                Gate::Toffoli(a, b, t) => {
                    if (s >> a & 1 == 1) && (s >> b & 1 == 1) {
                        s ^= 1 << t;
                    }
                }
                // qods-lint: allow(P1) -- documented caller contract: the permutation sim is only fed classical (X/CX/Toffoli) circuits
                ref other => panic!("non-classical gate in permutation sim: {other:?}"),
            }
        }
        s
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::circuit::Circuit;

        #[test]
        fn cx_and_toffoli_semantics() {
            let mut c = Circuit::new(3);
            c.x(0);
            c.cx(0, 1);
            c.toffoli(0, 1, 2);
            assert_eq!(apply(&c, 0b000), 0b111);
            // X turns q0 off, so neither CX nor Toffoli fires.
            assert_eq!(apply(&c, 0b001), 0b000);
        }

        #[test]
        #[should_panic(expected = "non-classical")]
        fn rejects_hadamard() {
            let mut c = Circuit::new(1);
            c.h(0);
            let _ = apply(&c, 0);
        }
    }
}

pub mod statevector {
    //! Dense statevector simulation (small n only).

    use crate::circuit::Circuit;
    use crate::gate::Gate;
    use std::f64::consts::PI;

    /// A complex amplitude.
    #[derive(Debug, Clone, Copy, PartialEq, Default)]
    pub struct Amp {
        /// Real part.
        pub re: f64,
        /// Imaginary part.
        pub im: f64,
    }

    impl Amp {
        /// The complex number `re + i*im`.
        pub fn new(re: f64, im: f64) -> Self {
            Amp { re, im }
        }

        /// Squared magnitude.
        pub fn norm_sq(&self) -> f64 {
            self.re * self.re + self.im * self.im
        }

        fn mul(self, o: Amp) -> Amp {
            Amp::new(
                self.re * o.re - self.im * o.im,
                self.re * o.im + self.im * o.re,
            )
        }

        fn add(self, o: Amp) -> Amp {
            Amp::new(self.re + o.re, self.im + o.im)
        }

        fn scale(self, s: f64) -> Amp {
            Amp::new(self.re * s, self.im * s)
        }

        fn phase(theta: f64) -> Amp {
            Amp::new(theta.cos(), theta.sin())
        }
    }

    /// A dense state over `n` qubits.
    #[derive(Debug, Clone)]
    pub struct State {
        n: usize,
        amps: Vec<Amp>,
    }

    impl State {
        /// |basis> over `n` qubits (bit q of `basis` = qubit q).
        ///
        /// # Panics
        ///
        /// Panics if `n > 20` (dense memory guard).
        pub fn basis(n: usize, basis: usize) -> Self {
            assert!(n <= 20, "statevector sim limited to 20 qubits");
            let mut amps = vec![Amp::default(); 1 << n];
            amps[basis] = Amp::new(1.0, 0.0);
            State { n, amps }
        }

        /// The amplitudes (index bit q = qubit q).
        pub fn amps(&self) -> &[Amp] {
            &self.amps
        }

        /// Fidelity |<self|other>|^2.
        pub fn fidelity(&self, other: &State) -> f64 {
            assert_eq!(self.n, other.n);
            let mut re = 0.0;
            let mut im = 0.0;
            for (a, b) in self.amps.iter().zip(&other.amps) {
                // conj(a) * b
                re += a.re * b.re + a.im * b.im;
                im += a.re * b.im - a.im * b.re;
            }
            re * re + im * im
        }

        /// Applies a whole circuit.
        pub fn run(&mut self, circuit: &Circuit) {
            assert_eq!(circuit.n_qubits(), self.n, "qubit count mismatch");
            for g in circuit.gates() {
                self.apply(g);
            }
        }

        /// Applies one gate.
        pub fn apply(&mut self, g: &Gate) {
            match *g {
                Gate::X(q) => self.map1(q, |a0, a1| (a1, a0)),
                Gate::Y(q) => self.map1(q, |a0, a1| {
                    (
                        Amp::new(a1.im, -a1.re), // -i * a1
                        Amp::new(-a0.im, a0.re), // i * a0
                    )
                }),
                Gate::Z(q) => self.phase1(q, PI),
                Gate::S(q) => self.phase1(q, PI / 2.0),
                Gate::Sdg(q) => self.phase1(q, -PI / 2.0),
                Gate::T(q) => self.phase1(q, PI / 4.0),
                Gate::Tdg(q) => self.phase1(q, -PI / 4.0),
                Gate::H(q) => {
                    let s = 1.0 / 2.0_f64.sqrt();
                    self.map1(q, move |a0, a1| {
                        (a0.add(a1).scale(s), a0.add(a1.scale(-1.0)).scale(s))
                    });
                }
                Gate::PhaseRot { q, k, dagger } => {
                    let theta = PI / 2f64.powi(i32::from(k)) * if dagger { -1.0 } else { 1.0 };
                    self.phase1(q, theta);
                }
                Gate::Cx(c, t) => {
                    for i in 0..self.amps.len() {
                        if i >> c & 1 == 1 && i >> t & 1 == 0 {
                            self.amps.swap(i, i | (1 << t));
                        }
                    }
                }
                Gate::Toffoli(a, b, t) => {
                    for i in 0..self.amps.len() {
                        if i >> a & 1 == 1 && i >> b & 1 == 1 && i >> t & 1 == 0 {
                            self.amps.swap(i, i | (1 << t));
                        }
                    }
                }
                Gate::CPhaseRot { c, t, k, dagger } => {
                    let theta = PI / 2f64.powi(i32::from(k)) * if dagger { -1.0 } else { 1.0 };
                    let ph = Amp::phase(theta);
                    for (i, amp) in self.amps.iter_mut().enumerate() {
                        if i >> c & 1 == 1 && i >> t & 1 == 1 {
                            *amp = amp.mul(ph);
                        }
                    }
                }
            }
        }

        fn map1(&mut self, q: usize, f: impl Fn(Amp, Amp) -> (Amp, Amp)) {
            for i in 0..self.amps.len() {
                if i >> q & 1 == 0 {
                    let j = i | (1 << q);
                    let (a0, a1) = f(self.amps[i], self.amps[j]);
                    self.amps[i] = a0;
                    self.amps[j] = a1;
                }
            }
        }

        fn phase1(&mut self, q: usize, theta: f64) {
            let ph = Amp::phase(theta);
            for (i, amp) in self.amps.iter_mut().enumerate() {
                if i >> q & 1 == 1 {
                    *amp = amp.mul(ph);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bell_state() {
            let mut c = Circuit::new(2);
            c.h(0);
            c.cx(0, 1);
            let mut s = State::basis(2, 0);
            s.run(&c);
            let a = s.amps();
            assert!((a[0b00].norm_sq() - 0.5).abs() < 1e-12);
            assert!((a[0b11].norm_sq() - 0.5).abs() < 1e-12);
            assert!(a[0b01].norm_sq() < 1e-12);
        }

        #[test]
        fn t_gate_is_pi_over_4_phase() {
            let mut c = Circuit::new(1);
            c.h(0);
            c.t(0);
            let mut s = State::basis(1, 0);
            s.run(&c);
            let a1 = s.amps()[1];
            let expect = (PI / 4.0).cos() / 2.0_f64.sqrt();
            assert!((a1.re - expect).abs() < 1e-12);
        }

        #[test]
        fn s_equals_two_ts() {
            let mut c1 = Circuit::new(1);
            c1.h(0);
            c1.s(0);
            let mut c2 = Circuit::new(1);
            c2.h(0);
            c2.t(0);
            c2.t(0);
            let mut s1 = State::basis(1, 0);
            s1.run(&c1);
            let mut s2 = State::basis(1, 0);
            s2.run(&c2);
            assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn cphase_matches_lowered_network() {
            // CPhaseRot{k} must equal its 2-CX + 3-rotation lowering.
            use crate::circuit::NoSynth;
            for k in 0..2u8 {
                let mut hi = Circuit::new(2);
                hi.h(0);
                hi.h(1);
                hi.cphase_rot(0, 1, k, false);
                let lo = hi.lower(&NoSynth);
                let mut s1 = State::basis(2, 0);
                s1.run(&hi);
                let mut s2 = State::basis(2, 0);
                s2.run(&lo);
                assert!(
                    (s1.fidelity(&s2) - 1.0).abs() < 1e-10,
                    "k={k} fidelity {}",
                    s1.fidelity(&s2)
                );
            }
        }

        #[test]
        fn toffoli_matches_its_decomposition() {
            use crate::circuit::NoSynth;
            for basis in 0..8 {
                let mut hi = Circuit::new(3);
                hi.h(0); // superpose to exercise phases
                hi.toffoli(0, 1, 2);
                let lo = hi.lower(&NoSynth);
                let mut s1 = State::basis(3, basis);
                s1.run(&hi);
                let mut s2 = State::basis(3, basis);
                s2.run(&lo);
                assert!(
                    (s1.fidelity(&s2) - 1.0).abs() < 1e-10,
                    "basis {basis}: fidelity {}",
                    s1.fidelity(&s2)
                );
            }
        }
    }
}
