//! Circuit characterization: Tables 2 and 3 and the Fig 7 demand
//! profile.
//!
//! * [`LatencyBreakdown`] (Table 2): along one weighted critical path,
//!   the total useful-data-operation latency, the QEC data/ancilla
//!   interaction latency, and the encoded-ancilla preparation latency
//!   that the no-overlap execution would serialize.
//! * [`BandwidthReport`] (Table 3): running at the speed of data, the
//!   average encoded-zero bandwidth needed for QEC and the encoded
//!   pi/8-ancilla bandwidth needed for non-transversal gates.
//! * [`demand_profile`] (Fig 7): the number of encoded zeros that must
//!   be in flight (being prepared or queued) at each instant for the
//!   circuit to never wait on an ancilla.

use crate::circuit::Circuit;
use crate::dag::Dag;
use crate::latency_model::CharacterizationModel;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// Table 2 row: the latency split of a no-overlap execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Column 2: useful data-operation latency on the critical path.
    pub data_op_us: f64,
    /// Column 3: data/ancilla QEC interaction latency on the path.
    pub qec_interact_us: f64,
    /// Column 4: encoded-ancilla preparation latency (QEC zeros plus
    /// pi/8 preps for the path's non-transversal gates).
    pub ancilla_prep_us: f64,
}

impl LatencyBreakdown {
    /// Total serialized execution time.
    pub fn total_us(&self) -> f64 {
        self.data_op_us + self.qec_interact_us + self.ancilla_prep_us
    }

    /// Fraction of the total spent on useful data operations.
    pub fn data_op_share(&self) -> f64 {
        self.data_op_us / self.total_us()
    }

    /// Fraction spent interacting data with encoded ancillae.
    pub fn qec_interact_share(&self) -> f64 {
        self.qec_interact_us / self.total_us()
    }

    /// Fraction spent preparing encoded ancillae.
    pub fn ancilla_prep_share(&self) -> f64 {
        self.ancilla_prep_us / self.total_us()
    }

    /// The speed-of-data lower bound: columns 2 + 3 (the paper's
    /// "minimal running time").
    pub fn speed_of_data_us(&self) -> f64 {
        self.data_op_us + self.qec_interact_us
    }
}

/// Table 3 row: average ancilla bandwidths at the speed of data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthReport {
    /// Average encoded zeros per millisecond needed for QEC.
    pub zero_per_ms: f64,
    /// Average encoded pi/8 ancillae per millisecond.
    pub pi8_per_ms: f64,
    /// Total encoded zeros consumed by QEC over the run.
    pub total_zeros: u64,
    /// Total pi/8 ancillae consumed.
    pub total_pi8: u64,
    /// Speed-of-data runtime (ms).
    pub runtime_ms: f64,
}

/// Full characterization of one benchmark circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitReport {
    /// Circuit name.
    pub name: String,
    /// Number of encoded qubits (data + data ancillae).
    pub n_qubits: usize,
    /// Total gate count (lowered).
    pub gate_count: usize,
    /// Fraction of non-transversal gates (§3.3 reports 40.5-46.9%).
    pub non_transversal_fraction: f64,
    /// Table 2 row.
    pub breakdown: LatencyBreakdown,
    /// Table 3 row.
    pub bandwidth: BandwidthReport,
}

/// Characterizes a lowered circuit under the ion-trap model.
pub fn characterize(circuit: &Circuit) -> CircuitReport {
    characterize_with(circuit, &CharacterizationModel::ion_trap())
}

/// Characterizes a lowered circuit under a custom latency model.
pub fn characterize_with(circuit: &Circuit, model: &CharacterizationModel) -> CircuitReport {
    let dag = Dag::build(circuit);
    let gates = circuit.gates();

    // Critical path weighted by occupied time (data + QEC interact).
    let weight = |i: usize| model.data_latency(&gates[i]) + model.qec_interact();
    let path = dag.critical_path(weight);

    let mut data_op = 0.0;
    let mut interact = 0.0;
    let mut prep = 0.0;
    for &i in &path {
        let g = &gates[i];
        data_op += model.data_latency(g);
        interact += model.qec_interact();
        prep += model.zero_prep(); // two zeros prepared in parallel rows
        if g.needs_pi8_ancilla() {
            prep += model.pi8_prep();
        }
    }
    let breakdown = LatencyBreakdown {
        data_op_us: data_op,
        qec_interact_us: interact,
        ancilla_prep_us: prep,
    };

    // Bandwidths at the speed of data.
    let sched = Schedule::speed_of_data(circuit, model);
    let runtime_ms = sched.makespan_us / 1000.0;
    let mut total_zeros = 0u64;
    let mut total_pi8 = 0u64;
    for g in gates {
        total_zeros += model.zeros_per_qec() * g.qubits().len() as u64;
        if g.needs_pi8_ancilla() {
            total_pi8 += 1;
            total_zeros += model.zeros_per_pi8();
        }
    }
    let bandwidth = BandwidthReport {
        zero_per_ms: if runtime_ms > 0.0 {
            total_zeros as f64 / runtime_ms
        } else {
            0.0
        },
        pi8_per_ms: if runtime_ms > 0.0 {
            total_pi8 as f64 / runtime_ms
        } else {
            0.0
        },
        total_zeros,
        total_pi8,
        runtime_ms,
    };

    CircuitReport {
        name: circuit.name.clone(),
        n_qubits: circuit.n_qubits(),
        gate_count: circuit.len(),
        non_transversal_fraction: circuit.non_transversal_fraction(),
        breakdown,
        bandwidth,
    }
}

/// One point of the Fig 7 demand profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandPoint {
    /// Time into the execution (us).
    pub t_us: f64,
    /// Encoded zeros that must be in flight (being prepared) at `t`.
    pub zeros_in_flight: f64,
}

/// Computes the Fig 7 series: for the circuit to run at the speed of
/// data, every QEC consumption at time `t` must have its ancillae in
/// preparation during `[t - zero_prep, t]`; the profile counts the
/// overlapping preparation windows at `samples` evenly spaced times.
pub fn demand_profile(
    circuit: &Circuit,
    model: &CharacterizationModel,
    samples: usize,
) -> Vec<DemandPoint> {
    let sched = Schedule::speed_of_data(circuit, model);
    let gates = circuit.gates();
    // Each gate consumes its QEC zeros at its end time.
    let mut events: Vec<(f64, u64)> = sched
        .ends()
        .into_iter()
        .zip(gates)
        .map(|(end, g)| {
            let mut zeros = model.zeros_per_qec() * g.qubits().len() as u64;
            if g.needs_pi8_ancilla() {
                zeros += model.zeros_per_pi8();
            }
            (end, zeros)
        })
        .collect();
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let window = model.zero_prep();
    let horizon = sched.makespan_us.max(1.0);
    // A consumption at time e keeps its zeros in flight during the
    // preparation interval (e - window, e]; at time t we count events
    // with e in [t, t + window).
    let mut points = Vec::with_capacity(samples);
    let mut lo = 0usize; // first event with e >= t
    let mut hi = 0usize; // first event with e >= t + window
    let mut in_window = 0u64;
    for s in 0..samples {
        let t = horizon * (s as f64 + 0.5) / samples as f64;
        while hi < events.len() && events[hi].0 < t + window {
            in_window += events[hi].1;
            hi += 1;
        }
        while lo < events.len() && events[lo].0 < t {
            in_window -= events[lo].1;
            lo += 1;
        }
        points.push(DemandPoint {
            t_us: t,
            zeros_in_flight: in_window as f64,
        });
    }
    points
}

/// One point of a parallelism profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelismPoint {
    /// Time into the execution (us).
    pub t_us: f64,
    /// Gates executing concurrently at `t`.
    pub gates_in_flight: f64,
}

/// The number of gates in flight over the speed-of-data schedule — the
/// parallelism the architecture must serve, and the driver behind the
/// Fig 7 demand peaks and the Table 3 bandwidth gap between the QRCA
/// and the QCLA.
pub fn parallelism_profile(
    circuit: &Circuit,
    model: &CharacterizationModel,
    samples: usize,
) -> Vec<ParallelismPoint> {
    let sched = Schedule::speed_of_data(circuit, model);
    let horizon = sched.makespan_us.max(1.0);
    // Sweep events: +1 at start, -1 at end.
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * sched.start.len());
    for (s, d) in sched.start.iter().zip(&sched.duration) {
        events.push((*s, 1));
        events.push((s + d, -1));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut points = Vec::with_capacity(samples);
    let mut idx = 0usize;
    let mut in_flight = 0i64;
    for s in 0..samples {
        let t = horizon * (s as f64 + 0.5) / samples as f64;
        while idx < events.len() && events[idx].0 <= t {
            in_flight += events[idx].1;
            idx += 1;
        }
        points.push(ParallelismPoint {
            t_us: t,
            gates_in_flight: in_flight as f64,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut c = Circuit::named(2, "toy");
        c.h(0);
        c.cx(0, 1);
        c.t(1);
        c
    }

    #[test]
    fn breakdown_orders_as_in_table2() {
        let r = characterize(&toy());
        // prep >> interact > data op, as in every Table 2 row.
        assert!(r.breakdown.ancilla_prep_us > r.breakdown.qec_interact_us);
        assert!(r.breakdown.qec_interact_us > r.breakdown.data_op_us);
        let shares = r.breakdown.data_op_share()
            + r.breakdown.qec_interact_share()
            + r.breakdown.ancilla_prep_share();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toy_breakdown_is_exact() {
        let r = characterize(&toy());
        // Critical path = all three gates (serial chain).
        assert_eq!(r.breakdown.data_op_us, 1.0 + 10.0 + 61.0);
        assert_eq!(r.breakdown.qec_interact_us, 3.0 * 122.0);
        assert_eq!(r.breakdown.ancilla_prep_us, 3.0 * 323.0 + 668.0);
    }

    #[test]
    fn bandwidth_counts_zeros_and_pi8() {
        let r = characterize(&toy());
        // H: 2 zeros; CX: 4; T: 2 + 1 gadget feed. Total 9, one pi/8.
        assert_eq!(r.bandwidth.total_zeros, 9);
        assert_eq!(r.bandwidth.total_pi8, 1);
        assert!(r.bandwidth.zero_per_ms > 0.0);
    }

    #[test]
    fn demand_profile_integrates_to_total_window_mass() {
        let c = toy();
        let model = CharacterizationModel::ion_trap();
        let profile = demand_profile(&c, &model, 4000);
        assert_eq!(profile.len(), 4000);
        // Each consumption at time e contributes in-flight mass equal
        // to |(e - window, e] intersect [0, horizon)|. Compare the
        // sampled average against that exact integral.
        let sched = crate::schedule::Schedule::speed_of_data(&c, &model);
        let horizon = sched.makespan_us;
        let window = model.zero_prep();
        let weights = [2.0, 4.0, 3.0]; // H, CX, T(+feed) zeros
        let mass: f64 = sched
            .ends()
            .iter()
            .zip(weights)
            .map(|(&e, w)| w * (e.min(horizon) - (e - window).max(0.0)).max(0.0))
            .sum();
        let expected = mass / horizon;
        let avg: f64 =
            profile.iter().map(|p| p.zeros_in_flight).sum::<f64>() / profile.len() as f64;
        assert!(
            (avg - expected).abs() / expected < 0.02,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn empty_circuit_is_safe() {
        let c = Circuit::new(1);
        let r = characterize(&c);
        assert_eq!(r.gate_count, 0);
        assert_eq!(r.bandwidth.total_zeros, 0);
    }

    #[test]
    fn parallelism_profile_of_serial_chain_is_one() {
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.h(0);
        }
        let model = CharacterizationModel::ion_trap();
        let prof = parallelism_profile(&c, &model, 100);
        for p in &prof {
            assert!((p.gates_in_flight - 1.0).abs() < 1e-9, "at {}", p.t_us);
        }
    }

    #[test]
    fn parallelism_profile_sees_width() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        let model = CharacterizationModel::ion_trap();
        let prof = parallelism_profile(&c, &model, 50);
        assert!(prof.iter().all(|p| (p.gates_in_flight - 4.0).abs() < 1e-9));
    }
}
