//! The logical gate set over Steane-encoded qubits.
//!
//! Gates are classified the way the paper's analysis needs them:
//!
//! * **transversal** gates (X, Y, Z, H, S, CX — §2.1) execute directly
//!   on the encoded block;
//! * the **pi/8 gate** (T) is non-transversal and consumes an encoded
//!   pi/8 ancilla (§2.4);
//! * finer **pi/2^k phase rotations** have no transversal or
//!   ancilla-gadget implementation and must be *synthesized* into H/T
//!   sequences (§2.5, Fowler's technique) before a circuit is
//!   "physical";
//! * **Toffoli** is a convenience IR node that kernels decompose into
//!   the standard 15-gate Clifford+T network.
//!
//! Phase-rotation convention: `PhaseRot { k, .. }` applies
//! `diag(1, exp(i*pi/2^k))`, so `k = 0` is Z, `k = 1` is S, `k = 2` is
//! the pi/8 gate T (named for its `exp(±i*pi/8)` eigenphases), and
//! `k >= 3` requires synthesis.

use serde::Error;

/// A logical gate instance (qubit indices refer to encoded qubits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate S = `PhaseRot{k:1}`.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// pi/8 gate T = `PhaseRot{k:2}` (non-transversal).
    T(usize),
    /// Inverse pi/8 gate.
    Tdg(usize),
    /// Controlled-X on (control, target).
    Cx(usize, usize),
    /// Toffoli (control, control, target); decomposed before analysis.
    Toffoli(usize, usize, usize),
    /// `diag(1, exp(±i*pi/2^k))` on a qubit; `dagger` negates the angle.
    PhaseRot {
        /// Target qubit.
        q: usize,
        /// Angle exponent: rotation by pi/2^k.
        k: u8,
        /// Use the negative angle.
        dagger: bool,
    },
    /// Controlled `PhaseRot` on (control, target); decomposed to
    /// two CX plus three `PhaseRot{k+1}` before analysis (§2.5).
    CPhaseRot {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
        /// Angle exponent of the *controlled* rotation.
        k: u8,
        /// Use the negative angle.
        dagger: bool,
    },
}

impl Gate {
    /// The encoded qubits this gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::PhaseRot { q, .. } => vec![q],
            Gate::Cx(c, t) | Gate::CPhaseRot { c, t, .. } => vec![c, t],
            Gate::Toffoli(a, b, t) => vec![a, b, t],
        }
    }

    /// True when the gate is directly executable on the encoded data:
    /// transversal Cliffords plus the ancilla-assisted T. Everything
    /// else must be lowered first ([`crate::circuit::Circuit::lower`]).
    pub fn is_physical(&self) -> bool {
        match *self {
            Gate::Toffoli(..) | Gate::CPhaseRot { .. } => false,
            Gate::PhaseRot { k, .. } => k <= 2,
            _ => true,
        }
    }

    /// True for transversal encoded gates (no extra encoded ancilla).
    pub fn is_transversal(&self) -> bool {
        match *self {
            Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::Cx(..) => true,
            Gate::PhaseRot { k, .. } => k <= 1,
            Gate::T(_) | Gate::Tdg(_) | Gate::Toffoli(..) | Gate::CPhaseRot { .. } => false,
        }
    }

    /// True for gates that consume one encoded pi/8 ancilla (§2.4).
    pub fn needs_pi8_ancilla(&self) -> bool {
        matches!(
            *self,
            Gate::T(_) | Gate::Tdg(_) | Gate::PhaseRot { k: 2, .. }
        )
    }
}

impl Gate {
    /// Appends the compact text form of this gate — `cx 0 1`,
    /// `pr 3 4 -` (`-`/`+` for dagger) — the per-gate unit of the
    /// persisted circuit encoding ([`crate::circuit::Circuit`]'s
    /// serde impl joins these with `;` into one program string, which
    /// parses orders of magnitude faster than a JSON tree with one
    /// node per gate).
    pub fn encode_compact(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = match *self {
            Gate::X(q) => write!(out, "x {q}"),
            Gate::Y(q) => write!(out, "y {q}"),
            Gate::Z(q) => write!(out, "z {q}"),
            Gate::H(q) => write!(out, "h {q}"),
            Gate::S(q) => write!(out, "s {q}"),
            Gate::Sdg(q) => write!(out, "sdg {q}"),
            Gate::T(q) => write!(out, "t {q}"),
            Gate::Tdg(q) => write!(out, "tdg {q}"),
            Gate::Cx(c, t) => write!(out, "cx {c} {t}"),
            Gate::Toffoli(a, b, t) => write!(out, "ccx {a} {b} {t}"),
            Gate::PhaseRot { q, k, dagger } => {
                write!(out, "pr {q} {k} {}", if dagger { '-' } else { '+' })
            }
            Gate::CPhaseRot { c, t, k, dagger } => {
                write!(out, "cpr {c} {t} {k} {}", if dagger { '-' } else { '+' })
            }
        };
    }

    /// Parses one compact gate token (the inverse of
    /// [`Gate::encode_compact`]).
    ///
    /// # Errors
    ///
    /// A message naming the defect — persisted artifacts are
    /// untrusted input, so every malformed shape is a clean error.
    pub fn decode_compact(token: &str) -> Result<Self, Error> {
        let mut parts = token.split_ascii_whitespace();
        let op = parts
            .next()
            .ok_or_else(|| Error::custom("empty gate token"))?;
        let mut num = |what: &str| -> Result<usize, Error> {
            parts
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(|| Error::custom(format!("gate `{op}`: bad or missing {what}")))
        };
        let gate = match op {
            "x" => Gate::X(num("qubit")?),
            "y" => Gate::Y(num("qubit")?),
            "z" => Gate::Z(num("qubit")?),
            "h" => Gate::H(num("qubit")?),
            "s" => Gate::S(num("qubit")?),
            "sdg" => Gate::Sdg(num("qubit")?),
            "t" => Gate::T(num("qubit")?),
            "tdg" => Gate::Tdg(num("qubit")?),
            "cx" => Gate::Cx(num("control")?, num("target")?),
            "ccx" => Gate::Toffoli(num("control")?, num("control")?, num("target")?),
            "pr" | "cpr" => {
                let (c, t) = if op == "cpr" {
                    let c = num("control")?;
                    (Some(c), num("target")?)
                } else {
                    (None, num("qubit")?)
                };
                let k = u8::try_from(num("angle exponent")?)
                    .map_err(|_| Error::custom(format!("gate `{op}`: angle exponent > 255")))?;
                let dagger = match parts.next() {
                    Some("+") => false,
                    Some("-") => true,
                    _ => return Err(Error::custom(format!("gate `{op}`: bad dagger sign"))),
                };
                match c {
                    Some(c) => Gate::CPhaseRot { c, t, k, dagger },
                    None => Gate::PhaseRot { q: t, k, dagger },
                }
            }
            other => return Err(Error::custom(format!("unknown gate opcode `{other}`"))),
        };
        if parts.next().is_some() {
            return Err(Error::custom(format!("gate `{op}`: trailing arguments")));
        }
        Ok(gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Gate::H(0).is_transversal());
        assert!(Gate::Cx(0, 1).is_transversal());
        assert!(!Gate::T(0).is_transversal());
        assert!(Gate::T(0).needs_pi8_ancilla());
        assert!(Gate::T(0).is_physical());
        assert!(!Gate::Toffoli(0, 1, 2).is_physical());
        assert!(!Gate::PhaseRot {
            q: 0,
            k: 5,
            dagger: false
        }
        .is_physical());
        assert!(Gate::PhaseRot {
            q: 0,
            k: 1,
            dagger: false
        }
        .is_transversal());
        assert!(Gate::PhaseRot {
            q: 0,
            k: 2,
            dagger: true
        }
        .needs_pi8_ancilla());
    }

    #[test]
    fn compact_encoding_round_trips_every_shape() {
        let gates = [
            Gate::X(0),
            Gate::Y(7),
            Gate::Z(2),
            Gate::H(1),
            Gate::S(3),
            Gate::Sdg(4),
            Gate::T(5),
            Gate::Tdg(6),
            Gate::Cx(1, 2),
            Gate::Toffoli(0, 1, 2),
            Gate::PhaseRot {
                q: 3,
                k: 5,
                dagger: true,
            },
            Gate::CPhaseRot {
                c: 0,
                t: 9,
                k: 4,
                dagger: false,
            },
        ];
        for g in gates {
            let mut token = String::new();
            g.encode_compact(&mut token);
            let back = Gate::decode_compact(&token).expect("round trip");
            assert_eq!(back, g, "token `{token}`");
        }
    }

    #[test]
    fn compact_decoding_rejects_malformed_tokens() {
        for bad in ["", "cx", "cx 0", "cx 0 x", "nope 0", "pr 1 5 ?", "h 1 2"] {
            assert!(Gate::decode_compact(bad).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::Cx(3, 5).qubits(), vec![3, 5]);
        assert_eq!(Gate::Toffoli(1, 2, 3).qubits(), vec![1, 2, 3]);
        assert_eq!(
            Gate::CPhaseRot {
                c: 0,
                t: 9,
                k: 4,
                dagger: false
            }
            .qubits(),
            vec![0, 9]
        );
    }
}
