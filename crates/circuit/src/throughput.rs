//! Execution time under a constrained, steady ancilla supply — the
//! Fig 8 experiment.
//!
//! The factory farm produces encoded zeros at a steady rate. A gate may
//! finish (i.e. run its trailing QEC) only when enough zeros have
//! accumulated; otherwise it stalls. As the supply rate grows, the
//! execution time falls and then plateaus at the speed-of-data time —
//! the shape of all three panels of Fig 8.

use crate::circuit::Circuit;
use crate::dag::Dag;
use crate::latency_model::CharacterizationModel;

/// Executes the circuit with encoded zeros arriving at `zeros_per_ms`,
/// returning the makespan in microseconds.
///
/// Supply model: production starts at t = 0 and accumulates (a gate may
/// consume zeros banked while data dependencies were resolving). Gates
/// acquire their zeros in dataflow order; pi/8 gates additionally
/// consume the gadget-feed zero. A rate of `f64::INFINITY` reproduces
/// the speed-of-data schedule exactly.
///
/// # Panics
///
/// Panics if `zeros_per_ms <= 0` (use `INFINITY` for unconstrained).
pub fn execution_time_us(
    circuit: &Circuit,
    model: &CharacterizationModel,
    zeros_per_ms: f64,
) -> f64 {
    assert!(zeros_per_ms > 0.0, "throughput must be positive");
    let rate_per_us = zeros_per_ms / 1000.0;
    let dag = Dag::build(circuit);
    let gates = circuit.gates();

    let mut end = vec![0.0f64; gates.len()];
    let mut consumed: u64 = 0;
    let mut makespan = 0.0f64;
    for i in 0..gates.len() {
        let g = &gates[i];
        let mut ready = 0.0f64;
        for &p in dag.preds(i) {
            ready = ready.max(end[p]);
        }
        let mut zeros = model.zeros_per_qec() * g.qubits().len() as u64;
        if g.needs_pi8_ancilla() {
            zeros += model.zeros_per_pi8();
        }
        consumed += zeros;
        // Earliest time the cumulative production covers `consumed`.
        let supply_time = if rate_per_us.is_infinite() {
            0.0
        } else {
            consumed as f64 / rate_per_us
        };
        // The zeros are needed at QEC time (the end of the gate), so
        // the gate may start on data readiness and stall only if the
        // supply has not yet covered its consumption by then.
        let dur = model.data_latency(g) + model.qec_interact();
        let e = (ready + dur).max(supply_time);
        end[i] = e;
        makespan = makespan.max(e);
    }
    makespan
}

/// One point of a Fig 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Steady encoded-zero throughput (per ms).
    pub zeros_per_ms: f64,
    /// Resulting execution time (us).
    pub execution_us: f64,
}

/// Sweeps `points` log-spaced supply rates between `lo` and `hi`
/// zeros/ms (inclusive), producing the Fig 8 series for one circuit.
pub fn throughput_sweep(
    circuit: &Circuit,
    model: &CharacterizationModel,
    lo: f64,
    hi: f64,
    points: usize,
) -> Vec<ThroughputPoint> {
    assert!(lo > 0.0 && hi > lo && points >= 2, "bad sweep range");
    let step = (hi / lo).powf(1.0 / (points - 1) as f64);
    (0..points)
        .map(|i| {
            let r = lo * step.powi(i as i32);
            ThroughputPoint {
                zeros_per_ms: r,
                execution_us: execution_time_us(circuit, model, r),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn toy() -> Circuit {
        let mut c = Circuit::named(3, "toy");
        for _ in 0..10 {
            c.h(0);
            c.cx(0, 1);
            c.cx(1, 2);
            c.t(2);
        }
        c
    }

    #[test]
    fn infinite_supply_matches_speed_of_data() {
        let c = toy();
        let m = CharacterizationModel::ion_trap();
        let sod = Schedule::speed_of_data(&c, &m).makespan_us;
        let t = execution_time_us(&c, &m, f64::INFINITY);
        assert!((t - sod).abs() < 1e-9, "{t} vs {sod}");
    }

    #[test]
    fn sweep_is_monotone_and_plateaus() {
        let c = toy();
        let m = CharacterizationModel::ion_trap();
        let pts = throughput_sweep(&c, &m, 0.5, 5000.0, 25);
        for w in pts.windows(2) {
            assert!(
                w[1].execution_us <= w[0].execution_us + 1e-9,
                "throughput sweep not monotone: {w:?}"
            );
        }
        // Starved regime is supply-limited.
        let total_zeros: f64 = 10.0 * (2.0 + 4.0 + 4.0 + 3.0);
        let starved = pts[0];
        let supply_bound = total_zeros / (starved.zeros_per_ms / 1000.0);
        assert!((starved.execution_us - supply_bound).abs() / supply_bound < 0.05);
        // Saturated regime hits the speed-of-data plateau.
        let sod = Schedule::speed_of_data(&c, &m).makespan_us;
        assert!((pts.last().expect("points").execution_us - sod).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let c = toy();
        let m = CharacterizationModel::ion_trap();
        let _ = execution_time_us(&c, &m, 0.0);
    }
}
