//! Dataflow DAG over a logical circuit: per-qubit dependency chains,
//! levels, and weighted longest (critical) paths.

use crate::circuit::Circuit;

/// The dependency structure of a circuit.
///
/// Gate `j` depends on gate `i` when they share a qubit and `i` is the
/// most recent earlier gate on that qubit (last-writer chains — quantum
/// gates both read and write every qubit they touch).
#[derive(Debug, Clone)]
pub struct Dag {
    preds: Vec<Vec<usize>>,
}

impl Dag {
    /// Builds the DAG for a circuit.
    pub fn build(circuit: &Circuit) -> Self {
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        let mut preds = Vec::with_capacity(circuit.len());
        for (i, g) in circuit.gates().iter().enumerate() {
            let mut p = Vec::new();
            for q in g.qubits() {
                if let Some(prev) = last_on_qubit[q] {
                    if !p.contains(&prev) {
                        p.push(prev);
                    }
                }
                last_on_qubit[q] = Some(i);
            }
            preds.push(p);
        }
        Dag { preds }
    }

    /// Predecessors of gate `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no gates.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// ASAP start times given a per-gate duration function; returns
    /// `(start_times, makespan)`. Gates are already in topological
    /// order (program order), so one forward pass suffices.
    pub fn asap(&self, duration: impl Fn(usize) -> f64) -> (Vec<f64>, f64) {
        let mut start = vec![0.0f64; self.len()];
        let mut makespan = 0.0f64;
        for i in 0..self.len() {
            let mut s = 0.0f64;
            for &p in &self.preds[i] {
                let end = start[p] + duration(p);
                if end > s {
                    s = end;
                }
            }
            start[i] = s;
            let end = s + duration(i);
            if end > makespan {
                makespan = end;
            }
        }
        (start, makespan)
    }

    /// The gates on one weighted critical path (ties broken towards
    /// earlier gates), as indices in program order.
    pub fn critical_path(&self, duration: impl Fn(usize) -> f64) -> Vec<usize> {
        if self.is_empty() {
            return Vec::new();
        }
        // Longest path ending at each node.
        let mut dist = vec![0.0f64; self.len()];
        let mut back: Vec<Option<usize>> = vec![None; self.len()];
        for i in 0..self.len() {
            let mut best = 0.0f64;
            let mut who = None;
            for &p in &self.preds[i] {
                let d = dist[p];
                if d > best {
                    best = d;
                    who = Some(p);
                }
            }
            dist[i] = best + duration(i);
            back[i] = who;
        }
        let mut end = 0;
        for i in 1..self.len() {
            if dist[i] > dist[end] {
                end = i;
            }
        }
        let mut path = vec![end];
        let mut cur = end;
        while let Some(p) = back[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth of the circuit in gate levels (unit durations).
    pub fn depth(&self) -> usize {
        self.critical_path(|_| 1.0).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.h(2);
        c.h(0); // parallel with the tail
        c
    }

    #[test]
    fn preds_follow_qubit_chains() {
        let d = Dag::build(&chain3());
        assert!(d.preds(0).is_empty());
        assert_eq!(d.preds(1), &[0]);
        assert_eq!(d.preds(2), &[1]);
        assert_eq!(d.preds(3), &[2]);
        assert_eq!(d.preds(4), &[1]); // H(0) waits on CX(0,1)
    }

    #[test]
    fn asap_respects_dependencies() {
        let d = Dag::build(&chain3());
        let (start, makespan) = d.asap(|_| 1.0);
        assert_eq!(start, vec![0.0, 1.0, 2.0, 3.0, 2.0]);
        assert_eq!(makespan, 4.0);
    }

    #[test]
    fn critical_path_picks_longest_chain() {
        let d = Dag::build(&chain3());
        let path = d.critical_path(|_| 1.0);
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert_eq!(d.depth(), 4);
    }

    #[test]
    fn weighted_critical_path_can_differ() {
        let mut c = Circuit::new(2);
        c.h(0); // 0
        c.h(0); // 1: chain of two cheap gates on q0
        c.t(1); // 2: one expensive gate on q1
        let d = Dag::build(&c);
        assert_eq!(d.critical_path(|_| 1.0), vec![0, 1]);
        let weights = [1.0, 1.0, 5.0];
        assert_eq!(d.critical_path(|i| weights[i]), vec![2]);
    }

    #[test]
    fn empty_circuit() {
        let d = Dag::build(&Circuit::new(1));
        assert!(d.is_empty());
        assert_eq!(d.depth(), 0);
        let (s, m) = d.asap(|_| 1.0);
        assert!(s.is_empty());
        assert_eq!(m, 0.0);
    }

    #[test]
    fn shared_pred_deduplicated() {
        let mut c = Circuit::new(2);
        c.cx(0, 1); // 0
        c.cx(0, 1); // 1 depends on 0 via both qubits -> one pred
        let d = Dag::build(&c);
        assert_eq!(d.preds(1), &[0]);
    }
}
