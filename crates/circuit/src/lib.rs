//! # qods-circuit — logical circuit IR and speed-of-data analysis
//!
//! This crate implements §3 of "Running a Quantum Circuit at the Speed
//! of Data": a logical-gate IR over Steane-encoded qubits, dataflow
//! scheduling, and the characterization machinery producing
//!
//! * **Table 2** — the latency split between useful data operations,
//!   data/ancilla QEC interaction, and (data-independent) encoded
//!   ancilla preparation;
//! * **Table 3** — the average encoded-zero and pi/8 ancilla bandwidths
//!   a circuit needs to run at the speed of data;
//! * **Figure 7** — the in-flight encoded-ancilla demand profile over
//!   the course of execution; and
//! * **Figure 8** — execution time as a function of a steady ancilla
//!   throughput.
//!
//! It also provides two functional simulators used to *verify* the
//! benchmark kernels: a permutation simulator for classical reversible
//! networks (adders) and a dense statevector simulator for small
//! unitary circuits (QFT).
//!
//! # Example
//!
//! ```
//! use qods_circuit::circuit::Circuit;
//! use qods_circuit::characterize::characterize;
//!
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1);
//! c.t(1);
//! let report = characterize(&c);
//! // Ancilla preparation dominates even a 3-gate circuit.
//! assert!(report.breakdown.ancilla_prep_us > report.breakdown.data_op_us);
//! ```

pub mod characterize;
pub mod circuit;
pub mod dag;
pub mod gate;
pub mod latency_model;
pub mod schedule;
pub mod sim;
pub mod throughput;

pub use characterize::{characterize, CircuitReport, LatencyBreakdown};
pub use circuit::Circuit;
pub use gate::Gate;
pub use latency_model::CharacterizationModel;
