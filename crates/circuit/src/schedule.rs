//! ASAP scheduling of a lowered circuit at the speed of data.
//!
//! At the speed of data (§1), ancilla preparation is fully off the
//! critical path: each gate occupies its qubits for its data-side
//! latency plus the QEC interaction that must follow it, and nothing
//! else. The schedule this module produces is the paper's "execution
//! limited only by data dependencies".

use crate::circuit::Circuit;
use crate::dag::Dag;
use crate::latency_model::CharacterizationModel;

/// A speed-of-data schedule: per-gate start times and the makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Start time of each gate (us).
    pub start: Vec<f64>,
    /// Total execution time (us), including each gate's trailing QEC.
    pub makespan_us: f64,
    /// Per-gate occupied duration (data latency + QEC interact).
    pub duration: Vec<f64>,
}

impl Schedule {
    /// Builds the speed-of-data schedule for a lowered circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-physical gates.
    pub fn speed_of_data(circuit: &Circuit, model: &CharacterizationModel) -> Self {
        Self::speed_of_data_on(&Dag::build(circuit), circuit, model)
    }

    /// Like [`Schedule::speed_of_data`], but reuses an already-built
    /// [`Dag`] — callers that hold one (e.g. an architectural
    /// simulation context) avoid rebuilding the dependency structure.
    ///
    /// # Panics
    ///
    /// Panics if `dag` was not built from `circuit` (length mismatch)
    /// or the circuit contains non-physical gates.
    pub fn speed_of_data_on(dag: &Dag, circuit: &Circuit, model: &CharacterizationModel) -> Self {
        assert_eq!(dag.len(), circuit.len(), "DAG does not match circuit");
        let durations: Vec<f64> = circuit
            .gates()
            .iter()
            .map(|g| model.data_latency(g) + model.qec_interact())
            .collect();
        let (start, makespan) = dag.asap(|i| durations[i]);
        Schedule {
            start,
            makespan_us: makespan,
            duration: durations,
        }
    }

    /// Gate completion times (start + duration).
    pub fn ends(&self) -> Vec<f64> {
        self.start
            .iter()
            .zip(&self.duration)
            .map(|(s, d)| s + d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_accumulates_gate_plus_qec() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.h(0);
        let m = CharacterizationModel::ion_trap();
        let s = Schedule::speed_of_data(&c, &m);
        // Each H occupies 1 + 122 us.
        assert_eq!(s.start, vec![0.0, 123.0]);
        assert_eq!(s.makespan_us, 246.0);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        let m = CharacterizationModel::ion_trap();
        let s = Schedule::speed_of_data(&c, &m);
        assert_eq!(s.start, vec![0.0, 0.0]);
        assert_eq!(s.makespan_us, 123.0);
    }

    #[test]
    fn t_gate_occupies_longer() {
        let mut c = Circuit::new(1);
        c.t(0);
        let m = CharacterizationModel::ion_trap();
        let s = Schedule::speed_of_data(&c, &m);
        assert_eq!(s.makespan_us, 61.0 + 122.0);
    }
}
