//! Logical circuits: a builder over [`Gate`] plus the lowering passes
//! that turn kernel-level IR (Toffoli, controlled rotations) into the
//! physical gate set {transversal Cliffords, T}.

use crate::gate::Gate;
use serde::{Deserialize, Error, Serialize, Value};

/// A logical circuit over `n_qubits` encoded qubits.
///
/// # Example
///
/// ```
/// use qods_circuit::circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0);
/// c.toffoli(0, 1, 2);
/// let lowered = c.lower(&qods_circuit::circuit::NoSynth);
/// // Toffoli became the standard 15-gate Clifford+T network.
/// assert_eq!(lowered.len(), 16);
/// assert!(lowered.gates().iter().all(|g| g.is_physical()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
    /// Human-readable name used in reports ("32-Bit QRCA" etc.).
    pub name: String,
}

/// How `lower` turns a `PhaseRot{k>=3}` into physical gates.
///
/// The real implementation lives in `qods-synth` (Fowler-style search
/// over H/T sequences); the trait keeps this crate independent of it.
pub trait RotationSynthesizer {
    /// A physical gate sequence approximating `diag(1, e^{±i pi/2^k})`
    /// on qubit `q`. Implementations must only emit physical gates.
    fn synthesize(&self, q: usize, k: u8, dagger: bool) -> Vec<Gate>;
}

/// A synthesizer for circuits that contain no deep rotations; it
/// panics if ever invoked. Useful for adders (Clifford+T only).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSynth;

impl RotationSynthesizer for NoSynth {
    fn synthesize(&self, _q: usize, k: u8, _dagger: bool) -> Vec<Gate> {
        // qods-lint: allow(P1) -- the panic IS this type's documented contract: NoSynth asserts a rotation-free circuit
        panic!("circuit contains a pi/2^{k} rotation but no synthesizer was provided")
    }
}

impl Circuit {
    /// An empty circuit.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// An empty named circuit.
    pub fn named(n_qubits: usize, name: impl Into<String>) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// Number of encoded qubits (including data ancillae).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the circuit.
    pub fn push(&mut self, g: Gate) {
        for q in g.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {g:?} references qubit {q} >= {}",
                self.n_qubits
            );
        }
        self.gates.push(g);
    }

    /// Appends X.
    pub fn x(&mut self, q: usize) {
        self.push(Gate::X(q));
    }

    /// Appends H.
    pub fn h(&mut self, q: usize) {
        self.push(Gate::H(q));
    }

    /// Appends S.
    pub fn s(&mut self, q: usize) {
        self.push(Gate::S(q));
    }

    /// Appends T.
    pub fn t(&mut self, q: usize) {
        self.push(Gate::T(q));
    }

    /// Appends T-dagger.
    pub fn tdg(&mut self, q: usize) {
        self.push(Gate::Tdg(q));
    }

    /// Appends CX.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.push(Gate::Cx(c, t));
    }

    /// Appends a Toffoli (to be lowered later).
    pub fn toffoli(&mut self, a: usize, b: usize, t: usize) {
        self.push(Gate::Toffoli(a, b, t));
    }

    /// Appends a pi/2^k phase rotation.
    pub fn phase_rot(&mut self, q: usize, k: u8, dagger: bool) {
        self.push(Gate::PhaseRot { q, k, dagger });
    }

    /// Appends a controlled pi/2^k phase rotation.
    pub fn cphase_rot(&mut self, c: usize, t: usize, k: u8, dagger: bool) {
        self.push(Gate::CPhaseRot { c, t, k, dagger });
    }

    /// Appends a SWAP as three CX gates.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Counts gates satisfying a predicate.
    pub fn count_where(&self, pred: impl Fn(&Gate) -> bool) -> usize {
        self.gates.iter().filter(|g| pred(g)).count()
    }

    /// Fraction of gates that are non-transversal (the paper reports
    /// 40.5% / 41.0% / 46.9% for its three benchmarks).
    pub fn non_transversal_fraction(&self) -> f64 {
        if self.gates.is_empty() {
            return 0.0;
        }
        self.count_where(|g| !g.is_transversal()) as f64 / self.gates.len() as f64
    }

    /// Lowers the circuit to the physical gate set:
    ///
    /// * `Toffoli` becomes the standard 7T + 6CX + 2H network;
    /// * `CPhaseRot{k}` becomes 2 CX + 3 `PhaseRot{k+1}` (§2.5);
    /// * `PhaseRot{k<=2}` becomes Z / S(dg) / T(dg);
    /// * `PhaseRot{k>=3}` is delegated to the [`RotationSynthesizer`].
    ///
    /// Lowering is iterated until fixpoint, so a `CPhaseRot{1}` (whose
    /// expansion contains `PhaseRot{2}` = T) fully lowers in one call.
    pub fn lower(&self, synth: &impl RotationSynthesizer) -> Circuit {
        let mut out = Circuit::named(self.n_qubits, self.name.clone());
        for g in &self.gates {
            lower_gate(*g, synth, &mut out);
        }
        out
    }
}

// Hand-written serde. Two deliberate choices: (1) the gate list is
// ONE compact program string (`"h 0;cx 0 1;..."` —
// [`Gate::encode_compact`] tokens joined with `;`) rather than a JSON
// node per gate, because persisted circuits run to tens of thousands
// of gates and a per-gate `Value` tree costs ~10x the parse time of
// one linear string scan; (2) deserialization re-validates qubit
// bounds, so a corrupt or hand-edited artifact reports a clean
// `Error` instead of tripping `push`'s panic on the next consumer.
impl Serialize for Circuit {
    fn to_value(&self) -> Value {
        // ~8 bytes per gate; exact size is not worth a second pass.
        let mut program = String::with_capacity(self.gates.len() * 8);
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                program.push(';');
            }
            g.encode_compact(&mut program);
        }
        Value::Object(vec![
            ("n_qubits".to_string(), self.n_qubits.to_value()),
            ("name".to_string(), self.name.to_value()),
            ("gates".to_string(), Value::Str(program)),
        ])
    }
}

impl Deserialize for Circuit {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("circuit must be an object"))?;
        let n_qubits = usize::from_value(serde::field(fields, "n_qubits")?)?;
        let name = String::from_value(serde::field(fields, "name")?)?;
        let program = match serde::field(fields, "gates")? {
            Value::Str(s) => s,
            _ => return Err(Error::custom("circuit gates must be a program string")),
        };
        let mut gates = Vec::new();
        if !program.is_empty() {
            for token in program.split(';') {
                let g = Gate::decode_compact(token)?;
                for q in g.qubits() {
                    if q >= n_qubits {
                        return Err(Error::custom(format!(
                            "gate {g:?} references qubit {q} >= {n_qubits}"
                        )));
                    }
                }
                gates.push(g);
            }
        }
        Ok(Circuit {
            n_qubits,
            gates,
            name,
        })
    }
}

fn lower_gate(g: Gate, synth: &impl RotationSynthesizer, out: &mut Circuit) {
    match g {
        Gate::Toffoli(a, b, t) => {
            // Standard Clifford+T Toffoli (Nielsen & Chuang Fig 4.9).
            out.push(Gate::H(t));
            out.push(Gate::Cx(b, t));
            out.push(Gate::Tdg(t));
            out.push(Gate::Cx(a, t));
            out.push(Gate::T(t));
            out.push(Gate::Cx(b, t));
            out.push(Gate::Tdg(t));
            out.push(Gate::Cx(a, t));
            out.push(Gate::T(b));
            out.push(Gate::T(t));
            out.push(Gate::H(t));
            out.push(Gate::Cx(a, b));
            out.push(Gate::T(a));
            out.push(Gate::Tdg(b));
            out.push(Gate::Cx(a, b));
        }
        Gate::CPhaseRot { c, t, k, dagger } => {
            // CP(theta) = Rz(theta/2) (x) Rz(theta/2) . CX . Rz(-theta/2)_t . CX
            // i.e. two CX plus three half-angle rotations. (The paper's
            // §2.5 counts "a CX gate and 3 single qubit pi/2^{k+1}
            // gates"; the standard identity needs two CX — the extra CX
            // is transversal and cheap, and we use the exact network.)
            lower_gate(
                Gate::PhaseRot {
                    q: c,
                    k: k + 1,
                    dagger,
                },
                synth,
                out,
            );
            lower_gate(
                Gate::PhaseRot {
                    q: t,
                    k: k + 1,
                    dagger,
                },
                synth,
                out,
            );
            out.push(Gate::Cx(c, t));
            lower_gate(
                Gate::PhaseRot {
                    q: t,
                    k: k + 1,
                    dagger: !dagger,
                },
                synth,
                out,
            );
            out.push(Gate::Cx(c, t));
        }
        Gate::PhaseRot { q, k: 0, .. } => out.push(Gate::Z(q)),
        Gate::PhaseRot { q, k: 1, dagger } => {
            out.push(if dagger { Gate::Sdg(q) } else { Gate::S(q) })
        }
        Gate::PhaseRot { q, k: 2, dagger } => {
            out.push(if dagger { Gate::Tdg(q) } else { Gate::T(q) })
        }
        Gate::PhaseRot { q, k, dagger } => {
            for s in synth.synthesize(q, k, dagger) {
                assert!(s.is_physical(), "synthesizer emitted non-physical {s:?}");
                out.push(s);
            }
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_lowering_counts() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let l = c.lower(&NoSynth);
        assert_eq!(l.len(), 15);
        assert_eq!(l.count_where(|g| matches!(g, Gate::Cx(..))), 6);
        assert_eq!(l.count_where(|g| matches!(g, Gate::T(_) | Gate::Tdg(_))), 7);
        assert_eq!(l.count_where(|g| matches!(g, Gate::H(_))), 2);
        // 7 of 15 gates are non-transversal: 46.7%.
        assert!((l.non_transversal_fraction() - 7.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn cphase_lowering_produces_half_angle() {
        let mut c = Circuit::new(2);
        c.cphase_rot(0, 1, 1, false); // controlled-S
        let l = c.lower(&NoSynth);
        // 3 T-type rotations + 2 CX.
        assert_eq!(l.len(), 5);
        assert_eq!(l.count_where(|g| matches!(g, Gate::T(_) | Gate::Tdg(_))), 3);
        assert!(l.gates().iter().all(|g| g.is_physical()));
    }

    #[test]
    #[should_panic(expected = "no synthesizer")]
    fn deep_rotation_without_synth_panics() {
        let mut c = Circuit::new(1);
        c.phase_rot(0, 5, false);
        let _ = c.lower(&NoSynth);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn out_of_range_gate_panics() {
        let mut c = Circuit::new(1);
        c.cx(0, 1);
    }

    #[test]
    fn serde_round_trips_and_revalidates() {
        let mut c = Circuit::named(3, "toy");
        c.h(0);
        c.toffoli(0, 1, 2);
        c.phase_rot(1, 4, true);
        let back = Circuit::from_value(&c.to_value()).expect("round trip");
        assert_eq!(back, c);
        // Corrupt the qubit count: the gate list no longer fits.
        let Value::Object(mut fields) = c.to_value() else {
            panic!("circuit serializes as an object");
        };
        fields[0].1 = Value::Int(2);
        let err = Circuit::from_value(&Value::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("references qubit"));
    }

    #[test]
    fn swap_is_three_cx() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.len(), 3);
    }
}
