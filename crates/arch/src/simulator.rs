//! Event-driven dataflow simulation of a circuit on a
//! microarchitecture (§5.2's methodology).
//!
//! Gates execute in dataflow order. Each gate waits for its operands,
//! pays the architecture's movement penalty (teleports, cache misses,
//! ballistic hops), executes (data latency + QEC interaction), and
//! consumes encoded ancillae from the architecture's pools.
//!
//! ## Ancilla pools are token buckets, not reservoirs
//!
//! Encoded ancillae cannot be stockpiled indefinitely: an idle ancilla
//! must itself be error-corrected, and factory output ports hold only a
//! few blocks. Pools therefore accumulate at the factory rate up to a
//! small *buffer* and waste production beyond it. This is the paper's
//! central argument against dedicated generation (§5.2: "many ancilla
//! generators are idle much of the time in QLA when they could be used
//! to feed nearby data need"): a per-qubit QLA site can buffer about
//! one QEC step's worth, while a shared factory farm's output is
//! absorbed by whichever qubit needs it next.
//!
//! ## Architecture-specific behavior
//!
//! * **QLA**: per-qubit pools (simple factories), tiny buffers; every
//!   two-qubit gate teleports the operands together and back home.
//! * **CQLA**: gates run inside the compute cache, which inherits the
//!   QLA movement discipline internally (§5.3: compute regions mix
//!   data with generators, so data qubits "generally require
//!   teleportation for movement"). Misses teleport the operand in,
//!   evictions write back, and all memory<->cache transfers serialize
//!   on the hierarchy port. Factory area beyond what fits alongside
//!   the cache (one pipelined factory per slot) produces *remote*
//!   ancillae that arrive by teleportation: QEC slows by the remote
//!   share of a teleport and consumes twice the zeros for that share
//!   (§5.3: QEC-during-teleportation "requires twice as many encoded
//!   ancillae").
//! * **Fully-Multiplexed**: one shared pool, ballistic movement.
//! * **Qalypso**: per-tile shared pools with output ports at the data
//!   region (no delivery latency), ballistic movement within tiles,
//!   teleportation between tiles.

use crate::interconnect::Interconnect;
use crate::machine::Arch;
use qods_circuit::circuit::Circuit;
use qods_circuit::dag::Dag;
use qods_circuit::latency_model::CharacterizationModel;
use qods_factory::supply::{FactoryFarm, ZeroFactoryKind};

/// Zero-ancilla buffer of a dedicated QLA site (about one QEC step).
const SITE_ZERO_BUFFER: f64 = 2.0;
/// pi/8 buffer of a dedicated site.
const SITE_PI8_BUFFER: f64 = 1.0;
/// Zero buffer of a shared factory farm's output ports.
const SHARED_ZERO_BUFFER: f64 = 32.0;
/// pi/8 buffer of a shared farm.
const SHARED_PI8_BUFFER: f64 = 8.0;

/// Result of one architectural simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Total execution time (us).
    pub makespan_us: f64,
    /// Teleport operations performed.
    pub teleports: u64,
    /// CQLA cache misses (0 for other architectures).
    pub cache_misses: u64,
    /// Total movement latency charged across gates (diagnostics).
    pub movement_us: f64,
    /// Total ancilla-supply stall across gates (diagnostics).
    pub supply_stall_us: f64,
}

/// A token-bucket ancilla pool.
#[derive(Debug, Clone, Copy)]
struct Pool {
    zero_rate_per_us: f64,
    pi8_rate_per_us: f64,
    zero_buffer: f64,
    pi8_buffer: f64,
    zero_tokens: f64,
    pi8_tokens: f64,
    last_t: f64,
}

impl Pool {
    fn new(farm: &FactoryFarm, zero_buffer: f64, pi8_buffer: f64) -> Pool {
        Pool {
            zero_rate_per_us: farm.zero_bandwidth / 1000.0,
            pi8_rate_per_us: farm.pi8_bandwidth / 1000.0,
            zero_buffer,
            pi8_buffer,
            zero_tokens: 0.0,
            pi8_tokens: 0.0,
            last_t: 0.0,
        }
    }

    /// Draws `zeros` + `pi8` tokens at (or after) time `t`; returns
    /// when the draw completes. Production accumulates up to the
    /// buffer; beyond it, output is wasted.
    fn consume(&mut self, zeros: f64, pi8: f64, t: f64) -> f64 {
        let t = t.max(self.last_t);
        let dt = t - self.last_t;
        self.zero_tokens = (self.zero_tokens + self.zero_rate_per_us * dt).min(self.zero_buffer);
        self.pi8_tokens = (self.pi8_tokens + self.pi8_rate_per_us * dt).min(self.pi8_buffer);

        let zero_wait = if zeros <= self.zero_tokens {
            self.zero_tokens -= zeros;
            0.0
        } else if self.zero_rate_per_us > 0.0 {
            let w = (zeros - self.zero_tokens) / self.zero_rate_per_us;
            self.zero_tokens = 0.0;
            w
        } else {
            f64::INFINITY
        };
        let pi8_wait = if pi8 <= self.pi8_tokens {
            self.pi8_tokens -= pi8;
            0.0
        } else if pi8 == 0.0 {
            0.0
        } else if self.pi8_rate_per_us > 0.0 {
            let w = (pi8 - self.pi8_tokens) / self.pi8_rate_per_us;
            self.pi8_tokens = 0.0;
            w
        } else {
            f64::INFINITY
        };
        // The two product streams come from distinct factories and
        // accumulate independently; the draw completes when the slower
        // stream catches up.
        let avail = t + zero_wait.max(pi8_wait);
        self.last_t = avail;
        avail
    }
}

/// A simple LRU set for the CQLA compute cache.
#[derive(Debug, Clone)]
struct LruCache {
    slots: usize,
    /// Most recent at the back.
    order: Vec<usize>,
}

impl LruCache {
    fn new(slots: usize, initial: impl Iterator<Item = usize>) -> Self {
        let mut order: Vec<usize> = initial.take(slots).collect();
        order.reverse(); // first qubits become least recent
        LruCache { slots, order }
    }

    fn contains(&self, q: usize) -> bool {
        self.order.contains(&q)
    }

    fn touch(&mut self, q: usize) {
        self.order.retain(|&x| x != q);
        self.order.push(q);
    }

    /// Inserts `q`; returns true when an eviction (writeback) was
    /// needed. Qubits in `pinned` are not evicted.
    fn insert(&mut self, q: usize, pinned: &[usize]) -> bool {
        debug_assert!(!self.contains(q));
        let mut evicted = false;
        if self.order.len() >= self.slots {
            let victim = self
                .order
                .iter()
                .position(|x| !pinned.contains(x))
                .expect("cache larger than one gate's operand set");
            self.order.remove(victim);
            evicted = true;
        }
        self.order.push(q);
        evicted
    }
}

/// Simulates `circuit` on `arch` with `factory_area` macroblocks of
/// total ancilla-generation hardware.
///
/// # Panics
///
/// Panics if `factory_area <= 0` or the circuit is not lowered.
pub fn simulate(circuit: &Circuit, arch: Arch, factory_area: f64) -> SimOutcome {
    assert!(factory_area > 0.0, "factory area must be positive");
    let model = CharacterizationModel::ion_trap();
    let link = Interconnect::ion_trap();
    let n = circuit.n_qubits();
    let gates = circuit.gates();
    let dag = Dag::build(circuit);

    // Demand mix: how the factory area splits between QEC-zero and
    // pi/8 chains (matched to the circuit, as in Table 9).
    let mut zeros_total = 0.0f64;
    let mut pi8_total = 0.0f64;
    for g in gates {
        zeros_total += 2.0 * g.qubits().len() as f64;
        if g.needs_pi8_ancilla() {
            pi8_total += 1.0;
        }
    }
    let ratio = if zeros_total > 0.0 {
        pi8_total / zeros_total
    } else {
        0.0
    };

    // Build pools per architecture.
    let mut pools: Vec<Pool>;
    let pool_of: Box<dyn Fn(usize) -> usize>;
    // CQLA: local (cache-side) zero generation rate; ancillae beyond
    // this rate arrive through the hierarchy port.
    let mut local_zero_rate = 0.0f64;
    match arch {
        Arch::Qla => {
            let per_site = factory_area / n as f64;
            let farm = FactoryFarm::bandwidth_for_area(per_site, ratio, ZeroFactoryKind::Simple);
            pools = vec![Pool::new(&farm, SITE_ZERO_BUFFER, SITE_PI8_BUFFER); n];
            pool_of = Box::new(|q| q);
        }
        Arch::Cqla { cache_slots } => {
            // Compute cells carry one simple factory's worth of local
            // generation each (Fig 14a cells); everything else lives
            // memory-side and its products must cross the hierarchy
            // port to reach the data.
            let local_area = ((cache_slots as f64) * 90.0).min(factory_area);
            let local = FactoryFarm::bandwidth_for_area(local_area, ratio, ZeroFactoryKind::Simple);
            let remote_area = (factory_area - local_area).max(0.0);
            let remote = FactoryFarm::bandwidth_for_area(
                remote_area.max(1e-9),
                ratio,
                ZeroFactoryKind::Pipelined,
            );
            let combined = FactoryFarm::size_for(
                local.zero_bandwidth + remote.zero_bandwidth,
                local.pi8_bandwidth + remote.pi8_bandwidth,
                ZeroFactoryKind::Pipelined,
            );
            // Fraction of consumed ancillae that must arrive through
            // the hierarchy port: whatever local generation cannot
            // cover at the realized consumption rate. Estimated from
            // the speed-of-data demand and refined by a second pass
            // (see the fixed-point loop below).
            local_zero_rate = local.zero_bandwidth;
            pools = vec![Pool::new(&combined, SHARED_ZERO_BUFFER, SHARED_PI8_BUFFER)];
            pool_of = Box::new(|_| 0);
        }
        Arch::FullyMultiplexed => {
            let farm =
                FactoryFarm::bandwidth_for_area(factory_area, ratio, ZeroFactoryKind::Pipelined);
            pools = vec![Pool::new(&farm, SHARED_ZERO_BUFFER, SHARED_PI8_BUFFER)];
            pool_of = Box::new(|_| 0);
        }
        Arch::Qalypso { tile_qubits } => {
            let tiles = n.div_ceil(tile_qubits).max(1);
            let farm = FactoryFarm::bandwidth_for_area(
                factory_area / tiles as f64,
                ratio,
                ZeroFactoryKind::Pipelined,
            );
            pools = vec![Pool::new(&farm, SHARED_ZERO_BUFFER, SHARED_PI8_BUFFER); tiles];
            pool_of = Box::new(move |q| q / tile_qubits);
        }
    }

    let mut cache = match arch {
        Arch::Cqla { cache_slots } => Some(LruCache::new(cache_slots, 0..n)),
        _ => None,
    };
    // The memory<->cache hierarchy port serializes transfers.
    let mut hierarchy_port_free = 0.0f64;
    // CQLA: fraction of consumed ancillae that local (cache-side)
    // generation cannot cover at the speed-of-data demand rate; the
    // rest cross the hierarchy port by teleportation ("cache misses
    // are still incurred to bring ancillae to data", §5.2).
    let remote_fraction = if matches!(arch, Arch::Cqla { .. }) {
        let sod = qods_circuit::schedule::Schedule::speed_of_data(circuit, &model).makespan_us;
        let demand_per_ms = if sod > 0.0 {
            zeros_total / (sod / 1000.0)
        } else {
            0.0
        };
        if demand_per_ms > 0.0 {
            (1.0 - local_zero_rate / demand_per_ms).clamp(0.0, 1.0)
        } else {
            0.0
        }
    } else {
        0.0
    };
    let _ = local_zero_rate;

    let mut makespan = 0.0f64;
    let mut teleports = 0u64;
    let mut cache_misses = 0u64;
    let mut movement_us = 0.0f64;
    let mut supply_stall_us = 0.0f64;
    let mut end = vec![0.0f64; gates.len()];

    // Discrete-event order: process gates by readiness time so pool
    // draws and port contention happen in causal order (program order
    // would serialize independent chains through shared resources).
    let mut indegree = vec![0usize; gates.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (i, slot) in indegree.iter_mut().enumerate() {
        *slot = dag.preds(i).len();
        for &p in dag.preds(i) {
            succs[p].push(i);
        }
    }
    // Min-heap of (ready_time, gate) via Reverse ordering on bits.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
    let key = |t: f64| Reverse(t.to_bits()); // non-negative floats sort by bits
    let mut ready_time = vec![0.0f64; gates.len()];
    for (i, &deg) in indegree.iter().enumerate() {
        if deg == 0 {
            heap.push((key(0.0), i));
        }
    }

    while let Some((_, i)) = heap.pop() {
        let g = &gates[i];
        let operands = g.qubits();
        let ready = ready_time[i];

        // Movement penalty; teleports consume EPR pairs of encoded
        // blocks (2 zeros each, §5.3).
        let mut move_us = 0.0;
        let mut gate_teleports = 0u64;
        match arch {
            Arch::Qla => {
                if operands.len() >= 2 {
                    // Teleport together, then home for QEC.
                    move_us += 2.0 * link.teleport_us();
                    gate_teleports += 2;
                }
            }
            Arch::FullyMultiplexed => {
                if operands.len() >= 2 {
                    move_us += link.avg_ballistic_us(n);
                }
            }
            Arch::Qalypso { tile_qubits } => {
                if operands.len() >= 2 {
                    let same_tile = operands
                        .iter()
                        .all(|&q| q / tile_qubits == operands[0] / tile_qubits);
                    if same_tile {
                        move_us += link.avg_ballistic_us(tile_qubits.min(n));
                    } else {
                        move_us += link.teleport_us();
                        gate_teleports += 1;
                    }
                }
            }
            Arch::Cqla { .. } => {
                let c = cache.as_mut().expect("cqla cache");
                let mut transferred = false;
                for &q in &operands {
                    if c.contains(q) {
                        c.touch(q);
                    } else {
                        cache_misses += 1;
                        gate_teleports += 1;
                        let mut transfer = link.teleport_us();
                        if c.insert(q, &operands) {
                            // Writeback of the evicted qubit.
                            transfer += link.teleport_us();
                            gate_teleports += 1;
                        }
                        // Serialize on the hierarchy port.
                        let start = ready.max(hierarchy_port_free);
                        hierarchy_port_free = start + transfer;
                        transferred = true;
                    }
                }
                if transferred {
                    // The gate waits for its last transfer to land.
                    move_us += (hierarchy_port_free - ready).max(0.0);
                }
                if operands.len() >= 2 {
                    // Intra-cache movement uses teleportation: data in
                    // the compute region sits interleaved with
                    // generators (§5.3), operands meet and return.
                    move_us += 2.0 * link.teleport_us();
                    gate_teleports += 2;
                }
                // Remote ancilla delivery: the memory-side share of
                // this gate's encoded zeros crosses the hierarchy port
                // (one teleport per block pair), serialized with all
                // other transfers.
                let remote_zeros = remote_fraction * 2.0 * operands.len() as f64;
                if remote_zeros > 0.0 {
                    let transfer = remote_zeros / 2.0 * link.teleport_us();
                    let start = ready.max(hierarchy_port_free);
                    hierarchy_port_free = start + transfer;
                    move_us = move_us.max(hierarchy_port_free - ready);
                }
            }
        }

        // Ancilla consumption. Teleports burn EPR pairs of encoded
        // blocks on top of the QEC zeros, spread over the operands'
        // pools.
        teleports += gate_teleports;
        let zeros_per_qubit = model.zeros_per_qec() as f64
            + 2.0 * gate_teleports as f64 / operands.len().max(1) as f64;
        let pi8 = if g.needs_pi8_ancilla() { 1.0 } else { 0.0 };
        let mut avail = ready;
        for (j, &q) in operands.iter().enumerate() {
            let pi8_here = if j == 0 { pi8 } else { 0.0 };
            let a = pools[pool_of(q)].consume(zeros_per_qubit, pi8_here, ready);
            avail = avail.max(a);
        }

        movement_us += move_us;
        supply_stall_us += (avail - ready).max(0.0);
        let dur = move_us + model.data_latency(g) + model.qec_interact();
        let e = avail.max(ready) + dur;
        end[i] = e;
        makespan = makespan.max(e);
        for &s in &succs[i] {
            ready_time[s] = ready_time[s].max(e);
            indegree[s] -= 1;
            if indegree[s] == 0 {
                heap.push((key(ready_time[s]), s));
            }
        }
    }

    SimOutcome {
        makespan_us: makespan,
        teleports,
        cache_misses,
        movement_us,
        supply_stall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_circuit::circuit::Circuit;
    use qods_circuit::schedule::Schedule;

    fn toy(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::named(n, "toy");
        for _ in 0..layers {
            for q in 0..n {
                c.h(q);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            c.t(0);
        }
        c
    }

    #[test]
    fn generous_fm_approaches_speed_of_data() {
        let c = toy(4, 6);
        let model = CharacterizationModel::ion_trap();
        let sod = Schedule::speed_of_data(&c, &model).makespan_us;
        let out = simulate(&c, Arch::FullyMultiplexed, 1e9);
        // FM adds only ballistic movement on 2q gates.
        assert!(out.makespan_us >= sod);
        assert!(out.makespan_us < sod * 1.5, "{} vs {sod}", out.makespan_us);
        assert_eq!(out.cache_misses, 0);
    }

    #[test]
    fn qla_is_never_faster_than_fm() {
        let c = toy(6, 4);
        for area in [1e3, 1e4, 1e5, 1e6] {
            let fm = simulate(&c, Arch::FullyMultiplexed, area);
            let qla = simulate(&c, Arch::Qla, area);
            assert!(
                qla.makespan_us >= fm.makespan_us * 0.999,
                "area {area}: QLA {} < FM {}",
                qla.makespan_us,
                fm.makespan_us
            );
        }
    }

    #[test]
    fn qla_wastes_idle_generation() {
        // With per-site buckets, a serial chain on one qubit starves
        // even though aggregate production would suffice: the other
        // sites' generators idle at full buffers.
        let mut c = Circuit::new(8);
        for _ in 0..50 {
            c.h(0);
        }
        let area = 8.0 * 200.0; // modest per-site generation
        let fm = simulate(&c, Arch::FullyMultiplexed, area);
        let qla = simulate(&c, Arch::Qla, area);
        assert!(
            qla.makespan_us > fm.makespan_us * 2.0,
            "QLA {} vs FM {}",
            qla.makespan_us,
            fm.makespan_us
        );
    }

    #[test]
    fn cqla_misses_cost_time() {
        let c = toy(8, 4);
        let big = simulate(&c, Arch::Cqla { cache_slots: 8 }, 1e6);
        let small = simulate(&c, Arch::Cqla { cache_slots: 4 }, 1e6);
        assert!(small.cache_misses > 0);
        assert!(big.cache_misses <= small.cache_misses);
        assert!(small.makespan_us > big.makespan_us);
    }

    #[test]
    fn cqla_plateaus_above_fm() {
        let c = toy(8, 6);
        let fm = simulate(&c, Arch::FullyMultiplexed, 1e7);
        let cqla = simulate(&c, Arch::Cqla { cache_slots: 4 }, 1e7);
        assert!(
            cqla.makespan_us > fm.makespan_us * 1.5,
            "CQLA {} vs FM {}",
            cqla.makespan_us,
            fm.makespan_us
        );
    }

    #[test]
    fn starved_architectures_are_supply_limited() {
        let c = toy(4, 8);
        let tiny = simulate(&c, Arch::FullyMultiplexed, 10.0);
        let big = simulate(&c, Arch::FullyMultiplexed, 1e7);
        assert!(tiny.makespan_us > 10.0 * big.makespan_us);
    }

    #[test]
    fn qalypso_matches_fm_within_tile() {
        // Whole circuit in one tile: Qalypso == FM up to the ballistic
        // distance (tile smaller than full region helps slightly).
        let c = toy(8, 4);
        let fm = simulate(&c, Arch::FullyMultiplexed, 1e7);
        let qal = simulate(&c, Arch::Qalypso { tile_qubits: 8 }, 1e7);
        assert!(qal.makespan_us <= fm.makespan_us * 1.01);
        assert_eq!(qal.teleports, 0);
    }

    #[test]
    fn cross_tile_gates_teleport() {
        let mut c = Circuit::new(8);
        c.cx(0, 7); // tiles 0 and 1 with tile_qubits = 4
        let out = simulate(&c, Arch::Qalypso { tile_qubits: 4 }, 1e6);
        assert_eq!(out.teleports, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_panics() {
        let c = toy(2, 1);
        let _ = simulate(&c, Arch::FullyMultiplexed, 0.0);
    }
}
